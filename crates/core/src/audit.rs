//! Post-characterization physics audit and bounded self-repair.
//!
//! The paper's §2 threshold rule (min `V_il`, max `V_ih` over the VTC
//! family) exists precisely to guarantee *positive* delay for every
//! slope/separation combination, and §3 pins down asymptotics: the dual
//! delay ratio `D⁽²⁾ → 1` once the partner arrives after the dominant
//! input's crossing (`s_ij ≥ Δ_i⁽¹⁾`), and the transition ratio
//! `T⁽²⁾ → 1` beyond the wider window `Δ_i⁽¹⁾ + τ_i⁽¹⁾`. This module
//! checks that a characterized (or loaded) [`ProximityModel`] actually
//! satisfies those invariants, and repairs it when it does not:
//!
//! - [`ProximityModel::audit`] runs every table through the battery of
//!   checks ([`AuditCheck`]) and returns typed [`AuditFinding`]s with full
//!   provenance — slice, table role, flat table index, grid stimulus, the
//!   violated bound.
//! - [`ProximityModel::audit_and_repair`] re-enqueues only the suspect
//!   grid points through the [`crate::jobs`] pipeline (honoring the run's
//!   cancellation token and checkpoint journal), patches repaired points
//!   in place, escalates persistent points to a tightened solver tolerance
//!   ([`crate::characterize::Simulator::with_tolerance_scale`]), and
//!   demotes unrepairable slices to the existing [`DegradedSlice`] path so
//!   [`ProximityModel::gate_timing`] keeps answering with flagged
//!   provenance instead of serving unphysical numbers.
//! - [`ProximityModel::validate`] is the cheap structural subset (shape,
//!   axis monotonicity, non-finite rejection) run on every persisted or
//!   cached model at the deserialization boundary ([`crate::persist`]).
//!
//! The checks are conduction-aware: the `D⁽²⁾ → 1` asymptote only binds
//! for parallel (OR-like) conduction, and only where the partner's ramp
//! *starts* after the dominant crossing — for series (AND-like) stacks a
//! late partner legitimately gates the output and the raw ratio exceeds
//! one (see [`DualInputModel::delay_ratio_raw`]).

use crate::algorithm::CorrectionTerm;
use crate::characterize::{CharacterizeOptions, Simulator};
use crate::checkpoint::{CheckpointJournal, RunControl};
use crate::dual::DualInputModel;
use crate::error::ModelError;
use crate::glitch::GlitchModel;
use crate::jobs::{execute_jobs_controlled, metric, JobOutcome, SimJob};
use crate::measure::{causing_rank, InputEvent, Scenario};
use crate::model::{eidx, DegradedSlice, ProximityModel, SliceKind};
use crate::nldm::LoadSlewModel;
use crate::single::SingleInputModel;
use proxim_numeric::pwl::Edge;
use proxim_obs as obs;
use std::collections::BTreeMap;
use std::fmt;

/// Tolerances and budgets for the audit battery and the repair pass.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditOptions {
    /// Allowed `|ratio − 1|` where a §3 asymptote binds exactly (the
    /// partner's ramp starts after the relevant output event, so only
    /// solver noise separates the measured ratio from one).
    pub asymptote_tol: f64,
    /// Allowed backwards step of the dual delay ratio along the separation
    /// axis, relative to `max(1, |value|)` — §3's monotonicity of delay in
    /// separation along the dominance direction, minus solver noise.
    pub monotonicity_tol: f64,
    /// Robust z-score (residual over the row's median absolute residual)
    /// above which a grid point is a neighbor-consistency outlier.
    pub outlier_z: f64,
    /// Absolute floor for an outlier residual, as a fraction of the row's
    /// value span — guards smooth-but-curved rows from the z-score test.
    pub outlier_min_residual: f64,
    /// Repair budget per slice: more suspect points than this demotes the
    /// slice outright instead of re-simulating half its grid.
    pub max_repair_points: usize,
    /// Solver-tolerance scale for the escalation rung of the repair pass
    /// (first re-simulation runs at the original tolerance so repaired
    /// points are byte-identical to a clean run).
    pub repair_tolerance_scale: f64,
}

impl Default for AuditOptions {
    fn default() -> Self {
        Self {
            asymptote_tol: 0.08,
            monotonicity_tol: 0.05,
            outlier_z: 12.0,
            outlier_min_residual: 0.35,
            max_repair_points: 64,
            repair_tolerance_scale: 0.5,
        }
    }
}

/// Which physics or structural invariant a finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditCheck {
    /// A table entry (or axis point, or model scalar) is NaN/Inf.
    NonFinite,
    /// A delay/transition entry that §2's threshold rule guarantees
    /// positive is zero or negative.
    Positivity,
    /// `delay_ratio` deviates from 1 where the partner provably cannot
    /// affect the delay (`s_ij ≥ Δ_i⁽¹⁾` and the partner ramp starts after
    /// the crossing; OR-like conduction only).
    DelayAsymptote,
    /// `trans_ratio` deviates from 1 beyond the wider transition window
    /// `Δ_i⁽¹⁾ + τ_i⁽¹⁾` (OR-like conduction only).
    TransAsymptote,
    /// The dual delay ratio decreases along the separation axis, or a
    /// glitch peak moves against the blocker-arrival direction, or an NLDM
    /// delay shrinks with load.
    Monotonicity,
    /// A grid point is inconsistent with its neighbors (robust z-score of
    /// the local-interpolation residual; see
    /// [`AuditOptions::outlier_z`]).
    Outlier,
    /// The table or model fails structural validation: wrong shape,
    /// malformed axis, inconsistent metadata.
    Structure,
}

impl fmt::Display for AuditCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::NonFinite => "non-finite entry",
            Self::Positivity => "positivity (§2)",
            Self::DelayAsymptote => "delay-ratio asymptote (§3)",
            Self::TransAsymptote => "trans-ratio asymptote (§3)",
            Self::Monotonicity => "monotonicity in separation",
            Self::Outlier => "neighbor-consistency outlier",
            Self::Structure => "structural validation",
        };
        f.write_str(s)
    }
}

/// Which table of a slice a finding points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableRole {
    /// The delay (or delay-ratio) table of the slice.
    Delay,
    /// The transition-time (or transition-ratio) table of the slice.
    Transition,
    /// The normalized glitch-peak table.
    Peak,
}

/// One audit violation, with enough provenance to re-enqueue exactly the
/// suspect grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditFinding {
    /// The violated invariant.
    pub check: AuditCheck,
    /// Which kind of slice the finding is in.
    pub slice: SliceKind,
    /// The slice's pin (dominant pin for duals, causer for glitches,
    /// reference pin for corrections).
    pub pin: usize,
    /// The slice's input edge (causer edge for glitches, output edge for
    /// corrections).
    pub edge: Edge,
    /// The dual partner or glitch blocker pin, when the slice has one.
    pub partner: Option<usize>,
    /// Which of the slice's tables holds the value.
    pub table: TableRole,
    /// Flat row-major index into that table; `None` for whole-table
    /// (structural) findings.
    pub index: Option<usize>,
    /// The grid stimulus at that index, in model coordinates — `[u]` for
    /// singles, `[u, v, w]` for duals/glitches, `[τ, C_L]` for NLDM.
    pub stimulus: Vec<f64>,
    /// The offending stored value.
    pub value: f64,
    /// The violated bound, rendered.
    pub expected: String,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {:?} slice pin {} {:?}",
            self.check, self.slice, self.pin, self.edge
        )?;
        if let Some(p) = self.partner {
            write!(f, " (partner {p})")?;
        }
        match self.index {
            Some(i) => write!(f, ", {:?}[{i}]", self.table)?,
            None => write!(f, ", {:?} table", self.table)?,
        }
        if !self.stimulus.is_empty() {
            write!(f, " at {:?}", self.stimulus)?;
        }
        write!(f, ": value {:e}, expected {}", self.value, self.expected)
    }
}

/// The outcome of one audit pass over a model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Every violation found, in deterministic slice-then-index order.
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// Whether the model passed every check.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// Whether the report holds no findings (same as [`Self::is_clean`]).
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Counters describing one repair pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Grid points re-simulated and patched in place.
    pub repaired_points: usize,
    /// Points that needed the tightened-tolerance escalation rung.
    pub escalated_points: usize,
    /// Slices demoted to [`DegradedSlice`] provenance.
    pub demoted_slices: usize,
    /// Transient simulations the repair pass ran.
    pub sims_run: usize,
}

// ---------------------------------------------------------------------------
// Check helpers
// ---------------------------------------------------------------------------

/// Margin (in `w` units) added to the asymptote-window conditions so that a
/// grid point sitting exactly on the analytic boundary is never checked.
const WINDOW_MARGIN: f64 = 0.1;

/// Interior residuals against the midpoint of each point's neighbors, and
/// the indices whose residual is both a robust-z outlier and a substantial
/// fraction of the row's span.
fn row_outliers(row: &[f64], opts: &AuditOptions) -> Vec<(usize, f64, f64)> {
    let n = row.len();
    if n < 5 {
        return Vec::new();
    }
    let resid: Vec<f64> = (1..n - 1)
        .map(|k| row[k] - 0.5 * (row[k - 1] + row[k + 1]))
        .collect();
    let mut abs: Vec<f64> = resid.iter().map(|r| r.abs()).collect();
    abs.sort_by(f64::total_cmp);
    // Median absolute residual: robust to the outlier itself, unlike a
    // standard deviation that the outlier would inflate.
    let mad = abs[abs.len() / 2].max(1e-12);
    let (lo, hi) = row
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let floor = (opts.outlier_min_residual * (hi - lo)).max(1e-9);
    resid
        .iter()
        .enumerate()
        .filter(|(_, r)| r.abs() > opts.outlier_z * mad && r.abs() > floor)
        .map(|(j, r)| (j + 1, row[j + 1], *r))
        .collect()
}

/// The input-threshold crossing fraction of a unit ramp for `edge` — the
/// offset between a ramp's start and its [`InputEvent::arrival`].
fn arrival_fraction(model: &ProximityModel, edge: Edge) -> f64 {
    InputEvent::new(0, edge, 0.0, 1.0).arrival(&model.thresholds)
}

/// Resolves the conduction style of a dual slice: `Some(true)` when the
/// first-arriving input alone flips the output (OR-like, parallel
/// conduction), `Some(false)` for series stacks, `None` when the pair
/// cannot be sensitized at all.
fn dual_or_like(model: &ProximityModel, d: &DualInputModel) -> Option<bool> {
    let events = [
        InputEvent::new(d.pin, d.input_edge, 0.0, 100e-12),
        InputEvent::new(d.partner, d.input_edge, 10e-12, 100e-12),
    ];
    let scenario = Scenario::resolve(&model.cell, &events).ok()?;
    let causing = causing_rank(&model.cell, &events, &scenario, &model.thresholds).ok()?;
    Some(causing.rank == 1)
}

struct FindingSink<'a> {
    slice: SliceKind,
    pin: usize,
    edge: Edge,
    partner: Option<usize>,
    out: &'a mut Vec<AuditFinding>,
}

impl FindingSink<'_> {
    fn push(
        &mut self,
        check: AuditCheck,
        table: TableRole,
        index: Option<usize>,
        stimulus: Vec<f64>,
        value: f64,
        expected: impl Into<String>,
    ) {
        self.out.push(AuditFinding {
            check,
            slice: self.slice,
            pin: self.pin,
            edge: self.edge,
            partner: self.partner,
            table,
            index,
            stimulus,
            value,
            expected: expected.into(),
        });
    }
}

/// Audits one single-input macromodel: §2 positivity and finiteness of the
/// normalized delay and transition samples.
///
/// Public so the property suite can aim it at deliberately
/// mis-thresholded constructions (a wrong `V_il`/`V_ih` policy produces
/// negative table delays, which this check must flag).
pub fn check_single(m: &SingleInputModel, _opts: &AuditOptions) -> Vec<AuditFinding> {
    let mut out = Vec::new();
    let mut sink = FindingSink {
        slice: SliceKind::Single,
        pin: m.pin,
        edge: m.input_edge,
        partner: None,
        out: &mut out,
    };
    let (delay, trans) = m.tables();
    for (role, table) in [(TableRole::Delay, delay), (TableRole::Transition, trans)] {
        for (i, (&u, &y)) in table.xs().iter().zip(table.ys()).enumerate() {
            if !y.is_finite() {
                sink.push(AuditCheck::NonFinite, role, Some(i), vec![u], y, "finite");
            } else if y <= 0.0 {
                sink.push(
                    AuditCheck::Positivity,
                    role,
                    Some(i),
                    vec![u],
                    y,
                    "> 0 (min-V_il/max-V_ih thresholds, §2)",
                );
            }
        }
    }
    out
}

/// Audits one dual-input proximity slice in the context of its model.
fn check_dual(
    model: &ProximityModel,
    d: &DualInputModel,
    opts: &AuditOptions,
) -> Vec<AuditFinding> {
    let mut out = Vec::new();
    let mut sink = FindingSink {
        slice: SliceKind::Dual,
        pin: d.pin,
        edge: d.input_edge,
        partner: Some(d.partner),
        out: &mut out,
    };
    let (delay, trans) = d.tables();
    let (nu, nv, nw) = (delay.ax().len(), delay.ay().len(), delay.az().len());
    let u_grid: Vec<f64> = delay.ax().iter().map(|lu| lu.exp()).collect();
    let v_grid: Vec<f64> = delay.ay().iter().map(|lv| lv.exp()).collect();
    let w_grid = delay.az();

    let or_like = dual_or_like(model, d);
    let frac = arrival_fraction(model, d.input_edge);
    let single = model
        .singles
        .get(d.pin)
        .and_then(|s| s[eidx(d.input_edge)].as_ref());
    // τ_i⁽¹⁾ / Δ_i⁽¹⁾ per u row — the §3 transition-window width in w units.
    let t1_over_d1: Vec<Option<f64>> = u_grid
        .iter()
        .map(|&u1| {
            let s = single?;
            let tau_i = s.tau_for_ratio(u1, model.c_ref);
            let d1 = s.delay(tau_i, model.c_ref);
            (d1 > 0.0).then(|| s.transition(tau_i, model.c_ref) / d1)
        })
        .collect();

    for (iu, &u_val) in u_grid.iter().enumerate().take(nu) {
        for (iv, &v_val) in v_grid.iter().enumerate().take(nv) {
            let base = (iu * nv + iv) * nw;
            let drow = &delay.values()[base..base + nw];
            let trow = &trans.values()[base..base + nw];
            let stim = |iw: usize| vec![u_val, v_val, w_grid[iw]];

            for iw in 0..nw {
                let (dv, tv, w) = (drow[iw], trow[iw], w_grid[iw]);
                for (role, v) in [(TableRole::Delay, dv), (TableRole::Transition, tv)] {
                    if !v.is_finite() {
                        sink.push(
                            AuditCheck::NonFinite,
                            role,
                            Some(base + iw),
                            stim(iw),
                            v,
                            "finite",
                        );
                    }
                }
                // §2 positivity: the measured Δ⁽²⁾ (hence the ratio) is
                // positive whenever the reference input is the one being
                // crossed — i.e. at non-negative separation. At deeply
                // negative w an early partner legitimately drives the
                // output before the reference arrives.
                if dv.is_finite() && w >= 0.0 && dv <= 0.0 {
                    sink.push(
                        AuditCheck::Positivity,
                        TableRole::Delay,
                        Some(base + iw),
                        stim(iw),
                        dv,
                        "> 0 for s_ij >= 0 (§2)",
                    );
                }
                if tv.is_finite() && tv <= 0.0 {
                    sink.push(
                        AuditCheck::Positivity,
                        TableRole::Transition,
                        Some(base + iw),
                        stim(iw),
                        tv,
                        "> 0 (§2)",
                    );
                }
                // §3 asymptotes, where they bind *exactly*: the partner's
                // ramp must start after the output event it could perturb.
                // Its ramp starts at w − frac·v (in Δ⁽¹⁾ units) relative
                // to the dominant arrival; the delay crossing is at 1, the
                // transition completes by 1 + τ⁽¹⁾/Δ⁽¹⁾.
                if or_like == Some(true) && dv.is_finite() {
                    let ramp_start = w - frac * v_val;
                    if ramp_start >= 1.0 + WINDOW_MARGIN && (dv - 1.0).abs() > opts.asymptote_tol {
                        sink.push(
                            AuditCheck::DelayAsymptote,
                            TableRole::Delay,
                            Some(base + iw),
                            stim(iw),
                            dv,
                            format!(
                                "within {:.2} of 1 for s_ij >= Δ⁽¹⁾ (§3)",
                                opts.asymptote_tol
                            ),
                        );
                    }
                    if let Some(t1d1) = t1_over_d1[iu] {
                        if tv.is_finite()
                            && ramp_start >= 1.0 + t1d1 + WINDOW_MARGIN
                            && (tv - 1.0).abs() > opts.asymptote_tol
                        {
                            sink.push(
                                AuditCheck::TransAsymptote,
                                TableRole::Transition,
                                Some(base + iw),
                                stim(iw),
                                tv,
                                format!(
                                    "within {:.2} of 1 for s_ij >= Δ⁽¹⁾ + τ⁽¹⁾ (§3)",
                                    opts.asymptote_tol
                                ),
                            );
                        }
                    }
                }
            }

            // Monotonicity of delay in separation along the dominance
            // direction: a later partner can only delay the composed
            // crossing (or stop mattering), never accelerate it. Only
            // enforced where the reference input actually dominates
            // (w ≥ 0); at negative separation the partner leads and the
            // composition queries the table with the roles swapped.
            for iw in 1..nw {
                if w_grid[iw - 1] < 0.0 {
                    continue;
                }
                let (a, b) = (drow[iw - 1], drow[iw]);
                if a.is_finite() && b.is_finite() {
                    let tol = opts.monotonicity_tol * a.abs().max(1.0);
                    if b < a - tol {
                        sink.push(
                            AuditCheck::Monotonicity,
                            TableRole::Delay,
                            Some(base + iw),
                            stim(iw),
                            b,
                            format!(">= {:.4e} - tol (non-decreasing in w)", a),
                        );
                    }
                }
            }

            for (role, row) in [(TableRole::Delay, drow), (TableRole::Transition, trow)] {
                for (j, v, r) in row_outliers(row, opts) {
                    sink.push(
                        AuditCheck::Outlier,
                        role,
                        Some(base + j),
                        stim(j),
                        v,
                        format!("residual {r:.3e} within z·MAD of neighbors"),
                    );
                }
            }
        }
    }
    out
}

/// Audits one NLDM load–slew surface: positivity, finiteness, and delay
/// monotone in load.
fn check_nldm(m: &LoadSlewModel, opts: &AuditOptions) -> Vec<AuditFinding> {
    let mut out = Vec::new();
    let mut sink = FindingSink {
        slice: SliceKind::LoadSlew,
        pin: m.pin,
        edge: m.input_edge,
        partner: None,
        out: &mut out,
    };
    let (delay, trans) = m.tables();
    let (nt, nl) = (delay.ax().len(), delay.ay().len());
    let taus: Vec<f64> = delay.ax().iter().map(|l| l.exp()).collect();
    let loads: Vec<f64> = delay.ay().iter().map(|l| l.exp()).collect();
    for (role, table) in [(TableRole::Delay, delay), (TableRole::Transition, trans)] {
        for (it, &tau) in taus.iter().enumerate().take(nt) {
            for (il, &load) in loads.iter().enumerate().take(nl) {
                let idx = it * nl + il;
                let v = table.values()[idx];
                let stim = vec![tau, load];
                if !v.is_finite() {
                    sink.push(AuditCheck::NonFinite, role, Some(idx), stim, v, "finite");
                } else if v <= 0.0 {
                    sink.push(AuditCheck::Positivity, role, Some(idx), stim, v, "> 0 (§2)");
                }
            }
        }
    }
    // Delay grows with load at fixed slew: more charge through the same
    // drive current.
    for (it, &tau) in taus.iter().enumerate().take(nt) {
        for (il, &load) in loads.iter().enumerate().take(nl).skip(1) {
            let a = delay.values()[it * nl + il - 1];
            let b = delay.values()[it * nl + il];
            if a.is_finite() && b.is_finite() && b < a * (1.0 - opts.monotonicity_tol) {
                sink.push(
                    AuditCheck::Monotonicity,
                    TableRole::Delay,
                    Some(it * nl + il),
                    vec![tau, load],
                    b,
                    format!(">= {a:.4e} - tol (non-decreasing in load)"),
                );
            }
        }
    }
    out
}

/// Audits one glitch-peak slice: finite, rail-bounded, and the extremum
/// moves monotonically with blocker arrival.
fn check_glitch(g: &GlitchModel, opts: &AuditOptions) -> Vec<AuditFinding> {
    let mut out = Vec::new();
    let mut sink = FindingSink {
        slice: SliceKind::Glitch,
        pin: g.causer,
        edge: g.causer_edge,
        partner: Some(g.blocker),
        out: &mut out,
    };
    let peak = g.peak_table();
    let (nu, nv, nw) = (peak.ax().len(), peak.ay().len(), peak.az().len());
    let u_grid: Vec<f64> = peak.ax().iter().map(|l| l.exp()).collect();
    let v_grid: Vec<f64> = peak.ay().iter().map(|l| l.exp()).collect();
    let w_grid = peak.az();
    // Normalized extremum must stay within the rails, plus integrator
    // ringing allowance.
    const RAIL_TOL: f64 = 0.1;
    for (iu, &u_val) in u_grid.iter().enumerate().take(nu) {
        for (iv, &v_val) in v_grid.iter().enumerate().take(nv) {
            let base = (iu * nv + iv) * nw;
            let row = &peak.values()[base..base + nw];
            let stim = |iw: usize| vec![u_val, v_val, w_grid[iw]];
            for (iw, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    sink.push(
                        AuditCheck::NonFinite,
                        TableRole::Peak,
                        Some(base + iw),
                        stim(iw),
                        v,
                        "finite",
                    );
                } else if !(-RAIL_TOL..=1.0 + RAIL_TOL).contains(&v) {
                    sink.push(
                        AuditCheck::Positivity,
                        TableRole::Peak,
                        Some(base + iw),
                        stim(iw),
                        v,
                        "normalized extremum within the rails",
                    );
                }
            }
            // A later blocker lets the causer's transition progress
            // further before being cut off: the falling-output minimum
            // deepens, the rising-output maximum climbs.
            for iw in 1..nw {
                let (a, b) = (row[iw - 1], row[iw]);
                if !(a.is_finite() && b.is_finite()) {
                    continue;
                }
                let bad = match g.output_edge {
                    Edge::Falling => b > a + opts.monotonicity_tol,
                    Edge::Rising => b < a - opts.monotonicity_tol,
                };
                if bad {
                    sink.push(
                        AuditCheck::Monotonicity,
                        TableRole::Peak,
                        Some(base + iw),
                        stim(iw),
                        b,
                        format!("monotone vs {a:.4e} along blocker arrival (§6)"),
                    );
                }
            }
            for (j, v, r) in row_outliers(row, opts) {
                sink.push(
                    AuditCheck::Outlier,
                    TableRole::Peak,
                    Some(base + j),
                    stim(j),
                    v,
                    format!("residual {r:.3e} within z·MAD of neighbors"),
                );
            }
        }
    }
    out
}

/// Structural findings: table shape/axis/finiteness violations and
/// non-finite model scalars. This is the (cheap) subset run at the
/// deserialization boundary.
fn structural_findings(model: &ProximityModel) -> Vec<AuditFinding> {
    let mut out = Vec::new();
    let mut push = |slice: SliceKind,
                    pin: usize,
                    edge: Edge,
                    partner: Option<usize>,
                    table: TableRole,
                    detail: String| {
        out.push(AuditFinding {
            check: AuditCheck::Structure,
            slice,
            pin,
            edge,
            partner,
            table,
            index: None,
            stimulus: Vec::new(),
            value: f64::NAN,
            expected: detail,
        });
    };
    for (i, &scalar) in [model.c_ref, model.dv_max].iter().enumerate() {
        if !(scalar.is_finite() && scalar > 0.0) {
            push(
                SliceKind::Correction,
                0,
                Edge::Rising,
                None,
                TableRole::Delay,
                format!("model scalar #{i} must be positive and finite, got {scalar:e}"),
            );
        }
    }
    for (e, &rs) in model.ramp_stretch.iter().enumerate() {
        if !(rs.is_finite() && rs > 0.0) {
            push(
                SliceKind::Correction,
                0,
                if e == 0 { Edge::Rising } else { Edge::Falling },
                None,
                TableRole::Transition,
                format!("ramp-stretch factor must be positive and finite, got {rs:e}"),
            );
        }
    }
    for (e, c) in model.corrections.iter().enumerate() {
        let edge = if e == 0 { Edge::Rising } else { Edge::Falling };
        if !(c.delay.is_finite() && c.trans.is_finite()) {
            push(
                SliceKind::Correction,
                0,
                edge,
                None,
                TableRole::Delay,
                format!(
                    "correction term must be finite, got ({:e}, {:e})",
                    c.delay, c.trans
                ),
            );
        }
    }
    for slots in &model.singles {
        for s in slots.iter().flatten() {
            let (d, t) = s.tables();
            for (role, r) in [
                (TableRole::Delay, d.validate()),
                (TableRole::Transition, t.validate()),
            ] {
                if let Err(e) = r {
                    push(
                        SliceKind::Single,
                        s.pin,
                        s.input_edge,
                        None,
                        role,
                        e.to_string(),
                    );
                }
            }
        }
    }
    for d in model
        .duals
        .iter()
        .flat_map(|s| s.iter().flatten())
        .chain(&model.extra_duals)
    {
        let (dr, tr) = d.tables();
        for (role, r) in [
            (TableRole::Delay, dr.validate()),
            (TableRole::Transition, tr.validate()),
        ] {
            if let Err(e) = r {
                push(
                    SliceKind::Dual,
                    d.pin,
                    d.input_edge,
                    Some(d.partner),
                    role,
                    e.to_string(),
                );
            }
        }
    }
    for m in model.nldm.iter().flat_map(|s| s.iter().flatten()) {
        let (dl, tr) = m.tables();
        for (role, r) in [
            (TableRole::Delay, dl.validate()),
            (TableRole::Transition, tr.validate()),
        ] {
            if let Err(e) = r {
                push(
                    SliceKind::LoadSlew,
                    m.pin,
                    m.input_edge,
                    None,
                    role,
                    e.to_string(),
                );
            }
        }
    }
    for g in &model.glitches {
        if let Err(e) = g.peak_table().validate() {
            push(
                SliceKind::Glitch,
                g.causer,
                g.causer_edge,
                Some(g.blocker),
                TableRole::Peak,
                e.to_string(),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The audit entry points
// ---------------------------------------------------------------------------

impl ProximityModel {
    /// Runs the full physics-invariant battery over every characterized
    /// table and returns the findings. Pure and cheap (table walks plus a
    /// handful of scalar root-finds); never mutates the model.
    pub fn audit(&self, opts: &AuditOptions) -> AuditReport {
        let span = obs::span("char.audit").arg("cell_pins", self.cell.input_count());
        let mut findings = structural_findings(self);
        for slots in &self.singles {
            for s in slots.iter().flatten() {
                findings.extend(check_single(s, opts));
            }
        }
        for d in self
            .duals
            .iter()
            .flat_map(|s| s.iter().flatten())
            .chain(&self.extra_duals)
        {
            findings.extend(check_dual(self, d, opts));
        }
        for m in self.nldm.iter().flat_map(|s| s.iter().flatten()) {
            findings.extend(check_nldm(m, opts));
        }
        for g in &self.glitches {
            findings.extend(check_glitch(g, opts));
        }
        if obs::metrics_enabled() {
            obs::Registry::global()
                .counter(metric::AUDIT_FINDINGS)
                .add(findings.len() as u64);
        }
        for f in findings.iter().take(8) {
            let _ = obs::event("char.audit.finding")
                .arg("check", format_args!("{:?}", f.check))
                .arg("slice", format_args!("{:?}", f.slice))
                .arg("pin", f.pin);
        }
        drop(span.arg("findings", findings.len()));
        AuditReport { findings }
    }

    /// Structural validation: shape, axis, and finiteness checks over every
    /// table and model scalar. This is what the persistence layer runs on
    /// every loaded or cached model, because serde deserialization fills
    /// table fields directly and would otherwise admit NaN/Inf or
    /// malformed axes into the query path.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Audit`] describing the first violation.
    pub fn validate(&self) -> Result<(), ModelError> {
        match structural_findings(self).into_iter().next() {
            None => Ok(()),
            Some(f) => Err(ModelError::Audit {
                detail: f.to_string(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Repair
// ---------------------------------------------------------------------------

/// Identity of one repairable slice, ordered for deterministic repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SliceId {
    kind_rank: u8,
    pin: usize,
    edge_idx: usize,
    partner: usize,
}

impl SliceId {
    fn new(f: &AuditFinding) -> Self {
        let kind_rank = match f.slice {
            SliceKind::Single => 0,
            SliceKind::Dual => 1,
            SliceKind::LoadSlew => 2,
            SliceKind::Glitch => 3,
            SliceKind::Correction => 4,
        };
        Self {
            kind_rank,
            pin: f.pin,
            edge_idx: eidx(f.edge),
            partner: f.partner.unwrap_or(usize::MAX),
        }
    }

    fn kind(&self) -> SliceKind {
        match self.kind_rank {
            0 => SliceKind::Single,
            1 => SliceKind::Dual,
            2 => SliceKind::LoadSlew,
            3 => SliceKind::Glitch,
            _ => SliceKind::Correction,
        }
    }

    fn edge(&self) -> Edge {
        if self.edge_idx == 0 {
            Edge::Rising
        } else {
            Edge::Falling
        }
    }
}

/// What happened to one slice inside the repair loop.
enum SliceRepair {
    Repaired {
        points: usize,
        escalated: usize,
        sims: usize,
    },
    Demote {
        reason: String,
        sims: usize,
    },
}

impl ProximityModel {
    /// Audits the model and repairs what it can: suspect grid points are
    /// re-enqueued through the [`crate::jobs`] pipeline (first at the
    /// original solver tolerance — a deterministic re-simulation restores
    /// byte-identical values for points corrupted after the fact — then at
    /// the tightened [`AuditOptions::repair_tolerance_scale`]), and slices
    /// that still fail their checks are demoted to [`DegradedSlice`]
    /// provenance exactly like a characterization-time failure, so
    /// [`ProximityModel::gate_timing`] keeps answering with `degradation`
    /// set.
    ///
    /// `char_opts` must be the option set the model was characterized with:
    /// the repair re-enumerates the slice grids from it, and demotes a
    /// slice whose tables do not match the grids instead of guessing.
    /// `control` carries the cancellation token (polled at every job
    /// boundary) and the optional checkpoint journal.
    ///
    /// Returns the pre-repair audit report and the repair counters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on cancellation/deadline expiry or a
    /// non-degradable failure; the §2/§3 violations themselves never error
    /// — they end as patched points or demoted slices.
    pub fn audit_and_repair(
        &mut self,
        char_opts: &CharacterizeOptions,
        opts: &AuditOptions,
        control: &RunControl,
    ) -> Result<(AuditReport, RepairOutcome), ModelError> {
        let report = self.audit(opts);
        let mut outcome = RepairOutcome::default();
        if report.is_clean() {
            return Ok((report, outcome));
        }
        let span = obs::span("audit.repair").arg("findings", report.len());

        // Group the suspect table indices by slice. Structural findings
        // (index None) have no stimulus to re-run and demote the slice.
        let mut groups: BTreeMap<SliceId, (Vec<usize>, bool)> = BTreeMap::new();
        for f in &report.findings {
            let entry = groups.entry(SliceId::new(f)).or_default();
            match f.index {
                Some(i) if !entry.0.contains(&i) => entry.0.push(i),
                Some(_) => {}
                None => entry.1 = true,
            }
        }

        let journal = match &control.checkpoint {
            Some(cfg) => {
                let key = crate::persist::fnv1a_64(
                    format!("audit-repair;{}", char_opts.cache_key_string()).as_bytes(),
                );
                Some(CheckpointJournal::open(cfg, key)?)
            }
            None => None,
        };

        let cell = self.cell.clone();
        let tech = self.tech.clone();
        let base_sim = Simulator::new(&cell, &tech, self.thresholds, self.c_ref, self.dv_max)
            .with_cancel(control.cancel.clone());

        for (id, (mut indices, structural)) in groups {
            indices.sort_unstable();
            let result = if structural {
                SliceRepair::Demote {
                    reason: "audit: structural table violation".into(),
                    sims: 0,
                }
            } else if indices.len() > opts.max_repair_points {
                SliceRepair::Demote {
                    reason: format!(
                        "audit: {} suspect points exceed the repair budget of {}",
                        indices.len(),
                        opts.max_repair_points
                    ),
                    sims: 0,
                }
            } else {
                self.repair_slice(&base_sim, &id, &indices, char_opts, opts, journal.as_ref())?
            };
            match result {
                SliceRepair::Repaired {
                    points,
                    escalated,
                    sims,
                } => {
                    outcome.repaired_points += points;
                    outcome.escalated_points += escalated;
                    outcome.sims_run += sims;
                }
                SliceRepair::Demote { reason, sims } => {
                    outcome.sims_run += sims;
                    outcome.demoted_slices += self.demote_slice(&id, &reason);
                }
            }
        }
        if let Some(j) = &journal {
            j.flush();
        }

        if obs::metrics_enabled() {
            let reg = obs::Registry::global();
            reg.counter(metric::REPAIR_POINTS)
                .add(outcome.repaired_points as u64);
            reg.counter(metric::REPAIR_DEMOTED)
                .add(outcome.demoted_slices as u64);
            reg.counter(metric::REPAIR_SIMS)
                .add(outcome.sims_run as u64);
        }
        drop(
            span.arg("repaired", outcome.repaired_points)
                .arg("demoted", outcome.demoted_slices)
                .arg("sims", outcome.sims_run),
        );
        Ok((report, outcome))
    }

    /// Re-simulates the suspect points of one slice and patches them in
    /// place; escalates to the tightened tolerance when the original
    /// tolerance does not clear the checks.
    fn repair_slice(
        &mut self,
        base_sim: &Simulator<'_>,
        id: &SliceId,
        indices: &[usize],
        char_opts: &CharacterizeOptions,
        opts: &AuditOptions,
        journal: Option<&CheckpointJournal>,
    ) -> Result<SliceRepair, ModelError> {
        let mut sims = 0usize;
        let mut escalated = 0usize;
        for (rung, scale) in [(0usize, 1.0), (1, opts.repair_tolerance_scale)] {
            let phase = if rung == 0 {
                "audit.repair"
            } else {
                "audit.repair.tight"
            };
            let sim = base_sim.clone().with_tolerance_scale(scale);
            let ran =
                self.resimulate_points(&sim, id, indices, char_opts, journal.map(|j| (j, phase)))?;
            let Some(ran) = ran else {
                return Ok(SliceRepair::Demote {
                    reason: "audit: characterization options do not match the model tables".into(),
                    sims,
                });
            };
            sims += ran.sims;
            if rung == 1 {
                escalated = ran.patched;
            }
            if ran.failed > 0 {
                continue; // escalate (or fall through to demotion below)
            }
            if self.slice_findings(id, opts).is_empty() {
                return Ok(SliceRepair::Repaired {
                    points: indices.len(),
                    escalated,
                    sims,
                });
            }
        }
        Ok(SliceRepair::Demote {
            reason: format!(
                "audit: {} point(s) unrepairable after tolerance escalation",
                indices.len()
            ),
            sims,
        })
    }

    /// Re-runs the audit checks for just the slice `id` refers to.
    fn slice_findings(&self, id: &SliceId, opts: &AuditOptions) -> Vec<AuditFinding> {
        let (pin, e) = (id.pin, id.edge_idx);
        match id.kind() {
            SliceKind::Single => self.singles[pin][e]
                .as_ref()
                .map(|s| check_single(s, opts))
                .unwrap_or_default(),
            SliceKind::Dual => self
                .dual_by_id(id)
                .map(|d| check_dual(self, d, opts))
                .unwrap_or_default(),
            SliceKind::LoadSlew => self.nldm[pin][e]
                .as_ref()
                .map(|m| check_nldm(m, opts))
                .unwrap_or_default(),
            SliceKind::Glitch => self
                .glitches
                .iter()
                .find(|g| g.causer == pin && eidx(g.causer_edge) == e && g.blocker == id.partner)
                .map(|g| check_glitch(g, opts))
                .unwrap_or_default(),
            SliceKind::Correction => Vec::new(),
        }
    }

    fn dual_by_id(&self, id: &SliceId) -> Option<&DualInputModel> {
        let probe = |d: &&DualInputModel| {
            d.pin == id.pin && eidx(d.input_edge) == id.edge_idx && d.partner == id.partner
        };
        self.duals
            .iter()
            .flat_map(|s| s.iter().flatten())
            .find(|d| probe(d))
            .or_else(|| self.extra_duals.iter().find(|d| probe(d)))
    }

    /// Re-simulates `indices` of the slice's grid and patches the tables.
    /// Returns `None` when the characterization options cannot reproduce
    /// the slice's stimuli (grid mismatch).
    fn resimulate_points(
        &mut self,
        sim: &Simulator<'_>,
        id: &SliceId,
        indices: &[usize],
        char_opts: &CharacterizeOptions,
        checkpoint: Option<(&CheckpointJournal, &str)>,
    ) -> Result<Option<PatchStats>, ModelError> {
        let (pin, e) = (id.pin, id.edge_idx);
        let edge = id.edge();

        // Enumerate the slice's full job grid exactly as characterization
        // did, then select the suspect subset by index.
        let (jobs, job_of_index): (Vec<SimJob>, Vec<usize>) = match id.kind() {
            SliceKind::Single => {
                let Some(single) = self.singles[pin][e].as_ref() else {
                    return Ok(Some(PatchStats::default()));
                };
                let all = SingleInputModel::enumerate(pin, edge, &char_opts.tau_grid)?;
                // The table axis is u-sorted and deduplicated; map each
                // table index back to the tau-grid job producing exactly
                // that u (bit-equal by construction).
                let xs = single.tables().0.xs().to_vec();
                let u_of_tau: Vec<u64> = char_opts
                    .tau_grid
                    .iter()
                    .map(|&tau| (self.c_ref / (single.k * single.vdd * tau)).to_bits())
                    .collect();
                let mut job_of = Vec::with_capacity(indices.len());
                for &i in indices {
                    let Some(&u) = xs.get(i) else { return Ok(None) };
                    match u_of_tau.iter().position(|&b| b == u.to_bits()) {
                        Some(j) => job_of.push(j),
                        None => return Ok(None),
                    }
                }
                (all, job_of)
            }
            SliceKind::Dual => {
                let Some(d) = self.dual_by_id(id) else {
                    return Ok(Some(PatchStats::default()));
                };
                let Some(single) = self.singles[pin][e].as_ref() else {
                    return Ok(None);
                };
                if !axes_match(d.tables().0.ax(), &char_opts.dual_u_grid, true)
                    || !axes_match(d.tables().0.ay(), &char_opts.dual_v_grid, true)
                    || !axes_match(d.tables().0.az(), &char_opts.dual_w_grid, false)
                {
                    return Ok(None);
                }
                let all = DualInputModel::enumerate(
                    &self.thresholds,
                    self.c_ref,
                    single,
                    d.partner,
                    &char_opts.dual_u_grid,
                    &char_opts.dual_v_grid,
                    &char_opts.dual_w_grid,
                );
                (all, indices.to_vec())
            }
            SliceKind::LoadSlew => {
                let Some(m) = self.nldm[pin][e].as_ref() else {
                    return Ok(Some(PatchStats::default()));
                };
                let Some(load_grid) = &char_opts.load_grid else {
                    return Ok(None);
                };
                if !axes_match(m.tables().0.ax(), &char_opts.tau_grid, true)
                    || !axes_match(m.tables().0.ay(), load_grid, true)
                {
                    return Ok(None);
                }
                let all = LoadSlewModel::enumerate(pin, edge, &char_opts.tau_grid, load_grid)?;
                (all, indices.to_vec())
            }
            SliceKind::Glitch => {
                let Some(g) = self.glitches.iter().find(|g| {
                    g.causer == pin && eidx(g.causer_edge) == e && g.blocker == id.partner
                }) else {
                    return Ok(Some(PatchStats::default()));
                };
                let Some(single) = self.singles[pin][e].as_ref() else {
                    return Ok(None);
                };
                if !axes_match(g.peak_table().ax(), &char_opts.glitch_u_grid, true)
                    || !axes_match(g.peak_table().ay(), &char_opts.glitch_v_grid, true)
                    || !axes_match(g.peak_table().az(), &char_opts.glitch_w_grid, false)
                {
                    return Ok(None);
                }
                let all = GlitchModel::enumerate(
                    &self.cell,
                    &self.thresholds,
                    self.c_ref,
                    single,
                    g.blocker,
                    &char_opts.glitch_u_grid,
                    &char_opts.glitch_v_grid,
                    &char_opts.glitch_w_grid,
                )?;
                (all, indices.to_vec())
            }
            SliceKind::Correction => (Vec::new(), Vec::new()),
        };

        let subset: Vec<SimJob> = {
            let mut s = Vec::with_capacity(job_of_index.len());
            for &j in &job_of_index {
                match jobs.get(j) {
                    Some(job) => s.push(job.clone()),
                    None => return Ok(None),
                }
            }
            s
        };
        if subset.is_empty() {
            return Ok(Some(PatchStats::default()));
        }

        let threads = char_opts.worker_threads().min(subset.len());
        let batch = execute_jobs_controlled(sim, &subset, threads, checkpoint);
        let mut stats = PatchStats {
            sims: batch.outcomes.len() - batch.skipped,
            ..PatchStats::default()
        };
        for (&table_idx, outcome) in indices.iter().zip(&batch.outcomes) {
            if let Some(e) = outcome.failure() {
                if e.is_cancellation() || !e.is_slice_degradable() {
                    return Err(e.clone());
                }
                stats.failed += 1;
                continue;
            }
            self.patch_point(id, table_idx, outcome, char_opts)?;
            stats.patched += 1;
        }
        Ok(Some(stats))
    }

    /// Writes one re-simulated measurement into the slice's tables using
    /// the same arithmetic the assembler used, so a clean re-simulation
    /// reproduces the clean-run bytes exactly.
    fn patch_point(
        &mut self,
        id: &SliceId,
        idx: usize,
        outcome: &JobOutcome,
        char_opts: &CharacterizeOptions,
    ) -> Result<(), ModelError> {
        let (pin, e) = (id.pin, id.edge_idx);
        let audit_err = |e: proxim_numeric::interp::BuildTableError| ModelError::Audit {
            detail: format!("repair patch rejected: {e}"),
        };
        match id.kind() {
            SliceKind::Single => {
                let Some(single) = self.singles[pin][e].as_mut() else {
                    return Ok(());
                };
                let (k, vdd, c_ref) = (single.k, single.vdd, self.c_ref);
                let u = single.tables().0.xs()[idx];
                let tau = char_opts
                    .tau_grid
                    .iter()
                    .copied()
                    .find(|&tau| (c_ref / (k * vdd * tau)).to_bits() == u.to_bits())
                    .ok_or(ModelError::Audit {
                        detail: "repair patch lost its tau stimulus".into(),
                    })?;
                let (delay, trans) = outcome.response()?;
                let (dt, tt) = single.tables_mut();
                dt.set_value(idx, delay / tau).map_err(audit_err)?;
                tt.set_value(idx, trans / tau).map_err(audit_err)?;
            }
            SliceKind::Dual => {
                let Some(single) = self.singles[pin][e].as_ref() else {
                    return Ok(());
                };
                let (nv, nw) = (char_opts.dual_v_grid.len(), char_opts.dual_w_grid.len());
                let u1 = char_opts.dual_u_grid[idx / (nv * nw)];
                let tau_i = single.tau_for_ratio(u1, self.c_ref);
                let d1 = single.delay(tau_i, self.c_ref);
                let t1 = single.transition(tau_i, self.c_ref);
                let (d2, t2) = outcome.response()?;
                let Some(d) = self.dual_by_id_mut(id) else {
                    return Ok(());
                };
                let (dr, tr) = d.tables_mut();
                dr.set_value(idx, d2 / d1).map_err(audit_err)?;
                tr.set_value(idx, t2 / t1).map_err(audit_err)?;
            }
            SliceKind::LoadSlew => {
                let (delay, trans) = outcome.response()?;
                let Some(m) = self.nldm[pin][e].as_mut() else {
                    return Ok(());
                };
                let (dt, tt) = m.tables_mut();
                dt.set_value(idx, delay).map_err(audit_err)?;
                tt.set_value(idx, trans).map_err(audit_err)?;
            }
            SliceKind::Glitch => {
                let peak = outcome.peak()?;
                let Some(g) = self.glitches.iter_mut().find(|g| {
                    g.causer == pin && eidx(g.causer_edge) == e && g.blocker == id.partner
                }) else {
                    return Ok(());
                };
                let vdd = g.vdd;
                g.peak_table_mut()
                    .set_value(idx, peak / vdd)
                    .map_err(audit_err)?;
            }
            SliceKind::Correction => {}
        }
        Ok(())
    }

    fn dual_by_id_mut(&mut self, id: &SliceId) -> Option<&mut DualInputModel> {
        let (pin, e, partner) = (id.pin, id.edge_idx, id.partner);
        let probe =
            |d: &DualInputModel| d.pin == pin && eidx(d.input_edge) == e && d.partner == partner;
        if self.duals[pin][e].as_ref().is_some_and(&probe) {
            return self.duals[pin][e].as_mut();
        }
        self.extra_duals.iter_mut().find(|d| probe(d))
    }

    /// Demotes one slice to [`DegradedSlice`] provenance, removing the
    /// unrepairable tables so queries fall back exactly like a
    /// characterization-time degradation. Demoting a single-input slice
    /// cascades to the slices that normalize against it. Returns how many
    /// slices were demoted.
    fn demote_slice(&mut self, id: &SliceId, reason: &str) -> usize {
        let (pin, e) = (id.pin, id.edge_idx);
        let edge = id.edge();
        let mut demoted = 0usize;
        let note = |this: &mut Self, kind: SliceKind, pin: usize, edge: Edge, reason: String| {
            this.degraded.push(DegradedSlice {
                kind,
                pin,
                edge,
                reason,
            });
            let _ = obs::event("char.slice.degraded")
                .arg("kind", format_args!("{kind:?}"))
                .arg("pin", pin)
                .arg("edge", format_args!("{edge:?}"))
                .arg("source", "audit");
        };
        match id.kind() {
            SliceKind::Single => {
                if self.singles[pin][e].take().is_some() {
                    note(self, SliceKind::Single, pin, edge, reason.to_string());
                    demoted += 1;
                }
                // Everything normalized against this single is now
                // unverifiable; demote the dependents too.
                let dep = format!("audit: dominant single-input slice demoted ({reason})");
                if self.duals[pin][e].take().is_some() {
                    note(self, SliceKind::Dual, pin, edge, dep.clone());
                    demoted += 1;
                }
                let before = self.extra_duals.len();
                self.extra_duals
                    .retain(|d| !(d.pin == pin && eidx(d.input_edge) == e));
                for _ in 0..before - self.extra_duals.len() {
                    note(self, SliceKind::Dual, pin, edge, dep.clone());
                    demoted += 1;
                }
                if self.nldm[pin][e].take().is_some() {
                    note(self, SliceKind::LoadSlew, pin, edge, dep.clone());
                    demoted += 1;
                }
                let before = self.glitches.len();
                self.glitches
                    .retain(|g| !(g.causer == pin && eidx(g.causer_edge) == e));
                for _ in 0..before - self.glitches.len() {
                    note(self, SliceKind::Glitch, pin, edge, dep.clone());
                    demoted += 1;
                }
            }
            SliceKind::Dual => {
                let removed = if self.duals[pin][e]
                    .as_ref()
                    .is_some_and(|d| d.partner == id.partner)
                {
                    self.duals[pin][e] = None;
                    true
                } else {
                    let before = self.extra_duals.len();
                    self.extra_duals.retain(|d| {
                        !(d.pin == pin && eidx(d.input_edge) == e && d.partner == id.partner)
                    });
                    self.extra_duals.len() != before
                };
                if removed {
                    note(self, SliceKind::Dual, pin, edge, reason.to_string());
                    demoted += 1;
                }
            }
            SliceKind::LoadSlew => {
                if self.nldm[pin][e].take().is_some() {
                    note(self, SliceKind::LoadSlew, pin, edge, reason.to_string());
                    demoted += 1;
                }
            }
            SliceKind::Glitch => {
                let before = self.glitches.len();
                self.glitches.retain(|g| {
                    !(g.causer == pin && eidx(g.causer_edge) == e && g.blocker == id.partner)
                });
                if self.glitches.len() != before {
                    note(self, SliceKind::Glitch, pin, edge, reason.to_string());
                    demoted += 1;
                }
            }
            SliceKind::Correction => {
                self.corrections[e] = CorrectionTerm::default();
                note(self, SliceKind::Correction, pin, edge, reason.to_string());
                demoted += 1;
            }
        }
        demoted
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct PatchStats {
    patched: usize,
    failed: usize,
    sims: usize,
}

/// Whether a stored table axis matches a characterization grid, bit-exact
/// (optionally through the same `ln` mapping the assemblers applied).
fn axes_match(axis: &[f64], grid: &[f64], ln: bool) -> bool {
    axis.len() == grid.len()
        && axis.iter().zip(grid).all(|(&a, &g)| {
            let g = if ln { g.ln() } else { g };
            a.to_bits() == g.to_bits()
        })
}

// ---------------------------------------------------------------------------
// Test-only tamper hook
// ---------------------------------------------------------------------------

#[cfg(any(test, feature = "fault-injection"))]
impl ProximityModel {
    /// Test-only corruption hook (compiled under `cfg(test)` and the
    /// `fault-injection` feature): overwrites one stored table entry so
    /// audit/repair suites can inject the silent corruption the audit is
    /// built to catch. Returns the previous value.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuery`] when the slice does not exist
    /// and [`ModelError::Audit`] when the index is out of range or the
    /// value non-finite.
    pub fn tamper_table_value(
        &mut self,
        slice: SliceKind,
        pin: usize,
        edge: Edge,
        table: TableRole,
        index: usize,
        value: f64,
    ) -> Result<f64, ModelError> {
        let missing = || ModelError::InvalidQuery {
            detail: format!("no {slice:?} slice for pin {pin} {edge:?}"),
        };
        let audit_err = |e: proxim_numeric::interp::BuildTableError| ModelError::Audit {
            detail: e.to_string(),
        };
        let e = eidx(edge);
        match (slice, table) {
            (SliceKind::Single, role) => {
                let s = self.singles[pin][e].as_mut().ok_or_else(missing)?;
                let (d, t) = s.tables_mut();
                let tab = if role == TableRole::Transition { t } else { d };
                let old = *tab.ys().get(index).ok_or_else(|| ModelError::Audit {
                    detail: format!("tamper index {index} out of range"),
                })?;
                tab.set_value(index, value).map_err(audit_err)?;
                Ok(old)
            }
            (SliceKind::Dual, role) => {
                let d = self.duals[pin][e].as_mut().ok_or_else(missing)?;
                let (dr, tr) = d.tables_mut();
                let tab = if role == TableRole::Transition {
                    tr
                } else {
                    dr
                };
                let old = *tab.values().get(index).ok_or_else(|| ModelError::Audit {
                    detail: format!("tamper index {index} out of range"),
                })?;
                tab.set_value(index, value).map_err(audit_err)?;
                Ok(old)
            }
            (SliceKind::LoadSlew, role) => {
                let m = self.nldm[pin][e].as_mut().ok_or_else(missing)?;
                let (dl, tr) = m.tables_mut();
                let tab = if role == TableRole::Transition {
                    tr
                } else {
                    dl
                };
                let old = *tab.values().get(index).ok_or_else(|| ModelError::Audit {
                    detail: format!("tamper index {index} out of range"),
                })?;
                tab.set_value(index, value).map_err(audit_err)?;
                Ok(old)
            }
            (SliceKind::Glitch, _) => {
                let g = self
                    .glitches
                    .iter_mut()
                    .find(|g| g.causer == pin && g.causer_edge == edge)
                    .ok_or_else(missing)?;
                let tab = g.peak_table_mut();
                let old = *tab.values().get(index).ok_or_else(|| ModelError::Audit {
                    detail: format!("tamper index {index} out of range"),
                })?;
                tab.set_value(index, value).map_err(audit_err)?;
                Ok(old)
            }
            (SliceKind::Correction, _) => Err(ModelError::InvalidQuery {
                detail: "correction terms have no table to tamper".into(),
            }),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn row_outliers_flags_spike_not_curvature() {
        // Smoothly curved row: no findings.
        let smooth: Vec<f64> = (0..9).map(|i| 1.0 + 0.05 * (i as f64).powi(2)).collect();
        assert!(row_outliers(&smooth, &AuditOptions::default()).is_empty());
        // Same row with one tampered spike: the spike is flagged. Its
        // immediate neighbors may flag too (the spike contaminates their
        // midpoint residuals), which is harmless — repair re-simulates
        // them to their original values — but nothing further may.
        let mut spiked = smooth;
        spiked[4] *= 7.0;
        let hits = row_outliers(&spiked, &AuditOptions::default());
        assert!(hits.iter().any(|h| h.0 == 4), "spike not flagged: {hits:?}");
        assert!(hits.iter().all(|h| (3..=5).contains(&h.0)), "{hits:?}");
    }

    #[test]
    fn row_outliers_needs_enough_points() {
        assert!(row_outliers(&[1.0, 100.0, 1.0], &AuditOptions::default()).is_empty());
    }

    #[test]
    fn finding_display_carries_provenance() {
        let f = AuditFinding {
            check: AuditCheck::Positivity,
            slice: SliceKind::Dual,
            pin: 1,
            edge: Edge::Rising,
            partner: Some(0),
            table: TableRole::Delay,
            index: Some(37),
            stimulus: vec![1.0, 2.0, 0.5],
            value: -0.25,
            expected: "> 0".into(),
        };
        let s = f.to_string();
        for needle in ["positivity", "Dual", "pin 1", "partner 0", "[37]", "> 0"] {
            assert!(s.contains(needle), "missing {needle:?} in {s}");
        }
    }

    #[test]
    fn axes_match_is_bit_exact() {
        let grid = [0.15f64, 1.1, 9.0];
        let ln_axis: Vec<f64> = grid.iter().map(|g| g.ln()).collect();
        assert!(axes_match(&ln_axis, &grid, true));
        assert!(axes_match(&grid, &grid, false));
        let mut off = ln_axis;
        off[1] += 1e-16;
        assert!(!axes_match(&off, &grid, true));
        assert!(!axes_match(&grid[..2], &grid, false));
    }
}
