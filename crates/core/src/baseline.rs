//! Prior-art baselines the paper compares against (§1).
//!
//! - [`single_switching_timing`]: the classic timing-analysis assumption
//!   that only one input switches at a time — the *causing* input (the one
//!   whose transition logically completes the output transition) is found
//!   and its single-input macromodel used verbatim. Proximity acceleration/
//!   deceleration is ignored entirely.
//! - [`CollapsedInverter`]: the series/parallel transistor-collapsing method
//!   of Jun et al. \[8\] and Nabavi-Lishi & Rumin \[13\] — the multi-input gate
//!   is reduced to an equivalent inverter (series devices divide the
//!   effective width, parallel switching devices add), driven by an
//!   equivalent input waveform (the causing input's ramp). Separations enter
//!   only through the choice of that waveform, which is exactly the
//!   shortcoming the paper identifies.

use crate::error::ModelError;
use crate::measure::{causing_rank, InputEvent, Scenario};
use crate::model::{GateTiming, ProximityModel};
use crate::single::SingleInputModel;
use crate::thresholds::Thresholds;
use proxim_cells::{Cell, Network, Technology};
use proxim_numeric::pwl::Edge;
use std::collections::HashMap;

/// The classic single-input-switching timing model: the causing input's
/// single-input delay and transition time, with all proximity interaction
/// ignored.
///
/// # Errors
///
/// Returns [`ModelError`] if the scenario is invalid or the causing pin has
/// no characterized single-input model.
pub fn single_switching_timing(
    model: &ProximityModel,
    events: &[InputEvent],
) -> Result<GateTiming, ModelError> {
    single_switching_timing_at_load(model, events, model.reference_load())
}

/// [`single_switching_timing`] at an explicit output load.
///
/// # Errors
///
/// Same conditions as [`single_switching_timing`].
pub fn single_switching_timing_at_load(
    model: &ProximityModel,
    events: &[InputEvent],
    c_load: f64,
) -> Result<GateTiming, ModelError> {
    let scenario = Scenario::resolve(model.cell(), events)?;
    let causing = causing_rank(model.cell(), events, &scenario, model.thresholds())?;
    let e = &events[causing.event_index];
    let single = model
        .single_model(e.pin, e.edge())
        .ok_or_else(|| ModelError::InvalidQuery {
            detail: format!("no single-input model for pin {} {}", e.pin, e.edge()),
        })?;
    let tau = e.transition_time();
    let delay = single.delay(tau, c_load);
    let trans = single.transition(tau, c_load);
    let arrival = e.arrival(model.thresholds());
    Ok(GateTiming {
        reference_pin: e.pin,
        delay,
        output_transition: trans,
        output_arrival: arrival + delay,
        output_edge: scenario.output_edge,
        inputs_in_window: 1,
        degradation: None,
    })
}

/// Computes the effective width multiplier of a switch network by series/
/// parallel conductance reduction, counting each switching or stable-ON
/// device as one unit of conductance and stable-OFF devices as opens.
///
/// Returns `None` when the network is entirely blocked.
fn conductance_units(net: &Network, on: &dyn Fn(usize) -> bool) -> Option<f64> {
    match net {
        Network::Input(i) => {
            if on(*i) {
                Some(1.0)
            } else {
                None
            }
        }
        Network::Series(xs) => {
            let mut inv_sum = 0.0;
            for x in xs {
                inv_sum += 1.0 / conductance_units(x, on)?;
            }
            Some(1.0 / inv_sum)
        }
        Network::Parallel(xs) => {
            let g: f64 = xs.iter().filter_map(|x| conductance_units(x, on)).sum();
            if g > 0.0 {
                Some(g)
            } else {
                None
            }
        }
    }
}

/// The collapse-to-inverter baseline, with a cache of characterized
/// equivalent inverters (keyed by quantized effective widths).
#[derive(Debug)]
pub struct CollapsedInverter {
    tech: Technology,
    c_load: f64,
    dv_max: f64,
    tau_grid: Vec<f64>,
    cache: HashMap<(u64, u64, bool), SingleInputModel>,
}

impl CollapsedInverter {
    /// Creates a baseline evaluator; `tau_grid` controls the equivalent
    /// inverter's characterization sweep.
    pub fn new(tech: Technology, c_load: f64, dv_max: f64, tau_grid: Vec<f64>) -> Self {
        Self {
            tech,
            c_load,
            dv_max,
            tau_grid,
            cache: HashMap::new(),
        }
    }

    /// Evaluates the baseline on a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the scenario is invalid or the equivalent
    /// inverter fails to characterize.
    pub fn timing(
        &mut self,
        cell: &Cell,
        thresholds: Thresholds,
        events: &[InputEvent],
    ) -> Result<GateTiming, ModelError> {
        let scenario = Scenario::resolve(cell, events)?;
        let causing = causing_rank(cell, events, &scenario, &thresholds)?;
        let cause = &events[causing.event_index];

        // Device states at the end of the scenario (all events completed).
        let n = cell.input_count();
        let mut final_levels = vec![false; n];
        for (pin, lv) in scenario.stable_levels.iter().enumerate() {
            if let Some(h) = lv {
                final_levels[pin] = *h;
            }
        }
        for e in events {
            final_levels[e.pin] = e.edge() == Edge::Rising;
        }

        // Effective widths of the conducting network after the transition.
        let pdn = cell.pdn();
        let pun = pdn.dual();
        let (wn_eff, wp_eff) = match scenario.output_edge {
            Edge::Falling => {
                let g = conductance_units(pdn, &|i| final_levels[i]).ok_or_else(|| {
                    ModelError::InvalidQuery {
                        detail: "pull-down never conducts".into(),
                    }
                })?;
                (cell.wn() * g, cell.wp())
            }
            Edge::Rising => {
                let g = conductance_units(&pun, &|i| !final_levels[i]).ok_or_else(|| {
                    ModelError::InvalidQuery {
                        detail: "pull-up never conducts".into(),
                    }
                })?;
                (cell.wn(), cell.wp() * g)
            }
        };

        let c_load = self.c_load;
        let single = self.equivalent_inverter(wn_eff, wp_eff, cause.edge(), thresholds)?;
        let tau = cause.transition_time();
        let delay = single.delay(tau, c_load);
        let trans = single.transition(tau, c_load);
        let arrival = cause.arrival(&thresholds);
        Ok(GateTiming {
            reference_pin: cause.pin,
            delay,
            output_transition: trans,
            output_arrival: arrival + delay,
            output_edge: scenario.output_edge,
            inputs_in_window: 1,
            degradation: None,
        })
    }

    fn equivalent_inverter(
        &mut self,
        wn: f64,
        wp: f64,
        input_edge: Edge,
        thresholds: Thresholds,
    ) -> Result<&SingleInputModel, ModelError> {
        let key = (
            (wn * 1e12).round() as u64,
            (wp * 1e12).round() as u64,
            input_edge == Edge::Rising,
        );
        match self.cache.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
            std::collections::hash_map::Entry::Vacant(v) => {
                let inv = Cell::inv().with_widths(wn, wp);
                let sim = crate::characterize::Simulator::new(
                    &inv,
                    &self.tech,
                    thresholds,
                    self.c_load,
                    self.dv_max,
                );
                let model = SingleInputModel::characterize(&sim, 0, input_edge, &self.tau_grid)?;
                Ok(v.insert(model))
            }
        }
    }

    /// Number of distinct equivalent inverters characterized so far.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn causing_event_for_rising_nand_inputs_is_last_arrival() {
        let cell = Cell::nand(3);
        let th = Thresholds::new(1.2, 3.4, 5.0);
        let events = vec![
            InputEvent::new(0, Edge::Rising, 0.3e-9, 100e-12),
            InputEvent::new(1, Edge::Rising, 0.0, 100e-12),
            InputEvent::new(2, Edge::Rising, 0.1e-9, 100e-12),
        ];
        let s = Scenario::resolve(&cell, &events).unwrap();
        let c = causing_rank(&cell, &events, &s, &th).unwrap();
        assert_eq!(c.rank, 3, "series stack completes with the last riser");
        assert_eq!(events[c.event_index].pin, 0);
    }

    #[test]
    fn causing_event_for_falling_nand_inputs_is_first_arrival() {
        let cell = Cell::nand(3);
        let th = Thresholds::new(1.2, 3.4, 5.0);
        let events = vec![
            InputEvent::new(0, Edge::Falling, 0.3e-9, 100e-12),
            InputEvent::new(1, Edge::Falling, 0.0, 100e-12),
        ];
        let s = Scenario::resolve(&cell, &events).unwrap();
        let c = causing_rank(&cell, &events, &s, &th).unwrap();
        assert_eq!(c.rank, 1, "any falling input opens the pull-up");
        assert_eq!(events[c.event_index].pin, 1);
    }

    #[test]
    fn conductance_units_series_divides() {
        let net = Network::Series(vec![
            Network::Input(0),
            Network::Input(1),
            Network::Input(2),
        ]);
        let g = conductance_units(&net, &|_| true).unwrap();
        assert!((g - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn conductance_units_parallel_adds_only_on_branches() {
        let net = Network::Parallel(vec![Network::Input(0), Network::Input(1)]);
        assert_eq!(conductance_units(&net, &|i| i == 0), Some(1.0));
        assert_eq!(conductance_units(&net, &|_| true), Some(2.0));
        assert_eq!(conductance_units(&net, &|_| false), None);
    }

    #[test]
    fn conductance_units_aoi() {
        // AOI21 PDN: (0 series 1) parallel 2.
        let net = Network::Parallel(vec![
            Network::Series(vec![Network::Input(0), Network::Input(1)]),
            Network::Input(2),
        ]);
        // Both branches on: 0.5 + 1.
        assert!((conductance_units(&net, &|_| true).unwrap() - 1.5).abs() < 1e-12);
        // Only series branch: 0.5.
        assert!((conductance_units(&net, &|i| i != 2).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn collapsed_inverter_cache_reuses_models() {
        let tech = Technology::demo_5v();
        let th = Thresholds::new(1.2, 3.4, 5.0);
        let mut base =
            CollapsedInverter::new(tech, 100e-15, 0.12, vec![150e-12, 600e-12, 1800e-12]);
        let cell = Cell::nand(2);
        let events = vec![
            InputEvent::new(0, Edge::Rising, 0.0, 300e-12),
            InputEvent::new(1, Edge::Rising, 0.0, 300e-12),
        ];
        let t1 = base.timing(&cell, th, &events).unwrap();
        assert_eq!(base.cache_len(), 1);
        let t2 = base.timing(&cell, th, &events).unwrap();
        assert_eq!(base.cache_len(), 1, "same widths hit the cache");
        assert_eq!(t1.delay, t2.delay);
        assert!(t1.delay > 0.0);
        assert_eq!(t1.output_edge, Edge::Falling);
    }
}
