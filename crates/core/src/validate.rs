//! Model validation against the circuit simulator.
//!
//! The paper validates its macromodels by comparing against HSPICE over
//! randomly generated input configurations (§5). [`validate`] packages that
//! flow for any characterized model: generate scenarios, simulate, query the
//! model, and summarize percentage errors — so downstream users can qualify
//! their own cells the way Table 5-1 qualifies the NAND3.

use crate::characterize::Simulator;
use crate::error::ModelError;
use crate::measure::InputEvent;
use crate::model::ProximityModel;
use proxim_numeric::pwl::Edge;
use proxim_numeric::Summary;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Controls for a validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateOptions {
    /// Number of random configurations.
    pub configs: usize,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
    /// Input transition-time range, in seconds.
    pub tau_range: (f64, f64),
    /// Separation range (each non-reference input vs. the first), in
    /// seconds.
    pub separation_range: (f64, f64),
    /// Input edge for all switching inputs.
    pub edge: Edge,
    /// How many inputs switch per scenario (clamped to the cell fan-in).
    pub switching_inputs: usize,
    /// Golden-simulation accuracy knob.
    pub dv_max: f64,
}

impl Default for ValidateOptions {
    /// The paper's §5 setup: 100 configs, τ ∈ [50 ps, 2000 ps],
    /// s ∈ [−500 ps, +500 ps], falling inputs, all pins switching.
    fn default() -> Self {
        Self {
            configs: 100,
            seed: 1996,
            tau_range: (50e-12, 2000e-12),
            separation_range: (-500e-12, 500e-12),
            edge: Edge::Falling,
            switching_inputs: usize::MAX,
            dv_max: 0.03,
        }
    }
}

/// One validated configuration.
#[derive(Debug, Clone)]
pub struct ValidatedConfig {
    /// The events that were applied.
    pub events: Vec<InputEvent>,
    /// Simulated delay (relative to the model's reference pin), in seconds.
    pub delay_sim: f64,
    /// Model delay, in seconds.
    pub delay_model: f64,
    /// Simulated output transition time, in seconds.
    pub trans_sim: f64,
    /// Model output transition time, in seconds.
    pub trans_model: f64,
}

impl ValidatedConfig {
    /// Delay percentage error.
    pub fn delay_err_pct(&self) -> f64 {
        (self.delay_model - self.delay_sim) / self.delay_sim * 100.0
    }

    /// Transition-time percentage error.
    pub fn trans_err_pct(&self) -> f64 {
        (self.trans_model - self.trans_sim) / self.trans_sim * 100.0
    }
}

/// The result of a validation run.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Per-configuration detail.
    pub configs: Vec<ValidatedConfig>,
    /// Delay-error summary, in percent.
    pub delay: Summary,
    /// Transition-time-error summary, in percent.
    pub trans: Summary,
}

impl ValidationReport {
    /// The worst absolute delay error, in percent.
    pub fn worst_delay_err_pct(&self) -> f64 {
        self.delay.max.abs().max(self.delay.min.abs())
    }
}

/// Validates a characterized model against fresh golden simulations.
///
/// # Errors
///
/// Returns [`ModelError`] if a scenario cannot be resolved or a simulation
/// fails.
///
/// # Panics
///
/// Panics if `opts.configs == 0` or a range is inverted.
pub fn validate(
    model: &ProximityModel,
    opts: &ValidateOptions,
) -> Result<ValidationReport, ModelError> {
    assert!(
        opts.configs > 0,
        "validation needs at least one configuration"
    );
    assert!(opts.tau_range.0 < opts.tau_range.1, "tau range inverted");
    assert!(
        opts.separation_range.0 <= opts.separation_range.1,
        "separation range inverted"
    );
    let n = model.cell().input_count().min(opts.switching_inputs.max(1));
    let th = *model.thresholds();
    let sim = Simulator::new(
        model.cell(),
        model.tech(),
        th,
        model.reference_load(),
        opts.dv_max,
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut configs = Vec::with_capacity(opts.configs);

    for _ in 0..opts.configs {
        let tau0 = rng.random_range(opts.tau_range.0..opts.tau_range.1);
        let e0 = InputEvent::new(0, opts.edge, 0.0, tau0);
        let arrival0 = e0.arrival(&th);
        let mut events = vec![e0];
        for pin in 1..n {
            let tau = rng.random_range(opts.tau_range.0..opts.tau_range.1);
            let s = if opts.separation_range.0 == opts.separation_range.1 {
                opts.separation_range.0
            } else {
                rng.random_range(opts.separation_range.0..opts.separation_range.1)
            };
            let frac = InputEvent::new(pin, opts.edge, 0.0, tau).arrival(&th);
            events.push(InputEvent::new(pin, opts.edge, arrival0 + s - frac, tau));
        }

        let predicted = model.gate_timing(&events)?;
        let r = sim.simulate(&events)?;
        let Some(k) = events.iter().position(|e| e.pin == predicted.reference_pin) else {
            return Err(ModelError::InvalidQuery {
                detail: "reference pin is not among the scenario events".into(),
            });
        };
        let delay_sim = r.delay_from(k, &th)?;
        let trans_sim = r.transition_time(&th)?;
        configs.push(ValidatedConfig {
            events,
            delay_sim,
            delay_model: predicted.delay,
            trans_sim,
            trans_model: predicted.output_transition,
        });
    }

    let delay = Summary::of(
        &configs
            .iter()
            .map(|c| c.delay_err_pct())
            .collect::<Vec<_>>(),
    );
    let trans = Summary::of(
        &configs
            .iter()
            .map(|c| c.trans_err_pct())
            .collect::<Vec<_>>(),
    );
    Ok(ValidationReport {
        configs,
        delay,
        trans,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::characterize::CharacterizeOptions;
    use proxim_cells::{Cell, Technology};

    #[test]
    fn validation_runs_and_is_reproducible() {
        let tech = Technology::demo_5v();
        let model =
            ProximityModel::characterize(&Cell::nand(2), &tech, &CharacterizeOptions::fast())
                .unwrap();
        let opts = ValidateOptions {
            configs: 5,
            dv_max: 0.08,
            ..ValidateOptions::default()
        };
        let a = validate(&model, &opts).unwrap();
        let b = validate(&model, &opts).unwrap();
        assert_eq!(a.configs.len(), 5);
        assert_eq!(a.delay.mean, b.delay.mean, "same seed, same report");
        assert!(a.worst_delay_err_pct() < 50.0, "fast fidelity sanity band");
    }

    #[test]
    fn rising_edge_validation_also_works() {
        let tech = Technology::demo_5v();
        let model =
            ProximityModel::characterize(&Cell::nand(2), &tech, &CharacterizeOptions::fast())
                .unwrap();
        let opts = ValidateOptions {
            configs: 4,
            edge: Edge::Rising,
            dv_max: 0.08,
            ..ValidateOptions::default()
        };
        let r = validate(&model, &opts).unwrap();
        assert_eq!(r.configs.len(), 4);
        for c in &r.configs {
            assert!(c.delay_sim > 0.0 && c.delay_model > 0.0);
        }
    }

    #[test]
    fn single_switching_input_validation() {
        let tech = Technology::demo_5v();
        let model =
            ProximityModel::characterize(&Cell::nand(2), &tech, &CharacterizeOptions::fast())
                .unwrap();
        let opts = ValidateOptions {
            configs: 4,
            switching_inputs: 1,
            dv_max: 0.08,
            ..ValidateOptions::default()
        };
        let r = validate(&model, &opts).unwrap();
        // Single-input queries hit the characterization points' own law:
        // errors stay small even at fast fidelity.
        assert!(r.worst_delay_err_pct() < 10.0, "{:?}", r.delay);
    }
}
