//! Load–slew (NLDM-style) single-input tables.
//!
//! The paper's dimensionless single-input form (eq. 3.7) holds at a fixed
//! load: the internal junction-to-load capacitance ratio is a further
//! dimensionless group it neglects, so a model characterized at 100 fF errs
//! when queried at a few-fF fanout net (see EXPERIMENTS.md, path
//! validation). The industry answer — and the natural content of the
//! paper's "comprehensive delay model" future work (§7) — is a 2-D table
//! over *(input transition time, output load)*. [`LoadSlewModel`]
//! characterizes exactly that, on log-spaced axes with bilinear
//! interpolation in the log domain.

use crate::characterize::Simulator;
use crate::error::ModelError;
use crate::jobs::{execute_jobs, first_error, JobOutcome, SimJob};
use crate::measure::InputEvent;
use crate::single::edge_serde;
use proxim_numeric::pwl::Edge;
use proxim_numeric::Table2d;
use serde::{Deserialize, Serialize};

/// A characterized load–slew delay/transition surface for one
/// `(pin, input edge)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSlewModel {
    /// The input pin.
    pub pin: usize,
    /// The input transition direction.
    #[serde(with = "edge_serde")]
    pub input_edge: Edge,
    /// The output transition direction it produces.
    #[serde(with = "edge_serde")]
    pub output_edge: Edge,
    /// Delay surface over `(ln τ, ln C_L)`, in seconds.
    delay: Table2d,
    /// Output-transition-time surface over `(ln τ, ln C_L)`, in seconds.
    trans: Table2d,
    /// Characterized τ bounds.
    tau_range: (f64, f64),
    /// Characterized load bounds.
    load_range: (f64, f64),
}

impl LoadSlewModel {
    /// Characterizes the surface: one transient per `(τ, load)` grid point.
    ///
    /// The simulator's own `c_load` is ignored; each column runs at its
    /// grid load.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on simulation failure or degenerate grids.
    pub fn characterize(
        sim: &Simulator<'_>,
        pin: usize,
        input_edge: Edge,
        tau_grid: &[f64],
        load_grid: &[f64],
    ) -> Result<Self, ModelError> {
        let jobs = Self::enumerate(pin, input_edge, tau_grid, load_grid)?;
        let batch = execute_jobs(sim, &jobs, 1);
        Self::assemble(
            pin,
            input_edge,
            tau_grid,
            load_grid,
            &first_error(&batch.outcomes)?,
        )
    }

    /// Enumerates the `(τ, load)` grid as independent simulation jobs in
    /// row-major order (τ outermost), each with its own load override.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Table`] on degenerate grids.
    pub fn enumerate(
        pin: usize,
        input_edge: Edge,
        tau_grid: &[f64],
        load_grid: &[f64],
    ) -> Result<Vec<SimJob>, ModelError> {
        if tau_grid.len() < 2 || load_grid.len() < 2 {
            return Err(ModelError::Table(
                "load-slew grids need >= 2 points per axis".into(),
            ));
        }
        let mut jobs = Vec::with_capacity(tau_grid.len() * load_grid.len());
        for &tau in tau_grid {
            for &c in load_grid {
                jobs.push(SimJob::events_at_load(
                    vec![InputEvent::new(pin, input_edge, 0.0, tau)],
                    c,
                ));
            }
        }
        Ok(jobs)
    }

    /// Builds the surface from executed job outcomes in enumeration order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on degenerate grids.
    ///
    /// # Panics
    ///
    /// Panics if the outcome count does not match the enumeration.
    pub fn assemble(
        pin: usize,
        input_edge: Edge,
        tau_grid: &[f64],
        load_grid: &[f64],
        outcomes: &[&JobOutcome],
    ) -> Result<Self, ModelError> {
        let expected = tau_grid.len() * load_grid.len();
        assert_eq!(outcomes.len(), expected, "one outcome per grid point");
        let mut delays = Vec::with_capacity(expected);
        let mut transs = Vec::with_capacity(expected);
        let mut output_edge = None;
        for outcome in outcomes {
            let JobOutcome::Response {
                output_edge: oe,
                delay,
                trans,
                ..
            } = outcome
            else {
                return Err(match outcome.failure() {
                    Some(e) => e.clone(),
                    None => ModelError::Table("load-slew assembly expects events responses".into()),
                });
            };
            output_edge = Some(*oe);
            delays.push(*delay);
            transs.push(*trans);
        }
        let Some(output_edge) = output_edge else {
            return Err(ModelError::Table("load-slew grids produced no rows".into()));
        };
        let ln_tau: Vec<f64> = tau_grid.iter().map(|t| t.ln()).collect();
        let ln_load: Vec<f64> = load_grid.iter().map(|c| c.ln()).collect();
        Ok(Self {
            pin,
            input_edge,
            output_edge,
            delay: Table2d::new(ln_tau.clone(), ln_load.clone(), delays)?,
            trans: Table2d::new(ln_tau, ln_load, transs)?,
            // Both grids were validated to hold at least two points.
            tau_range: (tau_grid[0], tau_grid[tau_grid.len() - 1]),
            load_range: (load_grid[0], load_grid[load_grid.len() - 1]),
        })
    }

    /// The single-input delay at `(tau, c_load)`, clamped to the
    /// characterized box.
    ///
    /// # Panics
    ///
    /// Panics if `tau` or `c_load` is not strictly positive.
    pub fn delay(&self, tau: f64, c_load: f64) -> f64 {
        assert!(tau > 0.0 && c_load > 0.0, "tau and load must be positive");
        self.delay.eval(tau.ln(), c_load.ln())
    }

    /// The output transition time at `(tau, c_load)`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` or `c_load` is not strictly positive.
    pub fn transition(&self, tau: f64, c_load: f64) -> f64 {
        assert!(tau > 0.0 && c_load > 0.0, "tau and load must be positive");
        self.trans.eval(tau.ln(), c_load.ln())
    }

    /// The characterized τ bounds.
    pub fn tau_range(&self) -> (f64, f64) {
        self.tau_range
    }

    /// The characterized load bounds.
    pub fn load_range(&self) -> (f64, f64) {
        self.load_range
    }

    /// Storage cost in table entries.
    pub fn table_len(&self) -> usize {
        self.delay.len() + self.trans.len()
    }

    /// Audit access: the `(delay, transition)` surfaces.
    pub(crate) fn tables(&self) -> (&Table2d, &Table2d) {
        (&self.delay, &self.trans)
    }

    /// Audit repair access: the `(delay, transition)` surfaces, mutably.
    pub(crate) fn tables_mut(&mut self) -> (&mut Table2d, &mut Table2d) {
        (&mut self.delay, &mut self.trans)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::thresholds::Thresholds;
    use proxim_cells::{Cell, Technology};
    use proxim_numeric::grid::logspace;

    fn setup() -> (Cell, Technology, Thresholds) {
        (
            Cell::nand(2),
            Technology::demo_5v(),
            Thresholds::new(1.8, 3.78, 5.0),
        )
    }

    #[test]
    fn surface_reproduces_grid_points_and_interpolates() {
        let (cell, tech, th) = setup();
        let sim = Simulator::new(&cell, &tech, th, 100e-15, 0.08);
        let tau_grid = logspace(100e-12, 1500e-12, 3);
        let load_grid = logspace(10e-15, 200e-15, 3);
        let m = LoadSlewModel::characterize(&sim, 0, Edge::Rising, &tau_grid, &load_grid).unwrap();
        assert_eq!(m.output_edge, Edge::Falling);
        assert_eq!(m.table_len(), 18);

        // Exact at a grid point.
        let pass = Simulator {
            c_load: load_grid[1],
            ..sim.clone()
        };
        let r = pass
            .simulate(&[InputEvent::new(0, Edge::Rising, 0.0, tau_grid[1])])
            .unwrap();
        let d_sim = r.delay_from(0, &th).unwrap();
        assert!((m.delay(tau_grid[1], load_grid[1]) - d_sim).abs() / d_sim < 1e-9);

        // Monotone in load and in tau at fixed other coordinate.
        assert!(m.delay(400e-12, 150e-15) > m.delay(400e-12, 20e-15));
        assert!(m.delay(1200e-12, 50e-15) > m.delay(150e-12, 50e-15));
    }

    #[test]
    fn load_slew_beats_fixed_load_model_off_reference() {
        // The motivating case: query at a small fanout-like load, far from
        // the 100 fF the 1-D dimensionless model was characterized at.
        use crate::single::SingleInputModel;
        let (cell, tech, th) = setup();
        let sim = Simulator::new(&cell, &tech, th, 100e-15, 0.08);
        let tau_grid = logspace(100e-12, 1500e-12, 4);
        let one_d = SingleInputModel::characterize(&sim, 0, Edge::Rising, &tau_grid).unwrap();
        let two_d = LoadSlewModel::characterize(
            &sim,
            0,
            Edge::Rising,
            &tau_grid,
            &logspace(8e-15, 250e-15, 4),
        )
        .unwrap();

        let (tau, c_small) = (600e-12, 15e-15);
        let pass = Simulator {
            c_load: c_small,
            ..sim.clone()
        };
        let r = pass
            .simulate(&[InputEvent::new(0, Edge::Rising, 0.0, tau)])
            .unwrap();
        let d_sim = r.delay_from(0, &th).unwrap();

        let err_1d = (one_d.delay(tau, c_small) - d_sim).abs() / d_sim;
        let err_2d = (two_d.delay(tau, c_small) - d_sim).abs() / d_sim;
        assert!(
            err_2d < err_1d,
            "2-D should beat the fixed-load form off-reference: {err_2d} vs {err_1d}"
        );
        assert!(err_2d < 0.05, "2-D error at small load: {err_2d}");
    }
}
