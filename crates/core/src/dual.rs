//! Dual-input proximity macromodels (§3, eqs. 3.11/3.12).
//!
//! When two inputs switch in proximity, dimensional analysis (after
//! conjecturing that proximity is a perturbation of the dominant input's
//! single-input response) reduces delay and output transition time to
//! three-argument functions:
//!
//! ```text
//! Δ⁽²⁾ / Δ⁽¹⁾ = D⁽²⁾( τ_i/Δ⁽¹⁾, τ_j/Δ⁽¹⁾, s_ij/Δ⁽¹⁾ )
//! τ⁽²⁾ / τ⁽¹⁾ = T⁽²⁾( τ_i/Δ⁽¹⁾, τ_j/Δ⁽¹⁾, s_ij/Δ⁽¹⁾ )
//! ```
//!
//! where `i` is the dominant input. The paper normalizes the `T⁽²⁾`
//! arguments by `τ⁽¹⁾`; we normalize both tables by `Δ⁽¹⁾` instead so one
//! simulation grid feeds both. Because `τ⁽¹⁾` is itself a function of
//! `τ_i` at fixed load, the two parameterizations carry the same
//! information and the Buckingham-π argument applies unchanged; DESIGN.md
//! documents this as an implementation choice.
//!
//! Tables are characterized on an exact normalized grid: for each `u₁` the
//! characterizer inverts the single-input model for the `τ_i` that lands on
//! it, then sets `τ_j = v·Δ⁽¹⁾` and `s = w·Δ⁽¹⁾`.

use crate::characterize::Simulator;
use crate::error::ModelError;
use crate::jobs::{execute_jobs, first_error, JobOutcome, SimJob};
use crate::measure::InputEvent;
use crate::single::{edge_as_bool as edge_serde, SingleInputModel};
use crate::thresholds::Thresholds;
use proxim_numeric::pwl::Edge;
use proxim_numeric::Table3d;
use serde::{Deserialize, Serialize};

/// Floor on generated partner transition times during characterization.
const TAU_MIN: f64 = 10e-12;

/// A characterized dual-input proximity model for one dominant
/// `(pin, input edge)` and a representative partner pin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DualInputModel {
    /// The dominant (reference) pin `i`.
    pub pin: usize,
    /// The partner pin `j` used during characterization.
    pub partner: usize,
    /// Input transition direction (both inputs switch the same way).
    #[serde(with = "edge_serde")]
    pub input_edge: Edge,
    /// `D⁽²⁾` ratio table over `(u₁, v, w)`.
    delay_ratio: Table3d,
    /// `T⁽²⁾` ratio table over `(u₁, v, w)`.
    trans_ratio: Table3d,
}

impl DualInputModel {
    /// Characterizes the model against the simulator.
    ///
    /// `single` must be the dominant pin's [`SingleInputModel`] for the same
    /// input edge; its table defines the `Δ⁽¹⁾` used for normalization, so
    /// model evaluation composes exactly at the grid points.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on simulation failure or degenerate grids.
    ///
    /// # Panics
    ///
    /// Panics if `single` belongs to a different pin or edge.
    pub fn characterize(
        sim: &Simulator<'_>,
        single: &SingleInputModel,
        partner: usize,
        u_grid: &[f64],
        v_grid: &[f64],
        w_grid: &[f64],
    ) -> Result<Self, ModelError> {
        let jobs = Self::enumerate(
            &sim.thresholds,
            sim.c_load,
            single,
            partner,
            u_grid,
            v_grid,
            w_grid,
        );
        let batch = execute_jobs(sim, &jobs, 1);
        Self::assemble(
            sim.c_load,
            single,
            partner,
            u_grid,
            v_grid,
            w_grid,
            &first_error(&batch.outcomes)?,
        )
    }

    /// Enumerates the `(u₁, v, w)` grid as independent simulation jobs in
    /// row-major order (`u` outermost, `w` innermost).
    ///
    /// # Panics
    ///
    /// Panics if `partner == single.pin`.
    pub fn enumerate(
        th: &Thresholds,
        c_load: f64,
        single: &SingleInputModel,
        partner: usize,
        u_grid: &[f64],
        v_grid: &[f64],
        w_grid: &[f64],
    ) -> Vec<SimJob> {
        let pin = single.pin;
        assert_ne!(pin, partner, "partner must differ from the dominant pin");
        let edge = single.input_edge;
        let mut jobs = Vec::with_capacity(u_grid.len() * v_grid.len() * w_grid.len());
        for &u1 in u_grid {
            let tau_i = single.tau_for_ratio(u1, c_load);
            let d1 = single.delay(tau_i, c_load);
            let e_i = InputEvent::new(pin, edge, 0.0, tau_i);
            let arrival_i = e_i.arrival(th);
            for &v in v_grid {
                let tau_j = (v * d1).max(TAU_MIN);
                for &w in w_grid {
                    let s = w * d1;
                    // Place the partner so its arrival is exactly
                    // `arrival_i + s`.
                    let frac_j = {
                        let probe = InputEvent::new(partner, edge, 0.0, tau_j);
                        probe.arrival(th)
                    };
                    let e_j = InputEvent::new(partner, edge, arrival_i + s - frac_j, tau_j);
                    jobs.push(SimJob::events(vec![e_i, e_j]));
                }
            }
        }
        jobs
    }

    /// Builds the model from executed job outcomes in enumeration order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on degenerate grids.
    ///
    /// # Panics
    ///
    /// Panics if the outcome count does not match the enumeration.
    pub fn assemble(
        c_load: f64,
        single: &SingleInputModel,
        partner: usize,
        u_grid: &[f64],
        v_grid: &[f64],
        w_grid: &[f64],
        outcomes: &[&JobOutcome],
    ) -> Result<Self, ModelError> {
        let pin = single.pin;
        let edge = single.input_edge;
        let expected = u_grid.len() * v_grid.len() * w_grid.len();
        assert_eq!(outcomes.len(), expected, "one outcome per grid point");

        let mut delay_vals = Vec::with_capacity(expected);
        let mut trans_vals = Vec::with_capacity(expected);
        let mut it = outcomes.iter();
        for &u1 in u_grid {
            let tau_i = single.tau_for_ratio(u1, c_load);
            let d1 = single.delay(tau_i, c_load);
            let t1 = single.transition(tau_i, c_load);
            for _ in 0..v_grid.len() * w_grid.len() {
                let Some(outcome) = it.next() else {
                    return Err(ModelError::Table(
                        "dual-input outcome count mismatch".into(),
                    ));
                };
                let (d2, t2) = outcome.response()?;
                delay_vals.push(d2 / d1);
                trans_vals.push(t2 / t1);
            }
        }

        // The u and v axes are stored in the log domain: the grids are
        // log-spaced and the ratio surfaces curve strongly in both, so
        // trilinear interpolation in ln-space is markedly more accurate.
        let ln_u: Vec<f64> = u_grid.iter().map(|u| u.ln()).collect();
        let ln_v: Vec<f64> = v_grid.iter().map(|v| v.ln()).collect();
        Ok(Self {
            pin,
            partner,
            input_edge: edge,
            delay_ratio: Table3d::new(ln_u.clone(), ln_v.clone(), w_grid.to_vec(), delay_vals)?,
            trans_ratio: Table3d::new(ln_u, ln_v, w_grid.to_vec(), trans_vals)?,
        })
    }

    /// Evaluates `D⁽²⁾(u₁, v, w)`.
    ///
    /// Outside the proximity window (`w >= 1`, i.e. `s >= Δ⁽¹⁾`) the partner
    /// cannot affect the delay and the ratio is exactly 1 (§3). This rule
    /// applies to parallel (OR-like) conduction; series scenarios use
    /// [`DualInputModel::delay_ratio_raw`].
    pub fn delay_ratio(&self, u1: f64, v: f64, w: f64) -> f64 {
        if w >= 1.0 {
            1.0
        } else {
            self.delay_ratio.eval(u1.ln(), v.ln(), w)
        }
    }

    /// Evaluates `D⁽²⁾(u₁, v, w)` directly from the table (clamped), without
    /// the OR-like window shortcut — used for series (AND-like) conduction
    /// where a late partner gates the output instead of becoming irrelevant.
    pub fn delay_ratio_raw(&self, u1: f64, v: f64, w: f64) -> f64 {
        self.delay_ratio.eval(u1.ln(), v.ln(), w)
    }

    /// Evaluates `T⁽²⁾(u₁, v, w)` with table clamping; the caller applies
    /// the wider transition-time window `s < Δ⁽¹⁾ + τ⁽¹⁾` (§3).
    pub fn trans_ratio(&self, u1: f64, v: f64, w: f64) -> f64 {
        self.trans_ratio.eval(u1.ln(), v.ln(), w)
    }

    /// Storage cost in table entries (for the Fig. 4-2 accounting).
    pub fn table_len(&self) -> usize {
        self.delay_ratio.len() + self.trans_ratio.len()
    }

    /// The `w` (separation) axis of the tables.
    pub fn w_axis(&self) -> &[f64] {
        self.delay_ratio.az()
    }

    /// Audit access: the `(delay-ratio, trans-ratio)` tables.
    pub(crate) fn tables(&self) -> (&Table3d, &Table3d) {
        (&self.delay_ratio, &self.trans_ratio)
    }

    /// Audit repair access: the `(delay-ratio, trans-ratio)` tables,
    /// mutably — entries are patched through the tables' validated setters.
    pub(crate) fn tables_mut(&mut self) -> (&mut Table3d, &mut Table3d) {
        (&mut self.delay_ratio, &mut self.trans_ratio)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::characterize::Simulator;
    use crate::thresholds::Thresholds;
    use proxim_cells::{Cell, Technology};

    struct Env {
        cell: Cell,
        tech: Technology,
    }

    fn env() -> Env {
        Env {
            cell: Cell::nand(2),
            tech: Technology::demo_5v(),
        }
    }

    fn sim(e: &Env) -> Simulator<'_> {
        Simulator::new(
            &e.cell,
            &e.tech,
            Thresholds::new(1.2, 3.4, 5.0),
            100e-15,
            0.1,
        )
    }

    fn small_model(s: &Simulator<'_>, edge: Edge) -> DualInputModel {
        let single =
            SingleInputModel::characterize(s, 0, edge, &[150e-12, 600e-12, 1800e-12]).unwrap();
        DualInputModel::characterize(
            s,
            &single,
            1,
            &[0.5, 2.0, 6.0],
            &[0.5, 2.0, 6.0],
            &[-1.0, 0.0, 0.5, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn ratio_is_one_outside_window() {
        let e = env();
        let s = sim(&e);
        let m = small_model(&s, Edge::Rising);
        assert_eq!(m.delay_ratio(1.0, 1.0, 1.0), 1.0);
        assert_eq!(m.delay_ratio(3.0, 0.7, 5.0), 1.0);
    }

    #[test]
    fn rising_inputs_ratio_exceeds_one_at_zero_separation() {
        // Proximity of rising inputs slows a NAND's falling output
        // (Fig 1-2c): the ratio at w = 0 must exceed 1.
        let e = env();
        let s = sim(&e);
        let m = small_model(&s, Edge::Rising);
        let r = m.delay_ratio(2.0, 2.0, 0.0);
        assert!(r > 1.02, "expected slowdown, ratio = {r}");
    }

    #[test]
    fn falling_inputs_ratio_below_one_at_zero_separation() {
        // Proximity of falling inputs speeds the rising output (Fig 1-2a):
        // ratio below 1.
        let e = env();
        let s = sim(&e);
        let m = small_model(&s, Edge::Falling);
        let r = m.delay_ratio(2.0, 2.0, 0.0);
        assert!(r < 0.98, "expected speedup, ratio = {r}");
    }

    #[test]
    fn rising_slowdown_fades_as_partner_leads() {
        // AND-like conduction: the series stack is slowest when both inputs
        // ramp together (w = 0); a partner arriving well before the
        // reference (w = -1) is already conducting and the slowdown fades.
        let e = env();
        let s = sim(&e);
        let m = small_model(&s, Edge::Rising);
        let together = m.delay_ratio_raw(2.0, 2.0, 0.0);
        let leading = m.delay_ratio_raw(2.0, 2.0, -1.0);
        assert!(
            (leading - 1.0).abs() < (together - 1.0).abs(),
            "leading partner {leading} vs simultaneous {together}"
        );
    }

    #[test]
    fn falling_speedup_fades_at_window_edge() {
        // OR-like conduction: the parallel pull-up speedup vanishes once the
        // partner arrives after the single-input crossing (w >= 1).
        let e = env();
        let s = sim(&e);
        let m = small_model(&s, Edge::Falling);
        let r0 = m.delay_ratio(2.0, 2.0, 0.0);
        let r1 = m.delay_ratio(2.0, 2.0, 1.0);
        assert!(
            r0 < 1.0,
            "simultaneous falling inputs speed the output: {r0}"
        );
        assert_eq!(r1, 1.0);
    }

    #[test]
    fn model_reproduces_characterization_point() {
        let e = env();
        let s = sim(&e);
        let th = s.thresholds;
        let single =
            SingleInputModel::characterize(&s, 0, Edge::Rising, &[150e-12, 600e-12, 1800e-12])
                .unwrap();
        let m = DualInputModel::characterize(
            &s,
            &single,
            1,
            &[0.5, 2.0, 6.0],
            &[0.5, 2.0, 6.0],
            &[-1.0, 0.0, 0.5, 1.0],
        )
        .unwrap();

        // Re-simulate the exact (u1 = 2, v = 2, w = 0) grid point.
        let tau_i = single.tau_for_ratio(2.0, s.c_load);
        let d1 = single.delay(tau_i, s.c_load);
        let tau_j = 2.0 * d1;
        let e_i = InputEvent::new(0, Edge::Rising, 0.0, tau_i);
        let arrival_i = e_i.arrival(&th);
        let frac_j = InputEvent::new(1, Edge::Rising, 0.0, tau_j).arrival(&th);
        let e_j = InputEvent::new(1, Edge::Rising, arrival_i - frac_j, tau_j);
        let r = s.simulate(&[e_i, e_j]).unwrap();
        let d2_sim = r.delay_from(0, &th).unwrap();

        let d2_model = d1 * m.delay_ratio(2.0, 2.0, 0.0);
        assert!(
            (d2_model - d2_sim).abs() / d2_sim < 1e-6,
            "model {d2_model} vs sim {d2_sim}"
        );
    }

    #[test]
    #[should_panic(expected = "partner must differ")]
    fn partner_equal_to_pin_rejected() {
        let e = env();
        let s = sim(&e);
        let single =
            SingleInputModel::characterize(&s, 0, Edge::Rising, &[150e-12, 600e-12]).unwrap();
        let _ = DualInputModel::characterize(&s, &single, 0, &[1.0, 2.0], &[1.0, 2.0], &[0.0, 1.0]);
    }
}
