//! Single-input macromodels (§3, eqs. 3.7/3.8).
//!
//! With one switching input, dimensional analysis reduces delay and output
//! transition time to one-argument functions of the dimensionless load
//! `u = C_L / (K V_dd τ)`:
//!
//! ```text
//! Δ⁽¹⁾ / τ = D⁽¹⁾(u)        τ_out⁽¹⁾ / τ = T⁽¹⁾(u)
//! ```
//!
//! `K` is the strength of the network that drives the output transition:
//! the pull-down strength `K_n` for a falling output, the pull-up strength
//! `K_p` for a rising one. The tables are characterized at one load and, by
//! the dimensional argument, remain valid across loads and transition times
//! within the covered `u` range (clamped outside).

use crate::characterize::Simulator;
use crate::error::ModelError;
use crate::jobs::{execute_jobs, first_error, JobOutcome, SimJob};
use crate::measure::InputEvent;
use proxim_numeric::pwl::Edge;
use proxim_numeric::rootfind::brent;
use proxim_numeric::Table1d;
use serde::{Deserialize, Serialize};

/// A characterized single-input macromodel for one `(pin, input edge)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleInputModel {
    /// The input pin this model describes.
    pub pin: usize,
    /// The input transition direction.
    #[serde(with = "edge_serde")]
    pub input_edge: Edge,
    /// The output transition direction it produces.
    #[serde(with = "edge_serde")]
    pub output_edge: Edge,
    /// Driving-network strength `K`, in A/V².
    pub k: f64,
    /// Supply voltage, in volts.
    pub vdd: f64,
    /// `D⁽¹⁾`: normalized delay vs. `u`.
    delay_table: Table1d,
    /// `T⁽¹⁾`: normalized output transition time vs. `u`.
    trans_table: Table1d,
    /// The τ range covered during characterization at the reference load.
    tau_range: (f64, f64),
    /// The load the τ grid was characterized at (defines the u coverage).
    c_ref: f64,
    /// Ratio of the real 5–95 % edge time to the linear extrapolation of
    /// the `V_il`–`V_ih` time. Real gate edges have slow tails near the
    /// rails; a downstream stage sees that tail as extra fighting current,
    /// so full-swing ramp reconstruction (in netlist timing) must stretch
    /// by this factor.
    tail_factor: f64,
}

// `Edge` lives in proxim-numeric without serde support; serialize as bool.
pub(crate) mod edge_serde {
    use proxim_numeric::pwl::Edge;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(edge: &Edge, s: S) -> Result<S::Ok, S::Error> {
        matches!(edge, Edge::Rising).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Edge, D::Error> {
        Ok(if bool::deserialize(d)? {
            Edge::Rising
        } else {
            Edge::Falling
        })
    }
}
pub(crate) use edge_serde as edge_as_bool;

impl SingleInputModel {
    /// Characterizes the model for `pin`/`input_edge` by sweeping the τ grid
    /// on the simulator's reference load.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on simulation failure or a degenerate grid.
    pub fn characterize(
        sim: &Simulator<'_>,
        pin: usize,
        input_edge: Edge,
        tau_grid: &[f64],
    ) -> Result<Self, ModelError> {
        let jobs = Self::enumerate(pin, input_edge, tau_grid)?;
        let batch = execute_jobs(sim, &jobs, 1);
        Self::assemble(
            sim,
            pin,
            input_edge,
            tau_grid,
            &first_error(&batch.outcomes)?,
        )
    }

    /// Enumerates the characterization grid as independent simulation jobs,
    /// one per τ point (see [`crate::jobs`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Table`] on a degenerate grid.
    pub fn enumerate(
        pin: usize,
        input_edge: Edge,
        tau_grid: &[f64],
    ) -> Result<Vec<SimJob>, ModelError> {
        if tau_grid.len() < 2 {
            return Err(ModelError::Table(
                "tau grid needs at least two points".into(),
            ));
        }
        Ok(tau_grid
            .iter()
            .map(|&tau| SimJob::events_wide(vec![InputEvent::new(pin, input_edge, 0.0, tau)]))
            .collect())
    }

    /// Builds the model from executed job outcomes, in the exact order
    /// [`SingleInputModel::enumerate`] produced them.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if a table cannot be built or an outcome is
    /// not the events response the enumeration produced.
    ///
    /// # Panics
    ///
    /// Panics if the outcome count does not match the enumeration.
    pub fn assemble(
        sim: &Simulator<'_>,
        pin: usize,
        input_edge: Edge,
        tau_grid: &[f64],
        outcomes: &[&JobOutcome],
    ) -> Result<Self, ModelError> {
        assert_eq!(outcomes.len(), tau_grid.len(), "one outcome per tau point");
        let th = sim.thresholds;
        let vdd = sim.tech.vdd;
        let frac_span = (th.v_ih - th.v_il) / vdd;
        // Note the paper's dimensionless form (3.7) holds at a fixed load:
        // the internal junction-to-load capacitance ratio is a further
        // dimensionless group the form neglects, so points from different
        // loads do NOT merge onto one curve once C_L approaches the
        // parasitics. Characterize at (and query near) a representative
        // load; netlist flows should pick `c_load` close to their actual
        // fanout loading.
        let mut rows: Vec<(f64, f64, f64, f64)> = Vec::with_capacity(tau_grid.len());
        let mut output_edge = None;
        let mut tail_factors = Vec::with_capacity(tau_grid.len());

        for (&tau, outcome) in tau_grid.iter().zip(outcomes) {
            let JobOutcome::Response {
                output_edge: oe,
                delay,
                trans,
                wide,
            } = outcome
            else {
                return Err(match outcome.failure() {
                    Some(e) => e.clone(),
                    None => {
                        ModelError::Table("single-input assembly expects events responses".into())
                    }
                });
            };
            output_edge = Some(*oe);
            rows.push((sim.c_load, tau, *delay, *trans));
            // The wide (5-95 % of swing) edge time vs. the linear
            // extrapolation of the threshold-to-threshold time.
            if let Some(t_wide) = wide {
                let t_lin = 0.9 * trans / frac_span;
                if t_lin > 0.0 {
                    tail_factors.push(t_wide / t_lin);
                }
            }
        }
        let Some(output_edge) = output_edge else {
            return Err(ModelError::Table("tau grid produced no rows".into()));
        };
        let tail_factor = if tail_factors.is_empty() {
            1.0
        } else {
            tail_factors.iter().sum::<f64>() / tail_factors.len() as f64
        };
        let k = match output_edge {
            Edge::Falling => sim.tech.k_n(sim.cell.wn()),
            Edge::Rising => sim.tech.k_p(sim.cell.wp()),
        };

        // u decreases with tau; sort ascending in u for the table. The
        // abscissa stays linear in u deliberately: u is proportional to
        // C/τ, so linear interpolation of Δ/τ against u makes Δ(τ)
        // piecewise-linear in τ — the intrinsic-plus-slope shape a gate
        // delay actually has.
        let mut pts: Vec<(f64, f64, f64)> = rows
            .iter()
            .map(|&(c, tau, d, t)| (c / (k * vdd * tau), d / tau, t / tau))
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        // The two passes can produce near-identical u values; keep the axis
        // strictly increasing for the table.
        pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-12 * b.0.abs().max(1e-300));
        let us: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ds: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let ts: Vec<f64> = pts.iter().map(|p| p.2).collect();

        Ok(Self {
            pin,
            input_edge,
            output_edge,
            k,
            vdd,
            delay_table: Table1d::new(us.clone(), ds)?,
            trans_table: Table1d::new(us, ts)?,
            tau_range: (
                tau_grid.iter().copied().fold(f64::INFINITY, f64::min),
                tau_grid.iter().copied().fold(0.0, f64::max),
            ),
            c_ref: sim.c_load,
            tail_factor,
        })
    }

    /// The characterized edge tail factor: how much longer the real 5-95 %
    /// output edge is than the linear extrapolation of the threshold span
    /// (≥ 1 for realistic edges).
    pub fn tail_factor(&self) -> f64 {
        self.tail_factor
    }

    /// The dimensionless load `u = C_L / (K V_dd τ)`.
    pub fn u(&self, tau: f64, c_load: f64) -> f64 {
        c_load / (self.k * self.vdd * tau)
    }

    /// The single-input delay `Δ⁽¹⁾` for transition time `tau` and load
    /// `c_load` (eq. 3.7).
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not strictly positive.
    pub fn delay(&self, tau: f64, c_load: f64) -> f64 {
        assert!(tau > 0.0, "transition time must be positive");
        tau * self.delay_table.eval(self.u(tau, c_load))
    }

    /// The single-input output transition time `τ_out⁽¹⁾` (eq. 3.8).
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not strictly positive.
    pub fn transition(&self, tau: f64, c_load: f64) -> f64 {
        assert!(tau > 0.0, "transition time must be positive");
        tau * self.trans_table.eval(self.u(tau, c_load))
    }

    /// Inverts `τ / Δ⁽¹⁾(τ) = ratio` for `τ` at the given load — used to
    /// place dual-input characterization points on an exact normalized grid.
    ///
    /// The ratio is monotone increasing in τ; out-of-range ratios clamp to
    /// the characterized τ bounds.
    pub fn tau_for_ratio(&self, ratio: f64, c_load: f64) -> f64 {
        let (lo, hi) = self.tau_range;
        let g = |tau: f64| tau / self.delay(tau, c_load) - ratio;
        if g(lo) >= 0.0 {
            return lo;
        }
        if g(hi) <= 0.0 {
            return hi;
        }
        brent(g, lo, hi, 1e-18).unwrap_or(0.5 * (lo + hi))
    }

    /// The characterized τ range.
    pub fn tau_range(&self) -> (f64, f64) {
        self.tau_range
    }

    /// The load the model was characterized at.
    pub fn reference_load(&self) -> f64 {
        self.c_ref
    }

    /// Storage cost of this model in table entries.
    pub fn table_len(&self) -> usize {
        self.delay_table.xs().len() + self.trans_table.xs().len()
    }

    /// The raw characterization samples: `(u values, Δ⁽¹⁾/τ, τ_out⁽¹⁾/τ)` —
    /// the data closed-form fits are built from.
    pub fn samples(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        (
            self.delay_table.xs().to_vec(),
            self.delay_table.ys().to_vec(),
            self.trans_table.ys().to_vec(),
        )
    }

    /// Audit access: the `(delay, transition)` sample tables.
    pub(crate) fn tables(&self) -> (&Table1d, &Table1d) {
        (&self.delay_table, &self.trans_table)
    }

    /// Audit repair access: the `(delay, transition)` sample tables,
    /// mutably — entries are patched through the tables' validated setters.
    pub(crate) fn tables_mut(&mut self) -> (&mut Table1d, &mut Table1d) {
        (&mut self.delay_table, &mut self.trans_table)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::characterize::Simulator;
    use crate::thresholds::Thresholds;
    use proxim_cells::{Cell, Technology};

    fn sim_env() -> (Cell, Technology) {
        (Cell::nand(2), Technology::demo_5v())
    }

    fn make_sim<'a>(cell: &'a Cell, tech: &'a Technology) -> Simulator<'a> {
        Simulator::new(cell, tech, Thresholds::new(1.2, 3.4, 5.0), 100e-15, 0.1)
    }

    #[test]
    fn characterize_and_query_rising_input() {
        let (cell, tech) = sim_env();
        let sim = make_sim(&cell, &tech);
        let grid = [100e-12, 400e-12, 1600e-12];
        let m = SingleInputModel::characterize(&sim, 0, Edge::Rising, &grid).unwrap();
        assert_eq!(m.output_edge, Edge::Falling);
        // The model reproduces its own characterization points.
        for &tau in &grid {
            let r = sim
                .simulate(&[InputEvent::new(0, Edge::Rising, 0.0, tau)])
                .unwrap();
            let d_sim = r.delay_from(0, &sim.thresholds).unwrap();
            let d_model = m.delay(tau, 100e-15);
            assert!(
                (d_model - d_sim).abs() / d_sim < 1e-6,
                "tau {tau}: model {d_model} vs sim {d_sim}"
            );
        }
    }

    #[test]
    fn delay_increases_with_slower_input() {
        let (cell, tech) = sim_env();
        let sim = make_sim(&cell, &tech);
        let grid = [100e-12, 400e-12, 1600e-12];
        let m = SingleInputModel::characterize(&sim, 0, Edge::Rising, &grid).unwrap();
        // The chosen thresholds guarantee monotone-increasing delay with
        // input transition time (the paper's §2 argument).
        let d_fast = m.delay(100e-12, 100e-15);
        let d_slow = m.delay(1600e-12, 100e-15);
        assert!(d_slow > d_fast, "slow {d_slow} <= fast {d_fast}");
        assert!(d_fast > 0.0);
    }

    #[test]
    fn tau_for_ratio_inverts_delay_ratio() {
        let (cell, tech) = sim_env();
        let sim = make_sim(&cell, &tech);
        let grid = [100e-12, 400e-12, 1600e-12];
        let m = SingleInputModel::characterize(&sim, 0, Edge::Rising, &grid).unwrap();
        let target = 1.5;
        let tau = m.tau_for_ratio(target, 100e-15);
        let achieved = tau / m.delay(tau, 100e-15);
        assert!((achieved - target).abs() < 1e-6, "achieved {achieved}");
    }

    #[test]
    fn tau_for_ratio_clamps_out_of_range() {
        let (cell, tech) = sim_env();
        let sim = make_sim(&cell, &tech);
        let grid = [100e-12, 400e-12, 1600e-12];
        let m = SingleInputModel::characterize(&sim, 0, Edge::Rising, &grid).unwrap();
        assert_eq!(m.tau_for_ratio(1e9, 100e-15), m.tau_range().1);
        assert_eq!(m.tau_for_ratio(1e-9, 100e-15), m.tau_range().0);
    }

    #[test]
    fn falling_input_uses_pullup_strength() {
        let (cell, tech) = sim_env();
        let sim = make_sim(&cell, &tech);
        let grid = [100e-12, 400e-12, 1600e-12];
        let m = SingleInputModel::characterize(&sim, 0, Edge::Falling, &grid).unwrap();
        assert_eq!(m.output_edge, Edge::Rising);
        assert!((m.k - tech.k_p(cell.wp())).abs() < 1e-15);
    }

    #[test]
    fn rejects_degenerate_grid() {
        let (cell, tech) = sim_env();
        let sim = make_sim(&cell, &tech);
        assert!(matches!(
            SingleInputModel::characterize(&sim, 0, Edge::Rising, &[1e-10]),
            Err(ModelError::Table(_))
        ));
    }
}
