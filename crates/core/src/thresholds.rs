//! Delay-measurement thresholds for multi-input gates (§2 of the paper).
//!
//! An n-input gate has `2^n - 1` voltage-transfer curves (VTCs), one per
//! combination of switching inputs. Measuring delay with thresholds taken
//! from the "wrong" curve can produce negative delays for slow inputs. The
//! paper's policy: take the **minimum `V_il`** and the **maximum `V_ih`**
//! over the whole family, which guarantees `V_il < V_m < V_ih` for the `V_m`
//! of *any* curve and therefore positive delay for every combination of
//! transition times and separations.

use crate::error::ModelError;
use proxim_cells::{Cell, Technology};
use proxim_numeric::pwl::{Edge, Pwl};
use proxim_spice::circuit::Waveform;

/// The measurement thresholds selected for a gate.
///
/// Signal arrival (and input/output measurement points) use `V_il` for
/// rising signals and `V_ih` for falling signals — the first threshold the
/// signal crosses, which is also how the paper measures separation between
/// inputs (§3).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Thresholds {
    /// The low unity-gain threshold (minimum over the VTC family).
    pub v_il: f64,
    /// The high unity-gain threshold (maximum over the VTC family).
    pub v_ih: f64,
    /// The supply voltage the thresholds were extracted at.
    pub vdd: f64,
}

impl Thresholds {
    /// Creates a threshold set directly.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < v_il < v_ih < vdd`.
    pub fn new(v_il: f64, v_ih: f64, vdd: f64) -> Self {
        assert!(
            0.0 < v_il && v_il < v_ih && v_ih < vdd,
            "thresholds must satisfy 0 < v_il < v_ih < vdd (got {v_il}, {v_ih}, {vdd})"
        );
        Self { v_il, v_ih, vdd }
    }

    /// The measurement threshold for a signal transitioning with `edge`:
    /// `V_il` for rising, `V_ih` for falling (the first one crossed).
    pub fn threshold_for(&self, edge: Edge) -> f64 {
        match edge {
            Edge::Rising => self.v_il,
            Edge::Falling => self.v_ih,
        }
    }

    /// The pair `(first, second)` of thresholds crossed by a transition with
    /// `edge`, used for transition-time measurement.
    pub fn span_for(&self, edge: Edge) -> (f64, f64) {
        match edge {
            Edge::Rising => (self.v_il, self.v_ih),
            Edge::Falling => (self.v_ih, self.v_il),
        }
    }
}

/// One voltage-transfer curve of the family: the subset of inputs switched
/// together, the curve itself, and its characteristic voltages.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct VtcCurve {
    /// Bitmask over input pins: bit `i` set means pin `i` switches.
    pub switching_mask: u32,
    /// The stable levels driven on the non-switching pins.
    pub stable_levels: Vec<Option<bool>>,
    /// `V_out` as a function of `V_in`.
    pub curve: Pwl,
    /// Input voltage of the lower unity-gain (`dVout/dVin = -1`) point.
    pub v_il: f64,
    /// Input voltage of the upper unity-gain point.
    pub v_ih: f64,
    /// The switching threshold: where `V_out = V_in`.
    pub v_m: f64,
}

impl VtcCurve {
    /// The switching pins as indices.
    pub fn switching_pins(&self) -> Vec<usize> {
        (0..32)
            .filter(|i| self.switching_mask & (1 << i) != 0)
            .collect()
    }
}

/// The full VTC family of a gate and the paper's threshold selection.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct VtcFamily {
    curves: Vec<VtcCurve>,
    vdd: f64,
}

impl VtcFamily {
    /// All extracted curves (one per sensitizable switching combination).
    pub fn curves(&self) -> &[VtcCurve] {
        &self.curves
    }

    /// The minimum `V_il` over the family.
    pub fn v_il_min(&self) -> f64 {
        self.curves
            .iter()
            .map(|c| c.v_il)
            .fold(f64::INFINITY, f64::min)
    }

    /// The maximum `V_ih` over the family.
    pub fn v_ih_max(&self) -> f64 {
        self.curves
            .iter()
            .map(|c| c.v_ih)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The paper's threshold policy: `(min V_il, max V_ih)`.
    pub fn thresholds(&self) -> Thresholds {
        Thresholds::new(self.v_il_min(), self.v_ih_max(), self.vdd)
    }

    /// The curve for an exact switching mask, if extracted.
    pub fn curve_for_mask(&self, mask: u32) -> Option<&VtcCurve> {
        self.curves.iter().find(|c| c.switching_mask == mask)
    }
}

/// Finds stable-pin levels that sensitize the output to the switching set:
/// with the switching pins all low the output must differ from when they are
/// all high. Returns per-pin levels (`None` for switching pins).
fn sensitize_subset(cell: &Cell, mask: u32) -> Option<Vec<Option<bool>>> {
    let n = cell.input_count();
    let stable: Vec<usize> = (0..n).filter(|i| mask & (1 << i) == 0).collect();
    for assign in 0..(1u32 << stable.len()) {
        let mut levels = vec![false; n];
        for (k, &pin) in stable.iter().enumerate() {
            levels[pin] = assign & (1 << k) != 0;
        }
        let lo = cell.output_for(&levels);
        for (i, level) in levels.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                *level = true;
            }
        }
        let hi = cell.output_for(&levels);
        if lo != hi {
            return Some(
                (0..n)
                    .map(|i| {
                        if mask & (1 << i) != 0 {
                            None
                        } else {
                            Some(levels[i])
                        }
                    })
                    .collect(),
            );
        }
    }
    None
}

/// Locates the unity-gain points (`dVout/dVin = -1`) and the switching
/// threshold (`Vout = Vin`) on a sampled VTC.
fn analyze_curve(curve: &Pwl, vdd: f64) -> Result<(f64, f64, f64), ModelError> {
    let pts = curve.points();
    if pts.len() < 8 {
        return Err(ModelError::MalformedVtc {
            detail: "too few sweep points".into(),
        });
    }
    // Segment slopes at segment midpoints.
    let mut mids = Vec::with_capacity(pts.len() - 1);
    let mut slopes = Vec::with_capacity(pts.len() - 1);
    for w in pts.windows(2) {
        let dx = w[1].0 - w[0].0;
        if dx <= 0.0 {
            continue;
        }
        mids.push(0.5 * (w[0].0 + w[1].0));
        slopes.push((w[1].1 - w[0].1) / dx);
    }
    // Crossings of slope = -1, linearly interpolated between midpoints.
    let mut crossings = Vec::new();
    for k in 0..slopes.len() - 1 {
        let (s0, s1) = (slopes[k] + 1.0, slopes[k + 1] + 1.0);
        if s0 == 0.0 {
            crossings.push(mids[k]);
        } else if s0 * s1 < 0.0 {
            let f = s0 / (s0 - s1);
            crossings.push(mids[k] + f * (mids[k + 1] - mids[k]));
        }
    }
    if crossings.len() < 2 {
        return Err(ModelError::MalformedVtc {
            detail: format!("expected two unity-gain points, found {}", crossings.len()),
        });
    }
    let v_il = crossings[0];
    // Nonempty by the length check above.
    let v_ih = crossings[crossings.len() - 1];

    // V_m: Vout = Vin, bracketed over the full sweep.
    let g = |v: f64| curve.eval(v) - v;
    let v_m = proxim_numeric::rootfind::brent(g, 0.0, vdd, 1e-9).map_err(|e| {
        ModelError::MalformedVtc {
            detail: format!("V_m not bracketed: {e}"),
        }
    })?;
    Ok((v_il, v_ih, v_m))
}

/// Extracts the full VTC family of a cell by DC-sweeping every sensitizable
/// switching combination (tying the switching inputs together), as in
/// Figure 2-1(b) of the paper.
///
/// `points` is the number of sweep samples per curve (use 201 or more).
///
/// # Errors
///
/// Returns [`ModelError`] if a DC solution fails or a curve lacks its
/// unity-gain points.
pub fn extract_vtc_family(
    cell: &Cell,
    tech: &Technology,
    c_load: f64,
    points: usize,
) -> Result<VtcFamily, ModelError> {
    extract_vtc_family_cancellable(
        cell,
        tech,
        c_load,
        points,
        &proxim_spice::CancelToken::new(),
    )
}

/// [`extract_vtc_family`] honoring a cancellation token: the token is polled
/// before every grid point and inside every warm-started DC solve, so even
/// the sequential VTC phase of a characterization run stops promptly.
///
/// # Errors
///
/// Same as [`extract_vtc_family`], plus the token's typed
/// `Cancelled`/`DeadlineExceeded` errors (as [`ModelError::Simulation`]).
pub fn extract_vtc_family_cancellable(
    cell: &Cell,
    tech: &Technology,
    c_load: f64,
    points: usize,
    cancel: &proxim_spice::CancelToken,
) -> Result<VtcFamily, ModelError> {
    assert!(points >= 16, "VTC extraction needs a reasonably fine sweep");
    let n = cell.input_count();
    let mut curves = Vec::new();

    for mask in 1u32..(1 << n) {
        let Some(stable_levels) = sensitize_subset(cell, mask) else {
            continue; // this combination cannot drive the output
        };
        let mut net = cell.netlist(tech, c_load);
        for (pin, lv) in stable_levels.iter().enumerate() {
            if let Some(high) = lv {
                net.set_level(pin, *high);
            }
        }
        // Sweep all switching pins together with warm-started DC solves.
        let grid = proxim_numeric::grid::linspace(0.0, tech.vdd, points);
        let mut samples = Vec::with_capacity(points);
        let mut prev: Option<Vec<f64>> = None;
        for &v in &grid {
            cancel.check("vtc extraction")?;
            for pin in 0..n {
                if mask & (1 << pin) != 0 {
                    net.set_waveform(pin, Waveform::Dc(v));
                }
            }
            let op =
                proxim_spice::op::dc_solve_warm_cancellable(&net.circuit, prev.as_deref(), cancel)?;
            samples.push((v, op.voltage(net.out)));
            prev = Some(op.raw().to_vec());
        }
        let curve = Pwl::new(samples).map_err(|e| ModelError::MalformedVtc {
            detail: format!("VTC sweep did not form a curve: {e}"),
        })?;
        let (v_il, v_ih, v_m) = analyze_curve(&curve, tech.vdd).map_err(|e| match e {
            ModelError::MalformedVtc { detail } => ModelError::MalformedVtc {
                detail: format!("mask {mask:#b}: {detail}"),
            },
            other => other,
        })?;
        curves.push(VtcCurve {
            switching_mask: mask,
            stable_levels,
            curve,
            v_il,
            v_ih,
            v_m,
        });
    }

    if curves.is_empty() {
        return Err(ModelError::MalformedVtc {
            detail: "no sensitizable combination".into(),
        });
    }
    Ok(VtcFamily {
        curves,
        vdd: tech.vdd,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_validate_ordering() {
        let t = Thresholds::new(1.0, 3.5, 5.0);
        assert_eq!(t.threshold_for(Edge::Rising), 1.0);
        assert_eq!(t.threshold_for(Edge::Falling), 3.5);
        assert_eq!(t.span_for(Edge::Rising), (1.0, 3.5));
        assert_eq!(t.span_for(Edge::Falling), (3.5, 1.0));
    }

    #[test]
    #[should_panic(expected = "must satisfy")]
    fn thresholds_reject_inverted() {
        Thresholds::new(3.5, 1.0, 5.0);
    }

    #[test]
    fn sensitize_nand_subset_needs_other_pins_high() {
        let cell = Cell::nand(3);
        let s = sensitize_subset(&cell, 0b001).unwrap();
        assert_eq!(s[0], None);
        assert_eq!(s[1], Some(true));
        assert_eq!(s[2], Some(true));
        let all = sensitize_subset(&cell, 0b111).unwrap();
        assert!(all.iter().all(|l| l.is_none()));
    }

    #[test]
    fn sensitize_aoi21_single_a() {
        // For AOI21 (out = !(ab + c)): pin a is sensitized with b = 1, c = 0.
        let cell = Cell::aoi21();
        let s = sensitize_subset(&cell, 0b001).unwrap();
        assert_eq!(s[1], Some(true));
        assert_eq!(s[2], Some(false));
    }

    #[test]
    fn analyze_synthetic_vtc() {
        // A piecewise-linear "inverter": flat, steep fall, flat — with
        // shoulder slopes straddling -1 so the unity-gain points are
        // well-defined.
        let mut pts = Vec::new();
        let vdd = 5.0;
        for k in 0..=500 {
            let v = vdd * k as f64 / 500.0;
            // Smooth logistic-like curve centered at 2.5 V.
            let vout = vdd / (1.0 + ((v - 2.5) * 3.0).exp());
            pts.push((v, vout));
        }
        let curve = Pwl::new(pts).unwrap();
        let (v_il, v_ih, v_m) = analyze_curve(&curve, vdd).unwrap();
        assert!(v_il < v_m && v_m < v_ih, "{v_il} {v_m} {v_ih}");
        assert!((v_m - 2.5).abs() < 0.05, "v_m = {v_m}");
        // Logistic gain -1 points: solve analytically ~ 2.5 -/+ ln(...)/3.
        assert!(v_il > 1.5 && v_il < 2.5);
        assert!(v_ih > 2.5 && v_ih < 3.5);
    }

    #[test]
    fn analyze_rejects_gainless_curve() {
        let pts: Vec<(f64, f64)> = (0..=100).map(|k| (k as f64 / 20.0, 2.0)).collect();
        let curve = Pwl::new(pts).unwrap();
        assert!(matches!(
            analyze_curve(&curve, 5.0),
            Err(ModelError::MalformedVtc { .. })
        ));
    }
}
