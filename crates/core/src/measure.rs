//! Input events, switching scenarios, and threshold-based measurement.
//!
//! Delay is measured from the time the reference *input* crosses its
//! measurement threshold (`V_il` rising / `V_ih` falling) to the time the
//! *output* crosses its own first threshold; output transition time is
//! measured between `V_il` and `V_ih`. Separation between two inputs is the
//! difference of their input-threshold crossing times (§3).

use crate::error::ModelError;
use crate::thresholds::Thresholds;
use proxim_cells::{Cell, InputRamp};
use proxim_numeric::pwl::{Edge, Pwl};

/// One switching input: a pin index plus its controlled ramp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputEvent {
    /// The gate input pin.
    pub pin: usize,
    /// The ramp applied to that pin.
    pub ramp: InputRamp,
}

impl InputEvent {
    /// Creates an event from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `transition_time` is not strictly positive.
    pub fn new(pin: usize, edge: Edge, t_start: f64, transition_time: f64) -> Self {
        let ramp = match edge {
            Edge::Rising => InputRamp::rising(t_start, transition_time),
            Edge::Falling => InputRamp::falling(t_start, transition_time),
        };
        Self { pin, ramp }
    }

    /// The event's transition direction.
    pub fn edge(&self) -> Edge {
        self.ramp.edge
    }

    /// The event's transition time.
    pub fn transition_time(&self) -> f64 {
        self.ramp.transition_time
    }

    /// The arrival time: when the ramp crosses its measurement threshold
    /// (`V_il` rising, `V_ih` falling).
    pub fn arrival(&self, th: &Thresholds) -> f64 {
        self.ramp
            .crossing_time(th.threshold_for(self.edge()), th.vdd)
    }

    /// Returns the event shifted later by `dt`.
    pub fn delayed(mut self, dt: f64) -> Self {
        self.ramp = self.ramp.delayed(dt);
        self
    }
}

/// The separation `s_ab = arrival(b) - arrival(a)` between two events,
/// measured from `a` (§3: positive when `b` arrives after `a`).
pub fn separation(a: &InputEvent, b: &InputEvent, th: &Thresholds) -> f64 {
    b.arrival(th) - a.arrival(th)
}

/// A resolved switching scenario: stable-pin levels that sensitize the
/// output to the switching set, and the resulting output edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Per-pin stable levels; `None` for switching pins.
    pub stable_levels: Vec<Option<bool>>,
    /// The output transition direction the events produce.
    pub output_edge: Edge,
}

impl Scenario {
    /// Resolves the scenario for `events` on `cell`.
    ///
    /// Searches for stable-pin levels under which the output differs between
    /// the initial input state (each event at its starting rail) and the
    /// final state.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuery`] if there are no events, an event
    /// pin repeats or is out of range, or no stable assignment sensitizes
    /// the output.
    pub fn resolve(cell: &Cell, events: &[InputEvent]) -> Result<Self, ModelError> {
        let n = cell.input_count();
        if events.is_empty() {
            return Err(ModelError::InvalidQuery {
                detail: "no switching inputs".into(),
            });
        }
        let mut seen = vec![false; n];
        for e in events {
            if e.pin >= n {
                return Err(ModelError::InvalidQuery {
                    detail: format!("pin {} out of range for {}-input cell", e.pin, n),
                });
            }
            if seen[e.pin] {
                return Err(ModelError::InvalidQuery {
                    detail: format!("pin {} switches twice", e.pin),
                });
            }
            seen[e.pin] = true;
        }

        let stable: Vec<usize> = (0..n).filter(|&i| !seen[i]).collect();
        for assign in 0..(1u32 << stable.len()) {
            let mut initial = vec![false; n];
            let mut fin = vec![false; n];
            for (k, &pin) in stable.iter().enumerate() {
                let level = assign & (1 << k) != 0;
                initial[pin] = level;
                fin[pin] = level;
            }
            for e in events {
                let rising = e.edge() == Edge::Rising;
                initial[e.pin] = !rising;
                fin[e.pin] = rising;
            }
            let out0 = cell.output_for(&initial);
            let out1 = cell.output_for(&fin);
            if out0 != out1 {
                let stable_levels = (0..n)
                    .map(|i| if seen[i] { None } else { Some(initial[i]) })
                    .collect();
                let output_edge = if out0 { Edge::Falling } else { Edge::Rising };
                return Ok(Self {
                    stable_levels,
                    output_edge,
                });
            }
        }
        Err(ModelError::InvalidQuery {
            detail: "no stable-pin assignment sensitizes the output".into(),
        })
    }

    /// Builds the scenario from *known* stable-pin levels (as in a netlist,
    /// where non-switching pins carry actual values) instead of searching
    /// for a sensitizing assignment.
    ///
    /// `stable_levels[pin]` must be `Some(level)` for every non-switching
    /// pin; entries for switching pins are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuery`] if events are invalid, a stable
    /// level is missing, or the output does not flip under these levels.
    pub fn from_levels(
        cell: &Cell,
        events: &[InputEvent],
        stable_levels: &[Option<bool>],
    ) -> Result<Self, ModelError> {
        let n = cell.input_count();
        if stable_levels.len() != n {
            return Err(ModelError::InvalidQuery {
                detail: format!(
                    "stable_levels has {} entries for {n} pins",
                    stable_levels.len()
                ),
            });
        }
        if events.is_empty() {
            return Err(ModelError::InvalidQuery {
                detail: "no switching inputs".into(),
            });
        }
        let mut switching = vec![false; n];
        for e in events {
            if e.pin >= n || switching[e.pin] {
                return Err(ModelError::InvalidQuery {
                    detail: format!("invalid or repeated pin {}", e.pin),
                });
            }
            switching[e.pin] = true;
        }
        let mut initial = vec![false; n];
        let mut fin = vec![false; n];
        for pin in 0..n {
            if switching[pin] {
                continue;
            }
            let Some(level) = stable_levels[pin] else {
                return Err(ModelError::InvalidQuery {
                    detail: format!("missing stable level for pin {pin}"),
                });
            };
            initial[pin] = level;
            fin[pin] = level;
        }
        for e in events {
            let rising = e.edge() == Edge::Rising;
            initial[e.pin] = !rising;
            fin[e.pin] = rising;
        }
        let out0 = cell.output_for(&initial);
        let out1 = cell.output_for(&fin);
        if out0 == out1 {
            return Err(ModelError::InvalidQuery {
                detail: "output does not flip under the given stable levels".into(),
            });
        }
        Ok(Self {
            stable_levels: (0..n)
                .map(|p| if switching[p] { None } else { stable_levels[p] })
                .collect(),
            output_edge: if out0 { Edge::Falling } else { Edge::Rising },
        })
    }
}

/// The *causing rank* of a scenario: walking the events in arrival order,
/// the 1-based position of the event whose transition logically flips the
/// output.
///
/// Rank 1 means the first arrival suffices (OR-like conduction, e.g. falling
/// NAND inputs opening parallel pull-ups); rank `events.len()` means every
/// input is needed (AND-like conduction, e.g. rising NAND inputs completing
/// a series stack). Mixed networks can yield intermediate ranks.
///
/// # Errors
///
/// Returns [`ModelError::InvalidQuery`] if the events never flip the output
/// (which [`Scenario::resolve`] normally rules out).
pub fn causing_rank(
    cell: &Cell,
    events: &[InputEvent],
    scenario: &Scenario,
    th: &Thresholds,
) -> Result<CausingEvent, ModelError> {
    let n = cell.input_count();
    let mut levels = vec![false; n];
    for (pin, lv) in scenario.stable_levels.iter().enumerate() {
        if let Some(h) = lv {
            levels[pin] = *h;
        }
    }
    for e in events {
        levels[e.pin] = e.edge() == Edge::Falling; // starting rail
    }
    let out0 = cell.output_for(&levels);

    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by(|&a, &b| events[a].arrival(th).total_cmp(&events[b].arrival(th)));
    for (rank, &k) in order.iter().enumerate() {
        let e = &events[k];
        levels[e.pin] = e.edge() == Edge::Rising; // final rail
        if cell.output_for(&levels) != out0 {
            return Ok(CausingEvent {
                rank: rank + 1,
                event_index: k,
            });
        }
    }
    Err(ModelError::InvalidQuery {
        detail: "events never flip the output".into(),
    })
}

/// The result of [`causing_rank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausingEvent {
    /// 1-based position in arrival order at which the output flips.
    pub rank: usize,
    /// Index into the original `events` slice of the causing event.
    pub event_index: usize,
}

/// Measures the propagation delay from `reference` to the output waveform.
///
/// # Errors
///
/// Returns [`ModelError::MissingCrossing`] if the output never crosses its
/// measurement threshold with `output_edge`.
pub fn measure_delay(
    reference: &InputEvent,
    output: &Pwl,
    th: &Thresholds,
    output_edge: Edge,
) -> Result<f64, ModelError> {
    let t_in = reference.arrival(th);
    let t_out = output
        .first_crossing(th.threshold_for(output_edge), output_edge)
        .ok_or_else(|| ModelError::MissingCrossing {
            what: format!("measuring {output_edge} output delay"),
        })?;
    Ok(t_out - t_in)
}

/// Measures the output transition time between `V_il` and `V_ih`.
///
/// # Errors
///
/// Returns [`ModelError::MissingCrossing`] if the output does not complete
/// the transition.
pub fn measure_transition(
    output: &Pwl,
    th: &Thresholds,
    output_edge: Edge,
) -> Result<f64, ModelError> {
    output
        .transition_time(th.v_il, th.v_ih, output_edge)
        .ok_or_else(|| ModelError::MissingCrossing {
            what: format!("measuring {output_edge} output transition time"),
        })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn th() -> Thresholds {
        Thresholds::new(1.25, 3.37, 5.0)
    }

    #[test]
    fn arrival_uses_edge_specific_threshold() {
        let th = th();
        let r = InputEvent::new(0, Edge::Rising, 0.0, 1e-9);
        // Rising: crosses V_il = 1.25 at 1.25/5 of the ramp.
        assert!((r.arrival(&th) - 0.25e-9).abs() < 1e-15);
        let f = InputEvent::new(0, Edge::Falling, 0.0, 1e-9);
        // Falling: crosses V_ih = 3.37 at (5-3.37)/5 of the ramp.
        assert!((f.arrival(&th) - (5.0 - 3.37) / 5.0 * 1e-9).abs() < 1e-15);
    }

    #[test]
    fn separation_sign_convention() {
        let th = th();
        let a = InputEvent::new(0, Edge::Rising, 0.0, 1e-9);
        let b = InputEvent::new(1, Edge::Rising, 0.3e-9, 1e-9);
        assert!(separation(&a, &b, &th) > 0.0, "b arrives after a");
        assert!((separation(&a, &b, &th) + separation(&b, &a, &th)).abs() < 1e-18);
    }

    #[test]
    fn scenario_nand_rising_inputs_output_falls() {
        let cell = Cell::nand(3);
        let events = vec![
            InputEvent::new(0, Edge::Rising, 0.0, 1e-9),
            InputEvent::new(1, Edge::Rising, 0.0, 1e-9),
            InputEvent::new(2, Edge::Rising, 0.0, 1e-9),
        ];
        let s = Scenario::resolve(&cell, &events).unwrap();
        assert_eq!(s.output_edge, Edge::Falling);
        assert!(s.stable_levels.iter().all(|l| l.is_none()));
    }

    #[test]
    fn scenario_nand_two_falling_inputs_output_rises() {
        let cell = Cell::nand(3);
        let events = vec![
            InputEvent::new(0, Edge::Falling, 0.0, 1e-9),
            InputEvent::new(1, Edge::Falling, 0.2e-9, 1e-9),
        ];
        let s = Scenario::resolve(&cell, &events).unwrap();
        assert_eq!(s.output_edge, Edge::Rising);
        // Pin c must be held high for the output to respond.
        assert_eq!(s.stable_levels[2], Some(true));
    }

    #[test]
    fn scenario_rejects_duplicate_pin() {
        let cell = Cell::nand(2);
        let events = vec![
            InputEvent::new(0, Edge::Rising, 0.0, 1e-9),
            InputEvent::new(0, Edge::Falling, 0.0, 1e-9),
        ];
        assert!(matches!(
            Scenario::resolve(&cell, &events),
            Err(ModelError::InvalidQuery { .. })
        ));
    }

    #[test]
    fn scenario_rejects_empty() {
        assert!(Scenario::resolve(&Cell::inv(), &[]).is_err());
    }

    #[test]
    fn scenario_opposite_edges_cancel_is_rejected() {
        // a rises and b falls on a NAND2: the final output equals the
        // initial output (high), so there is no completed transition.
        let cell = Cell::nand(2);
        let events = vec![
            InputEvent::new(0, Edge::Rising, 0.0, 1e-9),
            InputEvent::new(1, Edge::Falling, 0.0, 1e-9),
        ];
        assert!(Scenario::resolve(&cell, &events).is_err());
    }

    #[test]
    fn measure_delay_on_synthetic_output() {
        let th = th();
        let input = InputEvent::new(0, Edge::Rising, 0.0, 1e-9);
        // Output falls from 5 V to 0 V between 1 ns and 2 ns.
        let out = Pwl::ramp(1e-9, 1e-9, 5.0, 0.0);
        let d = measure_delay(&input, &out, &th, Edge::Falling).unwrap();
        // t_in = 0.25 ns; t_out(V_ih = 3.37, falling) = 1 + (5-3.37)/5 ns.
        let expect = (1.0 + (5.0 - 3.37) / 5.0) * 1e-9 - 0.25e-9;
        assert!((d - expect).abs() < 1e-15);
    }

    #[test]
    fn measure_transition_both_edges() {
        let th = th();
        let rise = Pwl::ramp(0.0, 1e-9, 0.0, 5.0);
        let t = measure_transition(&rise, &th, Edge::Rising).unwrap();
        assert!((t - (3.37 - 1.25) / 5.0 * 1e-9).abs() < 1e-15);
        let fall = Pwl::ramp(0.0, 2e-9, 5.0, 0.0);
        let t = measure_transition(&fall, &th, Edge::Falling).unwrap();
        assert!((t - (3.37 - 1.25) / 5.0 * 2e-9).abs() < 1e-15);
    }

    #[test]
    fn measure_errors_when_output_does_not_cross() {
        let th = th();
        let input = InputEvent::new(0, Edge::Rising, 0.0, 1e-9);
        let flat = Pwl::constant(5.0);
        assert!(measure_delay(&input, &flat, &th, Edge::Falling).is_err());
        assert!(measure_transition(&flat, &th, Edge::Falling).is_err());
    }

    #[test]
    fn delayed_event_shifts_arrival() {
        let th = th();
        let e = InputEvent::new(0, Edge::Rising, 0.0, 1e-9);
        let d = e.delayed(0.5e-9);
        assert!((d.arrival(&th) - e.arrival(&th) - 0.5e-9).abs() < 1e-15);
    }
}
