//! Closed-form analytical macromodels.
//!
//! §3 of the paper notes that "closed form analytical forms for these
//! macromodels do exist". This module fits such forms to the characterized
//! tables:
//!
//! - [`AnalyticSingle`]: `Δ⁽¹⁾/τ = a + b·u` — two coefficients per
//!   quantity. Linear in `u ∝ 1/τ`, this is the classic
//!   intrinsic-plus-load-slope delay law, and it fits the Level-1 substrate
//!   almost exactly.
//! - [`AnalyticDual`]: a low-order polynomial in `(ln u₁, ln v, w)` with a
//!   window-clamped separation shape — a dozen coefficients instead of a
//!   few hundred table entries, trading accuracy for storage. The
//!   `ablate-analytic` experiment quantifies the trade.

use crate::dual::DualInputModel;
use crate::error::ModelError;
use crate::single::SingleInputModel;
use proxim_numeric::fit::{lstsq, r_squared};
use proxim_numeric::grid::linspace;
use serde::{Deserialize, Serialize};

/// A fitted closed-form single-input macromodel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticSingle {
    /// The pin the underlying table described.
    pub pin: usize,
    /// Strength `K` used in the dimensionless load, in A/V².
    pub k: f64,
    /// Supply voltage, in volts.
    pub vdd: f64,
    /// `Δ⁽¹⁾/τ = delay_coeffs[0] + delay_coeffs[1] * u`.
    pub delay_coeffs: [f64; 2],
    /// `τ_out⁽¹⁾/τ = trans_coeffs[0] + trans_coeffs[1] * u`.
    pub trans_coeffs: [f64; 2],
    /// Goodness of fit of the delay law on the table samples.
    pub delay_r2: f64,
    /// Goodness of fit of the transition law.
    pub trans_r2: f64,
}

impl AnalyticSingle {
    /// Fits the closed form to a characterized table model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Table`] if the table has too few samples.
    pub fn fit(table: &SingleInputModel) -> Result<Self, ModelError> {
        let (us, delay_ratios, trans_ratios) = table.samples();
        let rows: Vec<Vec<f64>> = us.iter().map(|&u| vec![1.0, u]).collect();
        let dc = lstsq(&rows, &delay_ratios).map_err(|e| ModelError::Table(e.to_string()))?;
        let tc = lstsq(&rows, &trans_ratios).map_err(|e| ModelError::Table(e.to_string()))?;
        let predict = |c: &[f64]| -> Vec<f64> { us.iter().map(|&u| c[0] + c[1] * u).collect() };
        Ok(Self {
            pin: table.pin,
            k: table.k,
            vdd: table.vdd,
            delay_coeffs: [dc[0], dc[1]],
            trans_coeffs: [tc[0], tc[1]],
            delay_r2: r_squared(&delay_ratios, &predict(&dc)),
            trans_r2: r_squared(&trans_ratios, &predict(&tc)),
        })
    }

    /// The dimensionless load.
    fn u(&self, tau: f64, c_load: f64) -> f64 {
        c_load / (self.k * self.vdd * tau)
    }

    /// Closed-form `Δ⁽¹⁾`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not strictly positive.
    pub fn delay(&self, tau: f64, c_load: f64) -> f64 {
        assert!(tau > 0.0, "transition time must be positive");
        let u = self.u(tau, c_load);
        tau * (self.delay_coeffs[0] + self.delay_coeffs[1] * u)
    }

    /// Closed-form `τ_out⁽¹⁾`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not strictly positive.
    pub fn transition(&self, tau: f64, c_load: f64) -> f64 {
        assert!(tau > 0.0, "transition time must be positive");
        let u = self.u(tau, c_load);
        tau * (self.trans_coeffs[0] + self.trans_coeffs[1] * u)
    }

    /// Number of stored coefficients (the storage cost).
    pub fn coefficient_count(&self) -> usize {
        4
    }
}

/// A fitted closed-form dual-input proximity macromodel.
///
/// The basis is `{1, x, y, w, w², xw, yw, xy, x², y²}` with `x = ln u₁`,
/// `y = ln v`, evaluated inside the window and clamped to 1 outside
/// (`w ≥ 1` for the delay ratio), matching the table model's semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticDual {
    /// The dominant pin of the underlying table model.
    pub pin: usize,
    /// Delay-ratio coefficients over the basis.
    pub delay_coeffs: Vec<f64>,
    /// Transition-ratio coefficients over the basis.
    pub trans_coeffs: Vec<f64>,
    /// Goodness of fit on the sampled surface.
    pub delay_r2: f64,
    /// Goodness of fit of the transition surface.
    pub trans_r2: f64,
    /// The `(u₁, v, w)` sampling box the fit covered.
    pub domain: ((f64, f64), (f64, f64), (f64, f64)),
}

fn dual_basis(x: f64, y: f64, w: f64) -> Vec<f64> {
    vec![1.0, x, y, w, w * w, x * w, y * w, x * y, x * x, y * y]
}

impl AnalyticDual {
    /// Fits the closed form by sampling the table model over a dense grid
    /// inside `domain` (`samples` per axis).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Table`] if the fit is under-determined.
    ///
    /// # Panics
    ///
    /// Panics if `samples < 3` or a domain bound is non-positive where
    /// positivity is required.
    pub fn fit(
        table: &DualInputModel,
        domain: ((f64, f64), (f64, f64), (f64, f64)),
        samples: usize,
    ) -> Result<Self, ModelError> {
        assert!(samples >= 3, "need at least 3 samples per axis");
        let ((u_lo, u_hi), (v_lo, v_hi), (w_lo, w_hi)) = domain;
        assert!(u_lo > 0.0 && v_lo > 0.0, "u and v domains must be positive");

        let mut rows = Vec::new();
        let mut d_vals = Vec::new();
        let mut t_vals = Vec::new();
        for &u in &linspace(u_lo.ln(), u_hi.ln(), samples) {
            for &v in &linspace(v_lo.ln(), v_hi.ln(), samples) {
                for &w in &linspace(w_lo, w_hi, samples) {
                    rows.push(dual_basis(u, v, w));
                    d_vals.push(table.delay_ratio_raw(u.exp(), v.exp(), w));
                    t_vals.push(table.trans_ratio(u.exp(), v.exp(), w));
                }
            }
        }
        let dc = lstsq(&rows, &d_vals).map_err(|e| ModelError::Table(e.to_string()))?;
        let tc = lstsq(&rows, &t_vals).map_err(|e| ModelError::Table(e.to_string()))?;
        let predict = |c: &[f64]| -> Vec<f64> {
            rows.iter()
                .map(|r| r.iter().zip(c).map(|(a, b)| a * b).sum())
                .collect()
        };
        Ok(Self {
            pin: table.pin,
            delay_r2: r_squared(&d_vals, &predict(&dc)),
            trans_r2: r_squared(&t_vals, &predict(&tc)),
            delay_coeffs: dc,
            trans_coeffs: tc,
            domain,
        })
    }

    fn eval(&self, coeffs: &[f64], u1: f64, v: f64, w: f64) -> f64 {
        let ((u_lo, u_hi), (v_lo, v_hi), (w_lo, w_hi)) = self.domain;
        let x = u1.clamp(u_lo, u_hi).ln();
        let y = v.clamp(v_lo, v_hi).ln();
        let w = w.clamp(w_lo, w_hi);
        dual_basis(x, y, w)
            .iter()
            .zip(coeffs)
            .map(|(b, c)| b * c)
            .sum()
    }

    /// Closed-form `D⁽²⁾`, clamped to 1 outside the OR-like window.
    pub fn delay_ratio(&self, u1: f64, v: f64, w: f64) -> f64 {
        if w >= 1.0 {
            1.0
        } else {
            self.eval(&self.delay_coeffs, u1, v, w)
        }
    }

    /// Closed-form `T⁽²⁾`.
    pub fn trans_ratio(&self, u1: f64, v: f64, w: f64) -> f64 {
        self.eval(&self.trans_coeffs, u1, v, w)
    }

    /// Number of stored coefficients.
    pub fn coefficient_count(&self) -> usize {
        self.delay_coeffs.len() + self.trans_coeffs.len()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::characterize::Simulator;
    use crate::thresholds::Thresholds;
    use proxim_cells::{Cell, Technology};
    use proxim_numeric::pwl::Edge;

    fn single_table() -> (SingleInputModel, Technology, Cell) {
        let tech = Technology::demo_5v();
        let cell = Cell::nand(2);
        let sim = Simulator::new(&cell, &tech, Thresholds::new(1.2, 3.4, 5.0), 100e-15, 0.1);
        let m = SingleInputModel::characterize(
            &sim,
            0,
            Edge::Rising,
            &[100e-12, 250e-12, 600e-12, 1500e-12],
        )
        .unwrap();
        (m, tech, cell)
    }

    #[test]
    fn single_fit_is_nearly_exact() {
        // The Level-1 substrate produces an almost perfectly linear
        // delay-vs-u law, so the two-coefficient fit should have R² ≈ 1.
        let (table, _, _) = single_table();
        let a = AnalyticSingle::fit(&table).unwrap();
        assert!(a.delay_r2 > 0.98, "delay R² = {}", a.delay_r2);
        assert!(a.trans_r2 > 0.9, "trans R² = {}", a.trans_r2);
        // Agreement with the table inside the characterized range.
        for tau in [120e-12, 400e-12, 1200e-12] {
            let t = table.delay(tau, 100e-15);
            let f = a.delay(tau, 100e-15);
            assert!((t - f).abs() / t < 0.06, "tau {tau}: table {t} vs fit {f}");
        }
        assert_eq!(a.coefficient_count(), 4);
    }

    #[test]
    fn single_fit_extrapolates_sanely() {
        let (table, _, _) = single_table();
        let a = AnalyticSingle::fit(&table).unwrap();
        // Unlike the clamped table, the closed form keeps its slope outside
        // the grid; it must stay positive and monotone in c_load there.
        let d1 = a.delay(2500e-12, 100e-15);
        let d2 = a.delay(2500e-12, 200e-15);
        assert!(d1 > 0.0 && d2 > d1);
    }

    #[test]
    fn dual_fit_reproduces_surface_reasonably() {
        let (single, tech, cell) = single_table();
        let sim = Simulator::new(&cell, &tech, Thresholds::new(1.2, 3.4, 5.0), 100e-15, 0.1);
        let table = DualInputModel::characterize(
            &sim,
            &single,
            1,
            &[0.3, 1.0, 4.0],
            &[0.3, 1.0, 4.0],
            &[-1.5, -0.5, 0.25, 1.0],
        )
        .unwrap();
        let a = AnalyticDual::fit(&table, ((0.3, 4.0), (0.3, 4.0), (-1.5, 1.0)), 5).unwrap();
        assert!(a.delay_r2 > 0.85, "delay R² = {}", a.delay_r2);
        // Window clamping carried over.
        assert_eq!(a.delay_ratio(1.0, 1.0, 1.5), 1.0);
        // Storage reduction vs the table (at production grids the factor
        // exceeds 100x: 20 coefficients vs 2 x 8 x 8 x 21 entries).
        assert!(a.coefficient_count() < table.table_len());
    }
}
