//! The characterization job queue: enumerate → execute → assemble.
//!
//! Characterization cost is dominated by thousands of *independent*
//! transient analyses. Rather than interleaving simulation with table
//! construction, each model layer first **enumerates** its grid as plain
//! [`SimJob`] values, the whole batch is **executed** — sequentially or by a
//! pool of scoped worker threads pulling from an atomic work queue — and the
//! tables are then **assembled** from the outcomes in job order.
//!
//! Because assembly consumes outcomes strictly by job index, the resulting
//! model is byte-identical regardless of worker count or scheduling: thread
//! interleaving decides only *when* a slot is filled, never *what* ends up
//! in it. Failures keep the same determinism — a failed simulation becomes
//! a typed [`JobOutcome::Failed`] in its own slot, each job runs under
//! [`std::panic::catch_unwind`] supervision so one pathological job cannot
//! poison the pool, and assembly surfaces the first failed job in index
//! order.

use crate::characterize::{SimResponse, Simulator};
use crate::checkpoint::{stimulus_hash, CheckpointJournal};
use crate::error::ModelError;
use crate::measure::{InputEvent, Scenario};
use proxim_numeric::pwl::Edge;
use proxim_obs as obs;
use proxim_spice::{tran_batch, AnalysisError, BatchRun, RecoveryTrace};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Canonical metric names recorded by the characterization pipeline.
///
/// Every counter behind [`CharStats`] is booked under these names into a
/// per-run [`obs::Registry`] (the source of truth the stats snapshot is
/// derived from) and mirrored into [`obs::Registry::global`] whenever
/// metrics are enabled, so external sinks see process-wide totals under
/// the same names.
pub mod metric {
    /// Jobs submitted to [`super::execute_jobs`].
    pub const JOBS_ENUMERATED: &str = "char.jobs.enumerated";
    /// Jobs that produced a measurement.
    pub const JOBS_SUCCEEDED: &str = "char.jobs.succeeded";
    /// Jobs that produced [`super::JobOutcome::Failed`].
    pub const JOBS_FAILED: &str = "char.jobs.failed";
    /// Jobs answered from a checkpoint journal instead of simulating
    /// (resume path; see [`crate::checkpoint`]). These also count as
    /// succeeded — the skip counter measures work *avoided*.
    pub const JOBS_SKIPPED: &str = "char.jobs.skipped_checkpoint";
    /// Transient simulations actually run (batched jobs plus the
    /// sequential calibration/correction tail).
    pub const SIMS_RUN: &str = "char.sims_run";
    /// Recovery-ladder actions across all transients.
    pub const RECOVERIES: &str = "char.recoveries";
    /// Wall-clock seconds spent inside the recovery ladder (gauge).
    pub const RECOVERY_SECONDS: &str = "char.recovery_seconds";
    /// Model slices dropped (marked degraded) because their jobs failed.
    pub const DEGRADED_SLICES: &str = "char.degraded_slices";
    /// Models served from the on-disk cache without simulating.
    pub const CACHE_HITS: &str = "char.cache.hits";
    /// Models characterized from scratch.
    pub const CACHE_MISSES: &str = "char.cache.misses";
    /// Corrupt cache entries quarantined before recharacterizing.
    pub const CACHE_QUARANTINED: &str = "char.cache.quarantined";
    /// Per-job wall-clock histogram, in seconds.
    pub const JOB_SECONDS: &str = "char.job.seconds";
    /// Physics-invariant violations reported by the post-assembly audit
    /// (see [`crate::audit`]).
    pub const AUDIT_FINDINGS: &str = "char.audit.findings";
    /// Grid points re-simulated and patched by the audit repair pass.
    pub const REPAIR_POINTS: &str = "audit.repair.points";
    /// Slices the repair pass demoted to degraded provenance.
    pub const REPAIR_DEMOTED: &str = "audit.repair.demoted";
    /// Transient simulations the repair pass ran.
    pub const REPAIR_SIMS: &str = "audit.repair.sims";
    /// High-water count of pool workers that claimed at least one work item
    /// in a batched phase (gauge). `1` on inline runs; on a healthy
    /// multi-worker run this equals the resolved thread count, and the
    /// bench harness fails when a parallel section unexpectedly resolves
    /// to a single engaged worker.
    pub const WORKERS_ENGAGED: &str = "char.pool.workers_engaged";

    /// Bucket bounds of [`JOB_SECONDS`]: characterization transients range
    /// from sub-millisecond single-input rows to second-scale glitch runs.
    pub const JOB_SECONDS_BOUNDS: &[f64] = &[0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0];
}

/// The stimulus of one independent characterization transient.
#[derive(Debug, Clone)]
pub enum Stimulus {
    /// A same-direction switching scenario measured through
    /// [`Simulator::simulate`]: delay referenced to `events[0]`, the
    /// `V_il`–`V_ih` output transition time, and (for single-input table
    /// rows) the wide 5–95 % edge time feeding the tail factor.
    Events {
        /// The switching inputs; the delay is measured from `events[0]`.
        events: Vec<InputEvent>,
        /// Output load override; `None` runs at the simulator's reference
        /// load (the NLDM surface sweeps this axis).
        c_load: Option<f64>,
        /// Whether to also measure the 5–95 % edge time.
        measure_wide: bool,
    },
    /// A causer/blocker glitch scenario measuring the output extremum (§6).
    Glitch {
        /// The causer's resolved sensitization (stable levels, output edge).
        scenario: Scenario,
        /// The causer event (drives the output transition).
        causer: InputEvent,
        /// The blocker event (switches the opposite way).
        blocker: InputEvent,
    },
}

/// One independent simulation scenario, ready to execute on any worker.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// What to simulate and measure.
    pub stimulus: Stimulus,
}

impl SimJob {
    /// A same-direction events job at the reference load.
    pub fn events(events: Vec<InputEvent>) -> Self {
        Self {
            stimulus: Stimulus::Events {
                events,
                c_load: None,
                measure_wide: false,
            },
        }
    }

    /// An events job that also measures the wide edge time.
    pub fn events_wide(events: Vec<InputEvent>) -> Self {
        Self {
            stimulus: Stimulus::Events {
                events,
                c_load: None,
                measure_wide: true,
            },
        }
    }

    /// An events job at an explicit output load.
    pub fn events_at_load(events: Vec<InputEvent>, c_load: f64) -> Self {
        Self {
            stimulus: Stimulus::Events {
                events,
                c_load: Some(c_load),
                measure_wide: false,
            },
        }
    }

    /// A glitch job.
    pub fn glitch(scenario: Scenario, causer: InputEvent, blocker: InputEvent) -> Self {
        Self {
            stimulus: Stimulus::Glitch {
                scenario,
                causer,
                blocker,
            },
        }
    }
}

/// The measured result of one executed [`SimJob`].
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Measurements of an [`Stimulus::Events`] job.
    Response {
        /// The output transition direction.
        output_edge: Edge,
        /// Delay from `events[0]`'s threshold crossing, in seconds.
        delay: f64,
        /// Output transition time between `V_il` and `V_ih`, in seconds.
        trans: f64,
        /// The 5–95 % edge time, when requested and measurable.
        wide: Option<f64>,
    },
    /// The output-voltage extremum of a [`Stimulus::Glitch`] job, in volts.
    Peak(f64),
    /// The job did not produce a measurement: the simulation errored, or
    /// the worker supervising it caught a panic. The batch survives — the
    /// failure occupies the job's slot so assembly stays index-ordered.
    Failed {
        /// Index of the failed job within its batch.
        job: usize,
        /// What went wrong.
        reason: ModelError,
    },
}

impl JobOutcome {
    /// The `(delay, trans)` pair of a response outcome.
    ///
    /// # Errors
    ///
    /// A [`Self::Failed`] outcome surfaces its recorded reason; a glitch
    /// peak (a static mis-routing, which deterministic enumeration should
    /// make impossible) surfaces as [`ModelError::Table`].
    pub fn response(&self) -> Result<(f64, f64), ModelError> {
        match self {
            Self::Response { delay, trans, .. } => Ok((*delay, *trans)),
            Self::Failed { reason, .. } => Err(reason.clone()),
            Self::Peak(_) => Err(ModelError::Table(
                "expected an events response, got a glitch peak".into(),
            )),
        }
    }

    /// The extremum voltage of a glitch outcome.
    ///
    /// # Errors
    ///
    /// Mirrors [`Self::response`] with the roles swapped.
    pub fn peak(&self) -> Result<f64, ModelError> {
        match self {
            Self::Peak(v) => Ok(*v),
            Self::Failed { reason, .. } => Err(reason.clone()),
            Self::Response { .. } => Err(ModelError::Table(
                "expected a glitch peak, got an events response".into(),
            )),
        }
    }

    /// The failure reason, if this outcome is a [`Self::Failed`].
    pub fn failure(&self) -> Option<&ModelError> {
        match self {
            Self::Failed { reason, .. } => Some(reason),
            _ => None,
        }
    }
}

/// Executes one job against the simulator, also reporting the recovery
/// ladder's trace for the underlying transient.
fn run_job(sim: &Simulator<'_>, job: &SimJob) -> Result<(JobOutcome, RecoveryTrace), ModelError> {
    match &job.stimulus {
        Stimulus::Events {
            events,
            c_load,
            measure_wide,
        } => {
            let pass;
            let s = match c_load {
                Some(c) => {
                    pass = Simulator {
                        c_load: *c,
                        ..sim.clone()
                    };
                    &pass
                }
                None => sim,
            };
            let r = s.simulate(events)?;
            measure_events(s, r, *measure_wide)
        }
        Stimulus::Glitch {
            scenario,
            causer,
            blocker,
        } => {
            let (v, recovery) = crate::glitch::simulate_glitch(
                sim,
                scenario,
                *causer,
                *blocker,
                scenario.output_edge,
            )?;
            Ok((JobOutcome::Peak(v), recovery))
        }
    }
}

/// Measures an [`Stimulus::Events`] response: delay from `events[0]`, the
/// output transition time, and optionally the wide 5–95 % edge time. Shared
/// verbatim between the scalar job path ([`run_job`]) and the batched group
/// executor, so a lane measured after [`tran_batch`] produces the same
/// outcome bits as the same job run scalar.
fn measure_events(
    s: &Simulator<'_>,
    r: SimResponse,
    measure_wide: bool,
) -> Result<(JobOutcome, RecoveryTrace), ModelError> {
    let th = s.thresholds;
    let delay = r.delay_from(0, &th)?;
    let trans = r.transition_time(&th)?;
    let vdd = s.tech.vdd;
    let wide = if measure_wide {
        r.output
            .transition_time(0.05 * vdd, 0.95 * vdd, r.output_edge)
    } else {
        None
    };
    Ok((
        JobOutcome::Response {
            output_edge: r.output_edge,
            delay,
            trans,
            wide,
        },
        r.recovery,
    ))
}

/// One supervised job execution: its outcome plus per-job telemetry.
#[derive(Debug, Clone)]
struct JobRun {
    outcome: JobOutcome,
    recovery: RecoveryTrace,
    /// Wall-clock seconds the job held a worker, failures included.
    seconds: f64,
    /// Whether the outcome was replayed from a checkpoint journal instead
    /// of simulated.
    skipped: bool,
}

impl JobRun {
    fn failed(i: usize, reason: ModelError, seconds: f64) -> Self {
        Self {
            outcome: JobOutcome::Failed { job: i, reason },
            recovery: RecoveryTrace::default(),
            seconds,
            skipped: false,
        }
    }
}

/// Runs one job under panic supervision: a simulation error or a caught
/// panic becomes a typed [`JobOutcome::Failed`] in the job's slot instead of
/// unwinding into (and poisoning) the worker pool.
fn run_supervised(sim: &Simulator<'_>, i: usize, job: &SimJob) -> JobRun {
    let kind = match &job.stimulus {
        Stimulus::Events { .. } => "events",
        Stimulus::Glitch { .. } => "glitch",
    };
    let span = obs::span("char.job").arg("job", i).arg("kind", kind);
    let start = Instant::now();
    let run = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(sim, job))) {
        Ok(Ok((outcome, recovery))) => JobRun {
            outcome,
            recovery,
            seconds: start.elapsed().as_secs_f64(),
            skipped: false,
        },
        Ok(Err(reason)) => JobRun::failed(i, reason, start.elapsed().as_secs_f64()),
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            let reason = ModelError::Simulation(AnalysisError::Aborted {
                analysis: "characterization job".into(),
                detail: format!("job panicked: {detail}"),
            });
            JobRun::failed(i, reason, start.elapsed().as_secs_f64())
        }
    };
    drop(
        span.arg("ok", !matches!(run.outcome, JobOutcome::Failed { .. }))
            .arg("recoveries", run.recovery.total()),
    );
    run
}

/// One job under run control: the simulator's cancellation token is checked
/// at the job boundary (a cancelled claim becomes a typed, *non-degradable*
/// failure in the job's slot, so the run fails with the cancellation
/// instead of degrading slices), and — when a checkpoint journal is active
/// — completed outcomes are answered from the journal or recorded into it.
fn run_controlled(
    sim: &Simulator<'_>,
    i: usize,
    job: &SimJob,
    checkpoint: Option<(&CheckpointJournal, &str)>,
) -> JobRun {
    if let Err(e) = sim.cancel.check("characterization job") {
        return JobRun::failed(i, e.into(), 0.0);
    }
    let Some((journal, phase)) = checkpoint else {
        return run_supervised(sim, i, job);
    };
    let stim = stimulus_hash(job);
    if let Some(outcome) = journal.lookup(phase, i, stim) {
        return JobRun {
            outcome,
            recovery: RecoveryTrace::default(),
            seconds: 0.0,
            skipped: true,
        };
    }
    let run = run_supervised(sim, i, job);
    journal.record(phase, i, stim, &run.outcome);
    run
}

/// The result of executing a batch of jobs: one outcome per job (in job
/// order, failures included) plus batch-level resilience telemetry.
#[derive(Debug, Clone)]
pub struct JobBatch {
    /// One outcome per job, in job order.
    pub outcomes: Vec<JobOutcome>,
    /// Merged recovery-ladder trace across all transients in the batch
    /// (counters, per-rung wall time, and capped attempt details).
    pub recovery: RecoveryTrace,
    /// Total recovery-ladder actions; equals `self.recovery.total()`.
    pub recoveries: usize,
    /// Number of [`JobOutcome::Failed`] entries.
    pub failed_jobs: usize,
    /// Jobs answered from a checkpoint journal instead of simulating
    /// (always `0` without an active journal).
    pub skipped: usize,
    /// Wall-clock seconds each job held a worker, in job order.
    pub job_seconds: Vec<f64>,
    /// Pool workers that claimed at least one work item (`1` for inline
    /// execution). A parallel batch where this stays at `1` means the pool
    /// was dead weight — the condition the bench harness gates on.
    pub workers_engaged: usize,
}

impl JobBatch {
    fn collect(runs: impl Iterator<Item = JobRun>) -> Self {
        let mut outcomes = Vec::new();
        let mut recovery = RecoveryTrace::default();
        let mut failed_jobs = 0;
        let mut skipped = 0;
        let mut job_seconds = Vec::new();
        for run in runs {
            recovery.merge(&run.recovery);
            if matches!(run.outcome, JobOutcome::Failed { .. }) {
                failed_jobs += 1;
            }
            if run.skipped {
                skipped += 1;
            }
            outcomes.push(run.outcome);
            job_seconds.push(run.seconds);
        }
        Self {
            outcomes,
            recoveries: recovery.total(),
            recovery,
            failed_jobs,
            skipped,
            job_seconds,
            workers_engaged: 1,
        }
    }
}

/// Executes a batch of jobs across `threads` workers and returns the
/// outcomes **in job order**.
///
/// Workers pull indices from a shared atomic counter, so load balances
/// dynamically across jobs of very different cost (a glitch transient can
/// run 10× longer than a fast single-input row). Results are written back
/// by index, making the output independent of scheduling.
///
/// Every job runs under [`catch_unwind`](std::panic::catch_unwind)
/// supervision, and a worker thread that dies anyway (a panic outside the
/// supervised region) only loses its own claimed jobs: the batch marks
/// those slots [`JobOutcome::Failed`] and the surviving workers' results
/// are still assembled.
///
/// `threads == 1` (or a batch of at most one job) runs inline on the caller
/// thread with no pool at all.
pub fn execute_jobs(sim: &Simulator<'_>, jobs: &[SimJob], threads: usize) -> JobBatch {
    execute_jobs_controlled(sim, jobs, threads, None)
}

/// [`execute_jobs`] under run control: the simulator's cancellation token
/// is polled before every job claim (cancelled claims become typed failed
/// slots, surfaced by [`first_error`] in job order), and an active
/// checkpoint journal short-circuits already-completed jobs — their
/// recorded outcomes are replayed bit-exactly with zero simulations —
/// while newly completed jobs are journaled as they finish, from whichever
/// worker thread finishes them.
pub fn execute_jobs_controlled(
    sim: &Simulator<'_>,
    jobs: &[SimJob],
    threads: usize,
    checkpoint: Option<(&CheckpointJournal, &str)>,
) -> JobBatch {
    execute_jobs_policy(
        sim,
        jobs,
        ExecPolicy {
            threads,
            batch_lanes: 1,
        },
        checkpoint,
    )
}

/// How a job batch is executed: pool width and transient batching.
#[derive(Debug, Clone, Copy)]
pub struct ExecPolicy {
    /// Worker threads pulling work items from the shared queue. `<= 1`
    /// runs inline on the caller thread.
    pub threads: usize,
    /// Maximum lanes per batched transient: runs of consecutive
    /// [`Stimulus::Events`] jobs are grouped and advanced in lockstep
    /// through [`tran_batch`]. `<= 1` disables batching (every job runs
    /// its own scalar transient).
    pub batch_lanes: usize,
}

/// One claimable unit of the work queue: a single job, or a contiguous run
/// of events jobs executed as one batched transient.
#[derive(Debug, Clone, Copy)]
enum WorkItem {
    Scalar(usize),
    /// `(first job index, job count)`; planning guarantees `count >= 2` and
    /// that every member is a [`Stimulus::Events`] job.
    Group(usize, usize),
}

/// Splits a job list into work items: maximal runs of consecutive events
/// jobs become lockstep groups of at most `batch_lanes` lanes; glitch jobs
/// and leftovers of length one stay scalar. Jobs keep their indices — the
/// grouping decides only *how* a slot is computed, never what lands in it.
fn plan_work(jobs: &[SimJob], batch_lanes: usize) -> Vec<WorkItem> {
    if batch_lanes <= 1 {
        return (0..jobs.len()).map(WorkItem::Scalar).collect();
    }
    let mut items = Vec::new();
    let mut i = 0;
    while i < jobs.len() {
        if matches!(jobs[i].stimulus, Stimulus::Events { .. }) {
            let mut j = i + 1;
            while j < jobs.len()
                && j - i < batch_lanes
                && matches!(jobs[j].stimulus, Stimulus::Events { .. })
            {
                j += 1;
            }
            if j - i >= 2 {
                items.push(WorkItem::Group(i, j - i));
            } else {
                items.push(WorkItem::Scalar(i));
            }
            i = j;
        } else {
            items.push(WorkItem::Scalar(i));
            i += 1;
        }
    }
    items
}

/// Executes one group of events jobs through the batched transient kernel,
/// returning the runs in group order. Any job that cannot take the batched
/// path — checkpoint hit (replayed), unsensitizable scenario, or a panic
/// anywhere in the group — is resolved through the scalar
/// [`run_controlled`] path instead, which reproduces the exact outcome the
/// job would have had in a batch-off run.
fn run_group(
    sim: &Simulator<'_>,
    start: usize,
    jobs: &[SimJob],
    checkpoint: Option<(&CheckpointJournal, &str)>,
) -> Vec<JobRun> {
    let scalar_all = |note: Option<String>| {
        if let Some(detail) = note {
            let _ = obs::event("char.batch.fallback").arg("detail", detail);
        }
        (0..jobs.len())
            .map(|k| run_controlled(sim, start + k, &jobs[k], checkpoint))
            .collect::<Vec<_>>()
    };
    // A panic while preparing or measuring the group must not take down
    // sibling jobs: rerun everything scalar, where per-job supervision
    // confines any repeat to its own slot.
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_group_batched(sim, start, jobs, checkpoint)
    })) {
        Ok(runs) => runs,
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            scalar_all(Some(format!("group panicked: {detail}")))
        }
    }
}

fn run_group_batched(
    sim: &Simulator<'_>,
    start: usize,
    jobs: &[SimJob],
    checkpoint: Option<(&CheckpointJournal, &str)>,
) -> Vec<JobRun> {
    let mut slots: Vec<Option<JobRun>> = vec![None; jobs.len()];
    // Lanes still needing a transient: `(group offset, simulator with the
    // job's load applied, prepared scenario, measure_wide)`.
    let mut lanes = Vec::new();
    for (k, job) in jobs.iter().enumerate() {
        // Checkpoint hits replay without simulating, exactly as in
        // `run_controlled`; the cancellation check also matches the scalar
        // per-job boundary.
        if let Err(e) = sim.cancel.check("characterization job") {
            slots[k] = Some(JobRun::failed(start + k, e.into(), 0.0));
            continue;
        }
        if let Some((journal, phase)) = checkpoint {
            if let Some(outcome) = journal.lookup(phase, start + k, stimulus_hash(job)) {
                slots[k] = Some(JobRun {
                    outcome,
                    recovery: RecoveryTrace::default(),
                    seconds: 0.0,
                    skipped: true,
                });
                continue;
            }
        }
        let Stimulus::Events {
            events,
            c_load,
            measure_wide,
        } = &job.stimulus
        else {
            // Planning only groups events jobs; a mismatch is a planner bug
            // but still resolves correctly through the scalar path.
            slots[k] = Some(run_controlled(sim, start + k, job, checkpoint));
            continue;
        };
        let s = match c_load {
            Some(c) => Simulator {
                c_load: *c,
                ..sim.clone()
            },
            None => sim.clone(),
        };
        match s.prepare(events) {
            Ok(prep) => lanes.push((k, s, prep, *measure_wide)),
            // Scenario resolution failed before any transient: the scalar
            // path re-derives the identical typed failure (and journals it).
            Err(_) => slots[k] = Some(run_controlled(sim, start + k, job, checkpoint)),
        }
    }

    if lanes.len() < 2 {
        // Not enough lanes left to batch (checkpoint replay or failures ate
        // the group): finish the stragglers scalar.
        for (k, ..) in lanes {
            slots[k] = Some(run_controlled(sim, start + k, &jobs[k], checkpoint));
        }
    } else {
        let group_start = Instant::now();
        let runs: Vec<BatchRun<'_>> = lanes
            .iter()
            .map(|(_, _, prep, _)| BatchRun {
                ckt: prep.circuit(),
                options: prep.options(),
            })
            .collect();
        let results = tran_batch(&runs, &sim.cancel);
        drop(runs);
        // Per-lane attribution of the lockstep wall time is meaningless;
        // split it evenly (telemetry only — never fed back into results).
        let seconds = group_start.elapsed().as_secs_f64() / lanes.len() as f64;
        for ((k, s, prep, measure_wide), result) in lanes.into_iter().zip(results) {
            let span = obs::span("char.job")
                .arg("job", start + k)
                .arg("kind", "events");
            let run = match result {
                Ok(tr) => match measure_events(&s, s.finish(prep, tr), measure_wide) {
                    Ok((outcome, recovery)) => JobRun {
                        outcome,
                        recovery,
                        seconds,
                        skipped: false,
                    },
                    Err(reason) => JobRun::failed(start + k, reason, seconds),
                },
                Err(e) => JobRun::failed(start + k, e.into(), seconds),
            };
            drop(
                span.arg("ok", !matches!(run.outcome, JobOutcome::Failed { .. }))
                    .arg("recoveries", run.recovery.total()),
            );
            if let Some((journal, phase)) = checkpoint {
                journal.record(phase, start + k, stimulus_hash(&jobs[k]), &run.outcome);
            }
            slots[k] = Some(run);
        }
    }

    slots
        .into_iter()
        .enumerate()
        .map(|(k, slot)| {
            slot.unwrap_or_else(|| run_controlled(sim, start + k, &jobs[k], checkpoint))
        })
        .collect()
}

/// [`execute_jobs_controlled`] under a full [`ExecPolicy`]: the work queue
/// holds batchable groups as single claimable items, so a pool worker
/// advances a whole lockstep batch while its siblings claim other items.
/// Per-batch results stay byte-identical across every `(threads,
/// batch_lanes)` combination.
pub fn execute_jobs_policy(
    sim: &Simulator<'_>,
    jobs: &[SimJob],
    policy: ExecPolicy,
    checkpoint: Option<(&CheckpointJournal, &str)>,
) -> JobBatch {
    let _span = obs::span("char.execute")
        .arg("jobs", jobs.len())
        .arg("threads", policy.threads)
        .arg("batch_lanes", policy.batch_lanes);
    let items = plan_work(jobs, policy.batch_lanes);
    if policy.threads <= 1 || jobs.len() <= 1 {
        return JobBatch::collect(items.iter().flat_map(|item| match *item {
            WorkItem::Scalar(i) => vec![run_controlled(sim, i, &jobs[i], checkpoint)],
            WorkItem::Group(s, len) => run_group(sim, s, &jobs[s..s + len], checkpoint),
        }));
    }

    let workers = policy.threads.min(items.len());
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<JobRun>> = vec![None; jobs.len()];
    let mut worker_panic: Option<String> = None;
    let mut engaged = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let items = &items;
                scope.spawn(move || {
                    let mut local: Vec<(usize, JobRun)> = Vec::new();
                    loop {
                        let w = next.fetch_add(1, Ordering::Relaxed);
                        if w >= items.len() {
                            break;
                        }
                        match items[w] {
                            WorkItem::Scalar(i) => {
                                local.push((i, run_controlled(sim, i, &jobs[i], checkpoint)));
                            }
                            WorkItem::Group(s, len) => {
                                let runs = run_group(sim, s, &jobs[s..s + len], checkpoint);
                                local.extend(runs.into_iter().enumerate().map(|(k, r)| (s + k, r)));
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => {
                    if !local.is_empty() {
                        engaged += 1;
                    }
                    for (i, r) in local {
                        results[i] = Some(r);
                    }
                }
                Err(payload) => {
                    // The worker died outside job supervision; its claimed
                    // slots stay `None` and are marked failed below. It did
                    // engage — the pool-liveness gauge counts claims, not
                    // clean exits.
                    engaged += 1;
                    let detail = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    worker_panic.get_or_insert(detail);
                }
            }
        }
    });
    let worker_panic = worker_panic.unwrap_or_else(|| "worker lost".into());
    let mut batch = JobBatch::collect(results.into_iter().enumerate().map(|(i, slot)| {
        slot.unwrap_or_else(|| {
            JobRun::failed(
                i,
                ModelError::Simulation(AnalysisError::Aborted {
                    analysis: "characterization worker".into(),
                    detail: format!("worker panicked: {worker_panic}"),
                }),
                0.0,
            )
        })
    }));
    batch.workers_engaged = engaged.max(1);
    batch
}

/// Scans a span of outcomes and surfaces the first failure in job order,
/// otherwise hands back the outcomes. This keeps error behavior identical
/// between sequential and parallel runs.
///
/// # Errors
///
/// Returns the recorded reason of the first [`JobOutcome::Failed`].
pub fn first_error(outcomes: &[JobOutcome]) -> Result<Vec<&JobOutcome>, ModelError> {
    let mut ok = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        match o.failure() {
            Some(e) => return Err(e.clone()),
            None => ok.push(o),
        }
    }
    Ok(ok)
}

/// Counters describing one characterization run (satisfying the perf and
/// resilience acceptance criteria: cache behavior, simulation volume, and
/// degradation are observable, not inferred).
///
/// The run counters are not accumulated ad hoc: characterization books every
/// batch into a per-run [`obs::Registry`] under the [`metric`] names and this
/// struct is derived from its snapshot ([`Self::from_registry`]), then
/// cross-checked by [`Self::invariant_violation`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CharStats {
    /// Models served from the on-disk cache without simulating.
    pub cache_hits: usize,
    /// Models characterized from scratch (including cache-corruption
    /// fallbacks).
    pub cache_misses: usize,
    /// Corrupt cache entries quarantined (renamed aside) before
    /// recharacterizing.
    pub cache_quarantined: usize,
    /// Transient simulations actually run.
    pub sims_run: usize,
    /// Worker threads used for the batched phases.
    pub threads: usize,
    /// High-water count of pool workers that actually claimed work in a
    /// batched phase. On a healthy multi-worker run this equals `threads`;
    /// `1` with `threads > 1` means the pool was dead weight.
    pub workers_engaged: usize,
    /// Jobs submitted to the batched phases.
    pub enumerated_jobs: usize,
    /// Jobs that produced a measurement.
    pub succeeded_jobs: usize,
    /// Jobs answered from a checkpoint journal instead of simulating (a
    /// subset of `succeeded_jobs`; nonzero only on a resumed run).
    pub checkpoint_skipped: usize,
    /// Recovery-ladder actions across all transients (damped retries, gmin
    /// continuations, step cuts, run restarts).
    pub recoveries: usize,
    /// Wall-clock seconds lost inside the recovery ladder (rescue solves
    /// and thrown-away restarted attempts).
    pub recovery_seconds: f64,
    /// Jobs that produced [`JobOutcome::Failed`] instead of a measurement.
    pub failed_jobs: usize,
    /// Model slices dropped (marked degraded) because their jobs failed.
    pub degraded_slices: usize,
    /// Physics-invariant violations reported by the post-assembly audit
    /// (telemetry only — findings never fail a characterization run).
    pub audit_findings: usize,
    /// Wall-clock seconds per pipeline phase.
    pub phases: PhaseTimes,
}

impl CharStats {
    /// Derives the run counters from a metrics-registry snapshot. Cache
    /// counters, `threads`, and `phases` are not registry-backed and stay at
    /// their defaults; callers fill them in.
    pub fn from_registry(snap: &obs::Snapshot) -> Self {
        let count = |name: &str| snap.counter(name) as usize;
        Self {
            sims_run: count(metric::SIMS_RUN),
            enumerated_jobs: count(metric::JOBS_ENUMERATED),
            succeeded_jobs: count(metric::JOBS_SUCCEEDED),
            checkpoint_skipped: count(metric::JOBS_SKIPPED),
            failed_jobs: count(metric::JOBS_FAILED),
            recoveries: count(metric::RECOVERIES),
            recovery_seconds: snap.gauge(metric::RECOVERY_SECONDS),
            workers_engaged: (snap.gauge(metric::WORKERS_ENGAGED) as usize).max(1),
            degraded_slices: count(metric::DEGRADED_SLICES),
            audit_findings: count(metric::AUDIT_FINDINGS),
            ..Self::default()
        }
    }

    /// Checks the job-accounting invariant: every enumerated job must end as
    /// exactly one success or one failure. The three counters are recorded
    /// from independent sources (submitted jobs, non-failed outcomes, failed
    /// outcomes), so a violation means outcomes were dropped or
    /// double-counted somewhere in the pipeline.
    ///
    /// Returns a description of the violation, or `None` when consistent.
    pub fn invariant_violation(&self) -> Option<String> {
        if self.succeeded_jobs + self.failed_jobs == self.enumerated_jobs {
            None
        } else {
            Some(format!(
                "job accounting out of balance: {} succeeded + {} failed != {} enumerated",
                self.succeeded_jobs, self.failed_jobs, self.enumerated_jobs
            ))
        }
    }
}

/// The per-run registry plus, when metrics are enabled, the process-global
/// one — every characterization counter is booked into both.
fn registries(reg: &obs::Registry) -> impl Iterator<Item = &obs::Registry> {
    std::iter::once(reg).chain(obs::metrics_enabled().then(obs::Registry::global))
}

/// Adds `n` to the counter `name` in the run registry and its global mirror.
pub(crate) fn bump(reg: &obs::Registry, name: &str, n: u64) {
    for r in registries(reg) {
        r.counter(name).add(n);
    }
}

/// Books one executed batch: job accounting (enumerated from the submitted
/// count, succeeded/failed by scanning the outcomes — deliberately separate
/// sources so [`CharStats::invariant_violation`] checks something real),
/// simulation volume, recovery cost, and the per-job wall-time histogram.
pub(crate) fn record_batch(reg: &obs::Registry, enumerated: usize, batch: &JobBatch) {
    let succeeded = batch
        .outcomes
        .iter()
        .filter(|o| !matches!(o, JobOutcome::Failed { .. }))
        .count();
    for r in registries(reg) {
        r.counter(metric::JOBS_ENUMERATED).add(enumerated as u64);
        r.counter(metric::JOBS_SUCCEEDED).add(succeeded as u64);
        r.counter(metric::JOBS_SKIPPED).add(batch.skipped as u64);
        r.counter(metric::JOBS_FAILED).add(batch.failed_jobs as u64);
        // Checkpoint-skipped jobs replay a recorded outcome and run no
        // transient, so they are excluded from the simulation volume.
        r.counter(metric::SIMS_RUN)
            .add((batch.outcomes.len() - batch.skipped) as u64);
        r.counter(metric::RECOVERIES).add(batch.recoveries as u64);
        r.gauge(metric::RECOVERY_SECONDS)
            .add(batch.recovery.total_seconds());
        let hist = r.histogram(metric::JOB_SECONDS, metric::JOB_SECONDS_BOUNDS);
        for &s in &batch.job_seconds {
            hist.observe(s);
        }
        // High-water mark across the run's batches: a run is only as
        // parallel as its most-engaged phase.
        let engaged = r.gauge(metric::WORKERS_ENGAGED);
        if (batch.workers_engaged as f64) > engaged.get() {
            engaged.set(batch.workers_engaged as f64);
        }
    }
}

/// Wall-clock breakdown of the characterization pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// VTC-family extraction and threshold selection (sequential).
    pub vtc: f64,
    /// Single-input batch: enumerate + execute + assemble.
    pub singles: f64,
    /// Dual/NLDM/glitch batch: enumerate + execute + assemble.
    pub pairs: f64,
    /// Sequential tail: ramp-stretch calibration and correction terms.
    pub finish: f64,
}

impl PhaseTimes {
    /// Total characterization wall-clock, in seconds.
    pub fn total(&self) -> f64 {
        self.vtc + self.singles + self.pairs + self.finish
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::thresholds::Thresholds;
    use proxim_cells::{Cell, Technology};

    fn env() -> (Cell, Technology) {
        (Cell::nand(2), Technology::demo_5v())
    }

    #[test]
    fn parallel_execution_matches_sequential_bitwise() {
        let (cell, tech) = env();
        let sim = Simulator::new(&cell, &tech, Thresholds::new(1.2, 3.4, 5.0), 100e-15, 0.1);
        let jobs: Vec<SimJob> = [100e-12, 300e-12, 900e-12, 1500e-12]
            .iter()
            .map(|&tau| SimJob::events_wide(vec![InputEvent::new(0, Edge::Rising, 0.0, tau)]))
            .collect();
        let seq = execute_jobs(&sim, &jobs, 1);
        let par = execute_jobs(&sim, &jobs, 4);
        assert_eq!(seq.outcomes.len(), par.outcomes.len());
        for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
            // Bit-exact: the same job runs the same deterministic transient
            // regardless of which thread picks it up.
            assert_eq!(a, b);
        }
        assert_eq!(seq.recoveries, par.recoveries);
        assert_eq!(seq.failed_jobs, 0);
        assert_eq!(par.failed_jobs, 0);
    }

    #[test]
    fn errors_surface_in_job_order() {
        let outcomes = vec![
            JobOutcome::Peak(1.0),
            JobOutcome::Failed {
                job: 1,
                reason: ModelError::Table("first".into()),
            },
            JobOutcome::Failed {
                job: 2,
                reason: ModelError::Table("second".into()),
            },
        ];
        match first_error(&outcomes) {
            Err(ModelError::Table(s)) => assert_eq!(s, "first"),
            other => panic!("expected the first error, got {other:?}"),
        }
    }

    #[test]
    fn failed_outcomes_surface_through_accessors() {
        let failed = JobOutcome::Failed {
            job: 3,
            reason: ModelError::Table("boom".into()),
        };
        assert_eq!(failed.response(), Err(ModelError::Table("boom".into())));
        assert_eq!(failed.peak(), Err(ModelError::Table("boom".into())));
        assert!(failed.failure().is_some());
        // Mis-routed kinds are typed errors, not panics.
        assert!(JobOutcome::Peak(1.0).response().is_err());
        let resp = JobOutcome::Response {
            output_edge: Edge::Rising,
            delay: 1.0,
            trans: 2.0,
            wide: None,
        };
        assert!(resp.peak().is_err());
        assert_eq!(resp.response().unwrap(), (1.0, 2.0));
        assert!(resp.failure().is_none());
    }

    #[test]
    fn an_unsensitizable_job_fails_without_poisoning_the_batch() {
        let (cell, tech) = env();
        let sim = Simulator::new(&cell, &tech, Thresholds::new(1.2, 3.4, 5.0), 100e-15, 0.1);
        // Opposite-direction events on a NAND are rejected by scenario
        // resolution — a simulation-level failure, not a panic.
        let bad = SimJob::events(vec![
            InputEvent::new(0, Edge::Rising, 0.0, 300e-12),
            InputEvent::new(1, Edge::Falling, 0.0, 300e-12),
        ]);
        let good = SimJob::events(vec![InputEvent::new(0, Edge::Rising, 0.0, 300e-12)]);
        let batch = execute_jobs(&sim, &[bad, good.clone(), good], 2);
        assert_eq!(batch.failed_jobs, 1);
        assert!(batch.outcomes[0].failure().is_some());
        assert!(batch.outcomes[1].failure().is_none());
        assert!(batch.outcomes[2].failure().is_none());
        assert!(first_error(&batch.outcomes).is_err());
    }

    #[test]
    fn batched_execution_matches_scalar_bitwise() {
        let (cell, tech) = env();
        let sim = Simulator::new(&cell, &tech, Thresholds::new(1.2, 3.4, 5.0), 100e-15, 0.1);
        // A consecutive run of events jobs with varying stimuli and loads —
        // exactly what the model phases enumerate.
        let mut jobs: Vec<SimJob> = [100e-12, 300e-12, 900e-12]
            .iter()
            .map(|&tau| SimJob::events_wide(vec![InputEvent::new(0, Edge::Rising, 0.0, tau)]))
            .collect();
        jobs.push(SimJob::events_at_load(
            vec![InputEvent::new(1, Edge::Rising, 0.0, 400e-12)],
            250e-15,
        ));
        let base = execute_jobs(&sim, &jobs, 1);
        assert_eq!(base.failed_jobs, 0);
        for (threads, batch_lanes) in [(1, 4), (1, 2), (4, 4)] {
            let b = execute_jobs_policy(
                &sim,
                &jobs,
                ExecPolicy {
                    threads,
                    batch_lanes,
                },
                None,
            );
            for (k, (a, c)) in base.outcomes.iter().zip(&b.outcomes).enumerate() {
                assert_eq!(
                    a, c,
                    "outcome {k} diverged at threads={threads} lanes={batch_lanes}"
                );
            }
            assert_eq!(base.recoveries, b.recoveries);
        }
    }

    #[test]
    fn work_planning_groups_only_consecutive_events() {
        let ev = |pin: usize| SimJob::events(vec![InputEvent::new(pin, Edge::Rising, 0.0, 3e-10)]);
        let (cell, _tech) = env();
        let scenario =
            Scenario::resolve(&cell, &[InputEvent::new(0, Edge::Rising, 0.0, 3e-10)]).unwrap();
        let glitch = SimJob::glitch(
            scenario,
            InputEvent::new(0, Edge::Rising, 0.0, 3e-10),
            InputEvent::new(1, Edge::Falling, 0.0, 3e-10),
        );
        let jobs = vec![ev(0), ev(1), ev(0), glitch, ev(1)];
        let items = plan_work(&jobs, 2);
        // [0,1] group, [2] scalar (run cut by the cap then the glitch),
        // [3] scalar glitch, [4] scalar leftover.
        assert!(matches!(items[0], WorkItem::Group(0, 2)));
        assert!(matches!(items[1], WorkItem::Scalar(2)));
        assert!(matches!(items[2], WorkItem::Scalar(3)));
        assert!(matches!(items[3], WorkItem::Scalar(4)));
        // Lanes of 1 disable grouping entirely.
        assert!(plan_work(&jobs, 1)
            .iter()
            .all(|i| matches!(i, WorkItem::Scalar(_))));
        // A wide cap batches the leading run whole.
        let items = plan_work(&jobs, 8);
        assert!(matches!(items[0], WorkItem::Group(0, 3)));
    }

    #[test]
    fn a_failing_lane_degrades_to_scalar_without_poisoning_the_group() {
        let (cell, tech) = env();
        let sim = Simulator::new(&cell, &tech, Thresholds::new(1.2, 3.4, 5.0), 100e-15, 0.1);
        // Opposite-direction events are rejected at scenario resolution —
        // inside a group, that lane must fail exactly as it does scalar.
        let bad = SimJob::events(vec![
            InputEvent::new(0, Edge::Rising, 0.0, 300e-12),
            InputEvent::new(1, Edge::Falling, 0.0, 300e-12),
        ]);
        let good = SimJob::events(vec![InputEvent::new(0, Edge::Rising, 0.0, 300e-12)]);
        let jobs = [good.clone(), bad, good];
        let scalar = execute_jobs(&sim, &jobs, 1);
        let batched = execute_jobs_policy(
            &sim,
            &jobs,
            ExecPolicy {
                threads: 1,
                batch_lanes: 3,
            },
            None,
        );
        assert_eq!(batched.failed_jobs, 1);
        assert!(batched.outcomes[1].failure().is_some());
        for (a, b) in scalar.outcomes.iter().zip(&batched.outcomes) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn load_override_changes_the_simulated_load() {
        let (cell, tech) = env();
        let sim = Simulator::new(&cell, &tech, Thresholds::new(1.2, 3.4, 5.0), 100e-15, 0.1);
        let ev = vec![InputEvent::new(0, Edge::Rising, 0.0, 400e-12)];
        let (at_ref, _) = run_job(&sim, &SimJob::events(ev.clone())).unwrap();
        let (at_big, _) = run_job(&sim, &SimJob::events_at_load(ev, 400e-15)).unwrap();
        let (d_ref, _) = at_ref.response().unwrap();
        let (d_big, _) = at_big.response().unwrap();
        assert!(
            d_big > d_ref,
            "larger load must be slower: {d_big} vs {d_ref}"
        );
    }
}
