//! The characterization job queue: enumerate → execute → assemble.
//!
//! Characterization cost is dominated by thousands of *independent*
//! transient analyses. Rather than interleaving simulation with table
//! construction, each model layer first **enumerates** its grid as plain
//! [`SimJob`] values, the whole batch is **executed** — sequentially or by a
//! pool of scoped worker threads pulling from an atomic work queue — and the
//! tables are then **assembled** from the outcomes in job order.
//!
//! Because assembly consumes outcomes strictly by job index, the resulting
//! model is byte-identical regardless of worker count or scheduling: thread
//! interleaving decides only *when* a slot is filled, never *what* ends up
//! in it. Errors keep the same determinism — assembly surfaces the first
//! failed job in index order.

use crate::characterize::Simulator;
use crate::error::ModelError;
use crate::measure::{InputEvent, Scenario};
use proxim_numeric::pwl::Edge;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The stimulus of one independent characterization transient.
#[derive(Debug, Clone)]
pub enum Stimulus {
    /// A same-direction switching scenario measured through
    /// [`Simulator::simulate`]: delay referenced to `events[0]`, the
    /// `V_il`–`V_ih` output transition time, and (for single-input table
    /// rows) the wide 5–95 % edge time feeding the tail factor.
    Events {
        /// The switching inputs; the delay is measured from `events[0]`.
        events: Vec<InputEvent>,
        /// Output load override; `None` runs at the simulator's reference
        /// load (the NLDM surface sweeps this axis).
        c_load: Option<f64>,
        /// Whether to also measure the 5–95 % edge time.
        measure_wide: bool,
    },
    /// A causer/blocker glitch scenario measuring the output extremum (§6).
    Glitch {
        /// The causer's resolved sensitization (stable levels, output edge).
        scenario: Scenario,
        /// The causer event (drives the output transition).
        causer: InputEvent,
        /// The blocker event (switches the opposite way).
        blocker: InputEvent,
    },
}

/// One independent simulation scenario, ready to execute on any worker.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// What to simulate and measure.
    pub stimulus: Stimulus,
}

impl SimJob {
    /// A same-direction events job at the reference load.
    pub fn events(events: Vec<InputEvent>) -> Self {
        Self {
            stimulus: Stimulus::Events {
                events,
                c_load: None,
                measure_wide: false,
            },
        }
    }

    /// An events job that also measures the wide edge time.
    pub fn events_wide(events: Vec<InputEvent>) -> Self {
        Self {
            stimulus: Stimulus::Events {
                events,
                c_load: None,
                measure_wide: true,
            },
        }
    }

    /// An events job at an explicit output load.
    pub fn events_at_load(events: Vec<InputEvent>, c_load: f64) -> Self {
        Self {
            stimulus: Stimulus::Events {
                events,
                c_load: Some(c_load),
                measure_wide: false,
            },
        }
    }

    /// A glitch job.
    pub fn glitch(scenario: Scenario, causer: InputEvent, blocker: InputEvent) -> Self {
        Self {
            stimulus: Stimulus::Glitch {
                scenario,
                causer,
                blocker,
            },
        }
    }
}

/// The measured result of one executed [`SimJob`].
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Measurements of an [`Stimulus::Events`] job.
    Response {
        /// The output transition direction.
        output_edge: Edge,
        /// Delay from `events[0]`'s threshold crossing, in seconds.
        delay: f64,
        /// Output transition time between `V_il` and `V_ih`, in seconds.
        trans: f64,
        /// The 5–95 % edge time, when requested and measurable.
        wide: Option<f64>,
    },
    /// The output-voltage extremum of a [`Stimulus::Glitch`] job, in volts.
    Peak(f64),
}

impl JobOutcome {
    /// The `(delay, trans)` pair of a response outcome.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is a glitch peak — assembly routing is static,
    /// so a mismatch is a logic bug, not a data error.
    pub fn response(&self) -> (f64, f64) {
        match self {
            Self::Response { delay, trans, .. } => (*delay, *trans),
            Self::Peak(_) => panic!("expected an events response, got a glitch peak"),
        }
    }

    /// The extremum voltage of a glitch outcome.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is an events response.
    pub fn peak(&self) -> f64 {
        match self {
            Self::Peak(v) => *v,
            Self::Response { .. } => panic!("expected a glitch peak, got an events response"),
        }
    }
}

/// Executes one job against the simulator.
fn run_job(sim: &Simulator<'_>, job: &SimJob) -> Result<JobOutcome, ModelError> {
    match &job.stimulus {
        Stimulus::Events {
            events,
            c_load,
            measure_wide,
        } => {
            let pass;
            let s = match c_load {
                Some(c) => {
                    pass = Simulator {
                        c_load: *c,
                        ..sim.clone()
                    };
                    &pass
                }
                None => sim,
            };
            let th = s.thresholds;
            let r = s.simulate(events)?;
            let delay = r.delay_from(0, &th)?;
            let trans = r.transition_time(&th)?;
            let vdd = s.tech.vdd;
            let wide = if *measure_wide {
                r.output
                    .transition_time(0.05 * vdd, 0.95 * vdd, r.output_edge)
            } else {
                None
            };
            Ok(JobOutcome::Response {
                output_edge: r.output_edge,
                delay,
                trans,
                wide,
            })
        }
        Stimulus::Glitch {
            scenario,
            causer,
            blocker,
        } => {
            let v = crate::glitch::simulate_glitch(
                sim,
                scenario,
                *causer,
                *blocker,
                scenario.output_edge,
            )?;
            Ok(JobOutcome::Peak(v))
        }
    }
}

/// Executes a batch of jobs across `threads` workers and returns the
/// outcomes **in job order**.
///
/// Workers pull indices from a shared atomic counter, so load balances
/// dynamically across jobs of very different cost (a glitch transient can
/// run 10× longer than a fast single-input row). Results are written back
/// by index, making the output independent of scheduling.
///
/// `threads == 1` (or a batch of at most one job) runs inline on the caller
/// thread with no pool at all.
pub fn execute_jobs(
    sim: &Simulator<'_>,
    jobs: &[SimJob],
    threads: usize,
) -> Vec<Result<JobOutcome, ModelError>> {
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(|j| run_job(sim, j)).collect();
    }

    let workers = threads.min(jobs.len());
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<JobOutcome, ModelError>>> = vec![None; jobs.len()];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        local.push((i, run_job(sim, &jobs[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("characterization worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job index was claimed by exactly one worker"))
        .collect()
}

/// Scans a span of outcomes and surfaces the first error in job order,
/// otherwise hands back the successful outcomes. This keeps error behavior
/// identical between sequential and parallel runs.
pub fn first_error(
    outcomes: &[Result<JobOutcome, ModelError>],
) -> Result<Vec<&JobOutcome>, ModelError> {
    let mut ok = Vec::with_capacity(outcomes.len());
    for r in outcomes {
        match r {
            Ok(o) => ok.push(o),
            Err(e) => return Err(e.clone()),
        }
    }
    Ok(ok)
}

/// Counters describing one characterization run (satisfying the perf
/// acceptance criteria: cache behavior and simulation volume are observable,
/// not inferred).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CharStats {
    /// Models served from the on-disk cache without simulating.
    pub cache_hits: usize,
    /// Models characterized from scratch (including cache-corruption
    /// fallbacks).
    pub cache_misses: usize,
    /// Transient simulations actually run.
    pub sims_run: usize,
    /// Worker threads used for the batched phases.
    pub threads: usize,
    /// Wall-clock seconds per pipeline phase.
    pub phases: PhaseTimes,
}

/// Wall-clock breakdown of the characterization pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// VTC-family extraction and threshold selection (sequential).
    pub vtc: f64,
    /// Single-input batch: enumerate + execute + assemble.
    pub singles: f64,
    /// Dual/NLDM/glitch batch: enumerate + execute + assemble.
    pub pairs: f64,
    /// Sequential tail: ramp-stretch calibration and correction terms.
    pub finish: f64,
}

impl PhaseTimes {
    /// Total characterization wall-clock, in seconds.
    pub fn total(&self) -> f64 {
        self.vtc + self.singles + self.pairs + self.finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thresholds::Thresholds;
    use proxim_cells::{Cell, Technology};

    fn env() -> (Cell, Technology) {
        (Cell::nand(2), Technology::demo_5v())
    }

    #[test]
    fn parallel_execution_matches_sequential_bitwise() {
        let (cell, tech) = env();
        let sim = Simulator::new(&cell, &tech, Thresholds::new(1.2, 3.4, 5.0), 100e-15, 0.1);
        let jobs: Vec<SimJob> = [100e-12, 300e-12, 900e-12, 1500e-12]
            .iter()
            .map(|&tau| SimJob::events_wide(vec![InputEvent::new(0, Edge::Rising, 0.0, tau)]))
            .collect();
        let seq = execute_jobs(&sim, &jobs, 1);
        let par = execute_jobs(&sim, &jobs, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            // Bit-exact: the same job runs the same deterministic transient
            // regardless of which thread picks it up.
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn errors_surface_in_job_order() {
        let bad = Ok(JobOutcome::Peak(1.0));
        let err1 = Err(ModelError::Table("first".into()));
        let err2 = Err(ModelError::Table("second".into()));
        let outcomes = vec![bad, err1, err2];
        match first_error(&outcomes) {
            Err(ModelError::Table(s)) => assert_eq!(s, "first"),
            other => panic!("expected the first error, got {other:?}"),
        }
    }

    #[test]
    fn load_override_changes_the_simulated_load() {
        let (cell, tech) = env();
        let sim = Simulator::new(&cell, &tech, Thresholds::new(1.2, 3.4, 5.0), 100e-15, 0.1);
        let ev = vec![InputEvent::new(0, Edge::Rising, 0.0, 400e-12)];
        let at_ref = run_job(&sim, &SimJob::events(ev.clone())).unwrap();
        let at_big = run_job(&sim, &SimJob::events_at_load(ev, 400e-15)).unwrap();
        let (d_ref, _) = at_ref.response();
        let (d_big, _) = at_big.response();
        assert!(
            d_big > d_ref,
            "larger load must be slower: {d_big} vs {d_ref}"
        );
    }
}
