//! The characterization job queue: enumerate → execute → assemble.
//!
//! Characterization cost is dominated by thousands of *independent*
//! transient analyses. Rather than interleaving simulation with table
//! construction, each model layer first **enumerates** its grid as plain
//! [`SimJob`] values, the whole batch is **executed** — sequentially or by a
//! pool of scoped worker threads pulling from an atomic work queue — and the
//! tables are then **assembled** from the outcomes in job order.
//!
//! Because assembly consumes outcomes strictly by job index, the resulting
//! model is byte-identical regardless of worker count or scheduling: thread
//! interleaving decides only *when* a slot is filled, never *what* ends up
//! in it. Failures keep the same determinism — a failed simulation becomes
//! a typed [`JobOutcome::Failed`] in its own slot, each job runs under
//! [`std::panic::catch_unwind`] supervision so one pathological job cannot
//! poison the pool, and assembly surfaces the first failed job in index
//! order.

use crate::characterize::Simulator;
use crate::error::ModelError;
use crate::measure::{InputEvent, Scenario};
use proxim_numeric::pwl::Edge;
use proxim_spice::AnalysisError;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The stimulus of one independent characterization transient.
#[derive(Debug, Clone)]
pub enum Stimulus {
    /// A same-direction switching scenario measured through
    /// [`Simulator::simulate`]: delay referenced to `events[0]`, the
    /// `V_il`–`V_ih` output transition time, and (for single-input table
    /// rows) the wide 5–95 % edge time feeding the tail factor.
    Events {
        /// The switching inputs; the delay is measured from `events[0]`.
        events: Vec<InputEvent>,
        /// Output load override; `None` runs at the simulator's reference
        /// load (the NLDM surface sweeps this axis).
        c_load: Option<f64>,
        /// Whether to also measure the 5–95 % edge time.
        measure_wide: bool,
    },
    /// A causer/blocker glitch scenario measuring the output extremum (§6).
    Glitch {
        /// The causer's resolved sensitization (stable levels, output edge).
        scenario: Scenario,
        /// The causer event (drives the output transition).
        causer: InputEvent,
        /// The blocker event (switches the opposite way).
        blocker: InputEvent,
    },
}

/// One independent simulation scenario, ready to execute on any worker.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// What to simulate and measure.
    pub stimulus: Stimulus,
}

impl SimJob {
    /// A same-direction events job at the reference load.
    pub fn events(events: Vec<InputEvent>) -> Self {
        Self {
            stimulus: Stimulus::Events {
                events,
                c_load: None,
                measure_wide: false,
            },
        }
    }

    /// An events job that also measures the wide edge time.
    pub fn events_wide(events: Vec<InputEvent>) -> Self {
        Self {
            stimulus: Stimulus::Events {
                events,
                c_load: None,
                measure_wide: true,
            },
        }
    }

    /// An events job at an explicit output load.
    pub fn events_at_load(events: Vec<InputEvent>, c_load: f64) -> Self {
        Self {
            stimulus: Stimulus::Events {
                events,
                c_load: Some(c_load),
                measure_wide: false,
            },
        }
    }

    /// A glitch job.
    pub fn glitch(scenario: Scenario, causer: InputEvent, blocker: InputEvent) -> Self {
        Self {
            stimulus: Stimulus::Glitch {
                scenario,
                causer,
                blocker,
            },
        }
    }
}

/// The measured result of one executed [`SimJob`].
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Measurements of an [`Stimulus::Events`] job.
    Response {
        /// The output transition direction.
        output_edge: Edge,
        /// Delay from `events[0]`'s threshold crossing, in seconds.
        delay: f64,
        /// Output transition time between `V_il` and `V_ih`, in seconds.
        trans: f64,
        /// The 5–95 % edge time, when requested and measurable.
        wide: Option<f64>,
    },
    /// The output-voltage extremum of a [`Stimulus::Glitch`] job, in volts.
    Peak(f64),
    /// The job did not produce a measurement: the simulation errored, or
    /// the worker supervising it caught a panic. The batch survives — the
    /// failure occupies the job's slot so assembly stays index-ordered.
    Failed {
        /// Index of the failed job within its batch.
        job: usize,
        /// What went wrong.
        reason: ModelError,
    },
}

impl JobOutcome {
    /// The `(delay, trans)` pair of a response outcome.
    ///
    /// # Errors
    ///
    /// A [`Self::Failed`] outcome surfaces its recorded reason; a glitch
    /// peak (a static mis-routing, which deterministic enumeration should
    /// make impossible) surfaces as [`ModelError::Table`].
    pub fn response(&self) -> Result<(f64, f64), ModelError> {
        match self {
            Self::Response { delay, trans, .. } => Ok((*delay, *trans)),
            Self::Failed { reason, .. } => Err(reason.clone()),
            Self::Peak(_) => Err(ModelError::Table(
                "expected an events response, got a glitch peak".into(),
            )),
        }
    }

    /// The extremum voltage of a glitch outcome.
    ///
    /// # Errors
    ///
    /// Mirrors [`Self::response`] with the roles swapped.
    pub fn peak(&self) -> Result<f64, ModelError> {
        match self {
            Self::Peak(v) => Ok(*v),
            Self::Failed { reason, .. } => Err(reason.clone()),
            Self::Response { .. } => Err(ModelError::Table(
                "expected a glitch peak, got an events response".into(),
            )),
        }
    }

    /// The failure reason, if this outcome is a [`Self::Failed`].
    pub fn failure(&self) -> Option<&ModelError> {
        match self {
            Self::Failed { reason, .. } => Some(reason),
            _ => None,
        }
    }
}

/// Executes one job against the simulator, also reporting how many
/// recovery-ladder actions the underlying transient needed.
fn run_job(sim: &Simulator<'_>, job: &SimJob) -> Result<(JobOutcome, usize), ModelError> {
    match &job.stimulus {
        Stimulus::Events {
            events,
            c_load,
            measure_wide,
        } => {
            let pass;
            let s = match c_load {
                Some(c) => {
                    pass = Simulator {
                        c_load: *c,
                        ..sim.clone()
                    };
                    &pass
                }
                None => sim,
            };
            let th = s.thresholds;
            let r = s.simulate(events)?;
            let delay = r.delay_from(0, &th)?;
            let trans = r.transition_time(&th)?;
            let vdd = s.tech.vdd;
            let wide = if *measure_wide {
                r.output
                    .transition_time(0.05 * vdd, 0.95 * vdd, r.output_edge)
            } else {
                None
            };
            Ok((
                JobOutcome::Response {
                    output_edge: r.output_edge,
                    delay,
                    trans,
                    wide,
                },
                r.recoveries,
            ))
        }
        Stimulus::Glitch {
            scenario,
            causer,
            blocker,
        } => {
            let (v, recoveries) = crate::glitch::simulate_glitch(
                sim,
                scenario,
                *causer,
                *blocker,
                scenario.output_edge,
            )?;
            Ok((JobOutcome::Peak(v), recoveries))
        }
    }
}

/// Runs one job under panic supervision: a simulation error or a caught
/// panic becomes a typed [`JobOutcome::Failed`] in the job's slot instead of
/// unwinding into (and poisoning) the worker pool.
fn run_supervised(sim: &Simulator<'_>, i: usize, job: &SimJob) -> (JobOutcome, usize) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(sim, job))) {
        Ok(Ok((outcome, recoveries))) => (outcome, recoveries),
        Ok(Err(reason)) => (JobOutcome::Failed { job: i, reason }, 0),
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            let reason = ModelError::Simulation(AnalysisError::Aborted {
                analysis: "characterization job".into(),
                detail: format!("job panicked: {detail}"),
            });
            (JobOutcome::Failed { job: i, reason }, 0)
        }
    }
}

/// The result of executing a batch of jobs: one outcome per job (in job
/// order, failures included) plus batch-level resilience telemetry.
#[derive(Debug, Clone)]
pub struct JobBatch {
    /// One outcome per job, in job order.
    pub outcomes: Vec<JobOutcome>,
    /// Total recovery-ladder actions across all transients in the batch.
    pub recoveries: usize,
    /// Number of [`JobOutcome::Failed`] entries.
    pub failed_jobs: usize,
}

impl JobBatch {
    fn collect(pairs: impl Iterator<Item = (JobOutcome, usize)>) -> Self {
        let mut outcomes = Vec::new();
        let mut recoveries = 0;
        let mut failed_jobs = 0;
        for (o, r) in pairs {
            recoveries += r;
            if matches!(o, JobOutcome::Failed { .. }) {
                failed_jobs += 1;
            }
            outcomes.push(o);
        }
        Self {
            outcomes,
            recoveries,
            failed_jobs,
        }
    }
}

/// Executes a batch of jobs across `threads` workers and returns the
/// outcomes **in job order**.
///
/// Workers pull indices from a shared atomic counter, so load balances
/// dynamically across jobs of very different cost (a glitch transient can
/// run 10× longer than a fast single-input row). Results are written back
/// by index, making the output independent of scheduling.
///
/// Every job runs under [`catch_unwind`](std::panic::catch_unwind)
/// supervision, and a worker thread that dies anyway (a panic outside the
/// supervised region) only loses its own claimed jobs: the batch marks
/// those slots [`JobOutcome::Failed`] and the surviving workers' results
/// are still assembled.
///
/// `threads == 1` (or a batch of at most one job) runs inline on the caller
/// thread with no pool at all.
pub fn execute_jobs(sim: &Simulator<'_>, jobs: &[SimJob], threads: usize) -> JobBatch {
    if threads <= 1 || jobs.len() <= 1 {
        return JobBatch::collect(
            jobs.iter()
                .enumerate()
                .map(|(i, j)| run_supervised(sim, i, j)),
        );
    }

    let workers = threads.min(jobs.len());
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<(JobOutcome, usize)>> = vec![None; jobs.len()];
    let mut worker_panic: Option<String> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        local.push((i, run_supervised(sim, i, &jobs[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (i, r) in local {
                        results[i] = Some(r);
                    }
                }
                Err(payload) => {
                    // The worker died outside job supervision; its claimed
                    // slots stay `None` and are marked failed below.
                    let detail = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    worker_panic.get_or_insert(detail);
                }
            }
        }
    });
    let worker_panic = worker_panic.unwrap_or_else(|| "worker lost".into());
    JobBatch::collect(results.into_iter().enumerate().map(|(i, slot)| {
        slot.unwrap_or_else(|| {
            (
                JobOutcome::Failed {
                    job: i,
                    reason: ModelError::Simulation(AnalysisError::Aborted {
                        analysis: "characterization worker".into(),
                        detail: format!("worker panicked: {worker_panic}"),
                    }),
                },
                0,
            )
        })
    }))
}

/// Scans a span of outcomes and surfaces the first failure in job order,
/// otherwise hands back the outcomes. This keeps error behavior identical
/// between sequential and parallel runs.
///
/// # Errors
///
/// Returns the recorded reason of the first [`JobOutcome::Failed`].
pub fn first_error(outcomes: &[JobOutcome]) -> Result<Vec<&JobOutcome>, ModelError> {
    let mut ok = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        match o.failure() {
            Some(e) => return Err(e.clone()),
            None => ok.push(o),
        }
    }
    Ok(ok)
}

/// Counters describing one characterization run (satisfying the perf and
/// resilience acceptance criteria: cache behavior, simulation volume, and
/// degradation are observable, not inferred).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CharStats {
    /// Models served from the on-disk cache without simulating.
    pub cache_hits: usize,
    /// Models characterized from scratch (including cache-corruption
    /// fallbacks).
    pub cache_misses: usize,
    /// Corrupt cache entries quarantined (renamed aside) before
    /// recharacterizing.
    pub cache_quarantined: usize,
    /// Transient simulations actually run.
    pub sims_run: usize,
    /// Worker threads used for the batched phases.
    pub threads: usize,
    /// Recovery-ladder actions across all transients (damped retries, gmin
    /// continuations, step cuts, run restarts).
    pub recoveries: usize,
    /// Jobs that produced [`JobOutcome::Failed`] instead of a measurement.
    pub failed_jobs: usize,
    /// Model slices dropped (marked degraded) because their jobs failed.
    pub degraded_slices: usize,
    /// Wall-clock seconds per pipeline phase.
    pub phases: PhaseTimes,
}

/// Wall-clock breakdown of the characterization pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// VTC-family extraction and threshold selection (sequential).
    pub vtc: f64,
    /// Single-input batch: enumerate + execute + assemble.
    pub singles: f64,
    /// Dual/NLDM/glitch batch: enumerate + execute + assemble.
    pub pairs: f64,
    /// Sequential tail: ramp-stretch calibration and correction terms.
    pub finish: f64,
}

impl PhaseTimes {
    /// Total characterization wall-clock, in seconds.
    pub fn total(&self) -> f64 {
        self.vtc + self.singles + self.pairs + self.finish
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::thresholds::Thresholds;
    use proxim_cells::{Cell, Technology};

    fn env() -> (Cell, Technology) {
        (Cell::nand(2), Technology::demo_5v())
    }

    #[test]
    fn parallel_execution_matches_sequential_bitwise() {
        let (cell, tech) = env();
        let sim = Simulator::new(&cell, &tech, Thresholds::new(1.2, 3.4, 5.0), 100e-15, 0.1);
        let jobs: Vec<SimJob> = [100e-12, 300e-12, 900e-12, 1500e-12]
            .iter()
            .map(|&tau| SimJob::events_wide(vec![InputEvent::new(0, Edge::Rising, 0.0, tau)]))
            .collect();
        let seq = execute_jobs(&sim, &jobs, 1);
        let par = execute_jobs(&sim, &jobs, 4);
        assert_eq!(seq.outcomes.len(), par.outcomes.len());
        for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
            // Bit-exact: the same job runs the same deterministic transient
            // regardless of which thread picks it up.
            assert_eq!(a, b);
        }
        assert_eq!(seq.recoveries, par.recoveries);
        assert_eq!(seq.failed_jobs, 0);
        assert_eq!(par.failed_jobs, 0);
    }

    #[test]
    fn errors_surface_in_job_order() {
        let outcomes = vec![
            JobOutcome::Peak(1.0),
            JobOutcome::Failed {
                job: 1,
                reason: ModelError::Table("first".into()),
            },
            JobOutcome::Failed {
                job: 2,
                reason: ModelError::Table("second".into()),
            },
        ];
        match first_error(&outcomes) {
            Err(ModelError::Table(s)) => assert_eq!(s, "first"),
            other => panic!("expected the first error, got {other:?}"),
        }
    }

    #[test]
    fn failed_outcomes_surface_through_accessors() {
        let failed = JobOutcome::Failed {
            job: 3,
            reason: ModelError::Table("boom".into()),
        };
        assert_eq!(failed.response(), Err(ModelError::Table("boom".into())));
        assert_eq!(failed.peak(), Err(ModelError::Table("boom".into())));
        assert!(failed.failure().is_some());
        // Mis-routed kinds are typed errors, not panics.
        assert!(JobOutcome::Peak(1.0).response().is_err());
        let resp = JobOutcome::Response {
            output_edge: Edge::Rising,
            delay: 1.0,
            trans: 2.0,
            wide: None,
        };
        assert!(resp.peak().is_err());
        assert_eq!(resp.response().unwrap(), (1.0, 2.0));
        assert!(resp.failure().is_none());
    }

    #[test]
    fn an_unsensitizable_job_fails_without_poisoning_the_batch() {
        let (cell, tech) = env();
        let sim = Simulator::new(&cell, &tech, Thresholds::new(1.2, 3.4, 5.0), 100e-15, 0.1);
        // Opposite-direction events on a NAND are rejected by scenario
        // resolution — a simulation-level failure, not a panic.
        let bad = SimJob::events(vec![
            InputEvent::new(0, Edge::Rising, 0.0, 300e-12),
            InputEvent::new(1, Edge::Falling, 0.0, 300e-12),
        ]);
        let good = SimJob::events(vec![InputEvent::new(0, Edge::Rising, 0.0, 300e-12)]);
        let batch = execute_jobs(&sim, &[bad, good.clone(), good], 2);
        assert_eq!(batch.failed_jobs, 1);
        assert!(batch.outcomes[0].failure().is_some());
        assert!(batch.outcomes[1].failure().is_none());
        assert!(batch.outcomes[2].failure().is_none());
        assert!(first_error(&batch.outcomes).is_err());
    }

    #[test]
    fn load_override_changes_the_simulated_load() {
        let (cell, tech) = env();
        let sim = Simulator::new(&cell, &tech, Thresholds::new(1.2, 3.4, 5.0), 100e-15, 0.1);
        let ev = vec![InputEvent::new(0, Edge::Rising, 0.0, 400e-12)];
        let (at_ref, _) = run_job(&sim, &SimJob::events(ev.clone())).unwrap();
        let (at_big, _) = run_job(&sim, &SimJob::events_at_load(ev, 400e-15)).unwrap();
        let (d_ref, _) = at_ref.response().unwrap();
        let (d_big, _) = at_big.response().unwrap();
        assert!(
            d_big > d_ref,
            "larger load must be slower: {d_big} vs {d_ref}"
        );
    }
}
