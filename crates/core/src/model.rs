//! The characterized proximity model and its query API.
//!
//! [`ProximityModel::characterize`] runs the complete flow of the paper:
//! VTC-family extraction and threshold selection (§2), single-input and
//! dual-input macromodel construction (§3), the simultaneous-step correction
//! term (§4), and optionally the glitch model (§6). The result answers
//! timing queries for arbitrary multi-input switching scenarios via
//! [`ProximityModel::gate_timing`].

use crate::algorithm::{compose, CorrectionTerm};
use crate::characterize::{CharacterizeOptions, Simulator};
use crate::checkpoint::{CheckpointJournal, RunControl};
use crate::dominance::{rank_for_scenario, RankedEvent};
use crate::dual::DualInputModel;
use crate::error::ModelError;
use crate::glitch::GlitchModel;
use crate::jobs::{
    bump, execute_jobs_policy, first_error, metric, record_batch, CharStats, ExecPolicy,
    PhaseTimes, SimJob,
};
use crate::measure::{InputEvent, Scenario};
use crate::nldm::LoadSlewModel;
use crate::single::{edge_as_bool, SingleInputModel};
use crate::thresholds::{extract_vtc_family_cancellable, Thresholds, VtcFamily};
use proxim_cells::{Cell, Technology};
use proxim_numeric::pwl::Edge;
use proxim_obs as obs;
use std::time::Instant;

/// The model's answer for one gate switching scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateTiming {
    /// The input pin the delay is referenced to (the dominant input).
    pub reference_pin: usize,
    /// Propagation delay from that pin's threshold crossing, in seconds.
    pub delay: f64,
    /// Output transition time between `V_il` and `V_ih`, in seconds.
    pub output_transition: f64,
    /// Absolute output arrival time, in seconds.
    pub output_arrival: f64,
    /// The output transition direction.
    pub output_edge: Edge,
    /// Number of inputs that fell inside the proximity window.
    pub inputs_in_window: usize,
    /// `Some` when the answer was produced by a documented fallback
    /// because a characterization slice was degraded (see
    /// [`ProximityModel::degraded_slices`]); `None` for full-fidelity
    /// answers.
    pub degradation: Option<DegradedReason>,
}

/// Why a [`GateTiming`] answer fell back to a lower-fidelity path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReason {
    /// The dual-input proximity table for the dominant pin was degraded
    /// during characterization; the query composed single-input responses
    /// only — the paper's exact behaviour outside the proximity window
    /// (`s_ij >= Δ_i⁽¹⁾`), approximate inside it.
    DualSliceMissing,
    /// The NLDM load–slew surface was degraded; an off-reference-load
    /// query used the fixed-load dimensionless form instead.
    NldmSliceMissing,
}

/// Which kind of characterization slice a [`DegradedSlice`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SliceKind {
    /// A single-input macromodel (§3).
    Single,
    /// A dual-input proximity table (§3).
    Dual,
    /// An NLDM-style load–slew surface.
    LoadSlew,
    /// A glitch peak table (§6).
    Glitch,
    /// A simultaneous-step correction term (§4).
    Correction,
}

/// Provenance for one characterization slice that failed and was dropped
/// instead of failing the whole characterization.
///
/// Only *data-dependent* failures degrade
/// ([`ModelError::is_slice_degradable`]); configuration errors still fail
/// [`ProximityModel::characterize`] outright.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DegradedSlice {
    /// What kind of slice was lost.
    pub kind: SliceKind,
    /// The pin the slice belonged to (the dominant pin for duals, the
    /// causer for glitches, the reference pin for corrections).
    pub pin: usize,
    /// The input edge the slice covered.
    #[serde(with = "edge_as_bool")]
    pub edge: Edge,
    /// The rendered error that killed the slice's jobs.
    pub reason: String,
}

pub(crate) fn eidx(edge: Edge) -> usize {
    match edge {
        Edge::Rising => 0,
        Edge::Falling => 1,
    }
}

/// Books one degraded slice: counter (run + global mirror) and trace event.
fn note_degraded(reg: &obs::Registry, d: &DegradedSlice) {
    bump(reg, metric::DEGRADED_SLICES, 1);
    let _ = obs::event("char.slice.degraded")
        .arg("kind", format_args!("{:?}", d.kind))
        .arg("pin", d.pin)
        .arg("edge", format_args!("{:?}", d.edge));
}

/// A fully characterized temporal-proximity model for one cell.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ProximityModel {
    pub(crate) cell: Cell,
    pub(crate) tech: Technology,
    pub(crate) thresholds: Thresholds,
    pub(crate) vtc: VtcFamily,
    pub(crate) c_ref: f64,
    pub(crate) dv_max: f64,
    /// `singles[pin][input-edge index]`.
    pub(crate) singles: Vec<[Option<SingleInputModel>; 2]>,
    /// `duals[pin][input-edge index]` — the paper's `2n` scheme.
    pub(crate) duals: Vec<[Option<DualInputModel>; 2]>,
    /// Extra pair models when the full matrix was requested (ablation).
    pub(crate) extra_duals: Vec<DualInputModel>,
    /// `corrections[output-edge index]`.
    pub(crate) corrections: [CorrectionTerm; 2],
    /// Calibrated full-swing ramp-stretch factors, by output-edge index
    /// (see [`crate::calibrate`]).
    pub(crate) ramp_stretch: [f64; 2],
    /// Optional NLDM-style load-slew surfaces, `[pin][input-edge index]`.
    pub(crate) nldm: Vec<[Option<LoadSlewModel>; 2]>,
    /// Glitch models, at most one per causer edge.
    pub(crate) glitches: Vec<GlitchModel>,
    /// Slices that failed characterization and were dropped with
    /// provenance instead of failing the whole model.
    pub(crate) degraded: Vec<DegradedSlice>,
}

impl ProximityModel {
    /// Characterizes a cell against the circuit simulator.
    ///
    /// This is the expensive call: it runs the VTC sweeps and every
    /// characterization transient. With [`CharacterizeOptions::default`] on
    /// a 3-input gate expect a few thousand transient analyses.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if any underlying simulation fails or a
    /// table cannot be built.
    pub fn characterize(
        cell: &Cell,
        tech: &Technology,
        opts: &CharacterizeOptions,
    ) -> Result<Self, ModelError> {
        Self::characterize_with_stats(cell, tech, opts).map(|(model, _)| model)
    }

    /// [`ProximityModel::characterize`] with execution telemetry: worker
    /// count, simulation volume, and per-phase wall-clock (see
    /// [`CharStats`]).
    ///
    /// Characterization runs as an enumerate → execute → assemble pipeline
    /// ([`crate::jobs`]): all independent transients of a phase are
    /// enumerated first, executed across `opts.jobs` worker threads, and
    /// assembled by job index — so the result is byte-identical for any
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if any underlying simulation fails or a
    /// table cannot be built.
    pub fn characterize_with_stats(
        cell: &Cell,
        tech: &Technology,
        opts: &CharacterizeOptions,
    ) -> Result<(Self, CharStats), ModelError> {
        Self::characterize_controlled(cell, tech, opts, &RunControl::new())
    }

    /// [`ProximityModel::characterize_with_stats`] under a [`RunControl`]:
    ///
    /// - The control's [`CancelToken`](proxim_spice::CancelToken) is honored
    ///   cooperatively at phase, job, transient-step, and Newton-iteration
    ///   boundaries. A tripped token unwinds with a typed cancellation error
    ///   ([`ModelError::is_cancellation`]) — never a panic, and never a
    ///   half-assembled model.
    /// - When a [`CheckpointConfig`](crate::checkpoint::CheckpointConfig) is
    ///   set, every completed job is journaled as it finishes; re-running
    ///   with the same inputs and journal skips the journaled jobs
    ///   ([`CharStats::checkpoint_skipped`]) and produces the **byte
    ///   identical** model of an uninterrupted run (outcomes are stored
    ///   bit-exactly and assembly is index-ordered).
    ///
    /// # Errors
    ///
    /// As [`ProximityModel::characterize_with_stats`], plus typed
    /// cancellation errors and [`ModelError::Persist`] when the journal
    /// cannot be opened.
    pub fn characterize_controlled(
        cell: &Cell,
        tech: &Technology,
        opts: &CharacterizeOptions,
        control: &RunControl,
    ) -> Result<(Self, CharStats), ModelError> {
        // Arm the flight recorder from the environment (PROXIM_FLIGHT):
        // long characterization runs get the same post-mortem black box as
        // the daemon, without asking for a full trace file.
        obs::flight::init_from_env();
        let journal = match &control.checkpoint {
            Some(cfg) => {
                let key = crate::persist::ModelCache::key(cell, tech, opts)?;
                Some(CheckpointJournal::open(cfg, key)?)
            }
            None => None,
        };
        let result = Self::characterize_inner(cell, tech, opts, &control.cancel, journal.as_ref());
        // The journal is made durable on *every* exit path — success,
        // failure, and cooperative cancellation (a SIGTERM handler that
        // cancels the token gets its final checkpoint flush here).
        if let Some(j) = &journal {
            j.flush();
        }
        // The flight dump rides the same every-exit-path guarantee: if a
        // dump path is armed, the ring's view of this run lands on disk
        // whether the run finished, failed, or was cancelled.
        if let Some(path) = obs::flight::armed_dump_path() {
            let _ = crate::persist::atomic_write(&path, obs::flight::dump().as_bytes());
        }
        result
    }

    fn characterize_inner(
        cell: &Cell,
        tech: &Technology,
        opts: &CharacterizeOptions,
        cancel: &proxim_spice::CancelToken,
        journal: Option<&CheckpointJournal>,
    ) -> Result<(Self, CharStats), ModelError> {
        let threads = opts.worker_threads();
        // Every counter of the run is booked into this registry (and
        // mirrored to the global one when metrics are on); the CharStats
        // returned to the caller is a snapshot view of it.
        let reg = obs::Registry::new();
        let mut phases = PhaseTimes::default();
        let run_span = obs::span("char.characterize")
            .arg("inputs", cell.input_count())
            .arg("threads", threads);
        let n = cell.input_count();

        // Phase 1 (sequential): VTC family and threshold selection (§2).
        let t0 = Instant::now();
        let phase_span = obs::span("char.phase.vtc");
        let vtc = extract_vtc_family_cancellable(cell, tech, opts.c_load, opts.vtc_points, cancel)?;
        let thresholds = vtc.thresholds();
        let sim = Simulator::new(cell, tech, thresholds, opts.c_load, opts.dv_max)
            .with_cancel(cancel.clone());
        drop(phase_span);
        phases.vtc = t0.elapsed().as_secs_f64();

        // Phase 2: single-input macromodels for every sensitizable
        // (pin, edge), as one job batch.
        cancel.check("characterization")?;
        let t0 = Instant::now();
        let phase_span = obs::span("char.phase.singles");
        let mut single_specs: Vec<(usize, Edge)> = Vec::new();
        let mut jobs: Vec<SimJob> = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for pin in 0..n {
            for edge in [Edge::Rising, Edge::Falling] {
                let probe = [InputEvent::new(pin, edge, 0.0, opts.tau_grid[0])];
                if Scenario::resolve(cell, &probe).is_ok() {
                    let js = SingleInputModel::enumerate(pin, edge, &opts.tau_grid)?;
                    spans.push((jobs.len(), js.len()));
                    jobs.extend(js);
                    single_specs.push((pin, edge));
                }
            }
        }
        let policy = ExecPolicy {
            threads,
            batch_lanes: opts.batch_lanes.max(1),
        };
        let batch = execute_jobs_policy(&sim, &jobs, policy, journal.map(|j| (j, "singles")));
        record_batch(&reg, jobs.len(), &batch);
        let mut degraded: Vec<DegradedSlice> = Vec::new();
        let mut singles: Vec<[Option<SingleInputModel>; 2]> = vec![[None, None]; n];
        for (&(pin, edge), &(start, len)) in single_specs.iter().zip(&spans) {
            match first_error(&batch.outcomes[start..start + len]) {
                Ok(ok) => {
                    singles[pin][eidx(edge)] = Some(SingleInputModel::assemble(
                        &sim,
                        pin,
                        edge,
                        &opts.tau_grid,
                        &ok,
                    )?);
                }
                // A degraded single also suppresses every slice that would
                // have been built on top of it: phase 3 skips missing
                // singles.
                Err(e) if e.is_slice_degradable() => {
                    let d = DegradedSlice {
                        kind: SliceKind::Single,
                        pin,
                        edge,
                        reason: e.to_string(),
                    };
                    note_degraded(&reg, &d);
                    degraded.push(d);
                }
                Err(e) => return Err(e),
            }
        }
        drop(phase_span);
        phases.singles = t0.elapsed().as_secs_f64();

        // Phase 3: everything whose grid depends only on the singles —
        // dual-input proximity tables, NLDM load-slew surfaces, and glitch
        // extremum tables — fans out as one combined batch, so the slow
        // glitch transients overlap the cheap dual rows.
        cancel.check("characterization")?;
        let t0 = Instant::now();
        let phase_span = obs::span("char.phase.pairs");
        enum PairSpec {
            Dual {
                pin: usize,
                edge: Edge,
                partner: usize,
            },
            Nldm {
                pin: usize,
                edge: Edge,
            },
            Glitch {
                causer: usize,
                edge: Edge,
                blocker: usize,
            },
        }
        let mut specs: Vec<PairSpec> = Vec::new();
        let mut jobs: Vec<SimJob> = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new();
        if n >= 2 {
            for (pin, pin_singles) in singles.iter().enumerate() {
                for edge in [Edge::Rising, Edge::Falling] {
                    let Some(single) = pin_singles[eidx(edge)].as_ref() else {
                        continue;
                    };
                    // One partner per pin (the paper's 2n scheme), optionally
                    // the full matrix. Enumeration order matches the old
                    // sequential loop, so the first resolvable partner still
                    // lands in the primary slot and the rest in extra_duals.
                    let partners: Vec<usize> = (1..n).map(|k| (pin + k) % n).collect();
                    for &partner in &partners {
                        let probe = [
                            InputEvent::new(pin, edge, 0.0, opts.tau_grid[0]),
                            InputEvent::new(partner, edge, 0.0, opts.tau_grid[0]),
                        ];
                        if Scenario::resolve(cell, &probe).is_err() {
                            continue;
                        }
                        let js = DualInputModel::enumerate(
                            &thresholds,
                            opts.c_load,
                            single,
                            partner,
                            &opts.dual_u_grid,
                            &opts.dual_v_grid,
                            &opts.dual_w_grid,
                        );
                        spans.push((jobs.len(), js.len()));
                        jobs.extend(js);
                        specs.push(PairSpec::Dual { pin, edge, partner });
                        if !opts.full_pair_matrix {
                            break;
                        }
                    }
                }
            }
        }
        if let Some(load_grid) = &opts.load_grid {
            for (pin, pin_singles) in singles.iter().enumerate() {
                for edge in [Edge::Rising, Edge::Falling] {
                    if pin_singles[eidx(edge)].is_none() {
                        continue;
                    }
                    let js = LoadSlewModel::enumerate(pin, edge, &opts.tau_grid, load_grid)?;
                    spans.push((jobs.len(), js.len()));
                    jobs.extend(js);
                    specs.push(PairSpec::Nldm { pin, edge });
                }
            }
        }
        if opts.glitch && n >= 2 {
            let (causer, blocker) = (1usize.min(n - 1), 0usize);
            for edge in [Edge::Rising, Edge::Falling] {
                let Some(single) = singles[causer][eidx(edge)].as_ref() else {
                    continue;
                };
                let js = GlitchModel::enumerate(
                    cell,
                    &thresholds,
                    opts.c_load,
                    single,
                    blocker,
                    &opts.glitch_u_grid,
                    &opts.glitch_v_grid,
                    &opts.glitch_w_grid,
                )?;
                spans.push((jobs.len(), js.len()));
                jobs.extend(js);
                specs.push(PairSpec::Glitch {
                    causer,
                    edge,
                    blocker,
                });
            }
        }
        let batch = execute_jobs_policy(&sim, &jobs, policy, journal.map(|j| (j, "pairs")));
        record_batch(&reg, jobs.len(), &batch);

        let mut duals: Vec<[Option<DualInputModel>; 2]> = vec![[None, None]; n];
        let mut extra_duals = Vec::new();
        let mut nldm: Vec<[Option<LoadSlewModel>; 2]> = if opts.load_grid.is_some() {
            vec![[None, None]; n]
        } else {
            Vec::new()
        };
        let mut glitches = Vec::new();
        for (spec, &(start, len)) in specs.iter().zip(&spans) {
            let (kind, pin, edge) = match *spec {
                PairSpec::Dual { pin, edge, .. } => (SliceKind::Dual, pin, edge),
                PairSpec::Nldm { pin, edge } => (SliceKind::LoadSlew, pin, edge),
                PairSpec::Glitch { causer, edge, .. } => (SliceKind::Glitch, causer, edge),
            };
            let ok = match first_error(&batch.outcomes[start..start + len]) {
                Ok(ok) => ok,
                Err(e) if e.is_slice_degradable() => {
                    let d = DegradedSlice {
                        kind,
                        pin,
                        edge,
                        reason: e.to_string(),
                    };
                    note_degraded(&reg, &d);
                    degraded.push(d);
                    continue;
                }
                Err(e) => return Err(e),
            };
            match *spec {
                PairSpec::Dual { pin, edge, partner } => {
                    let Some(single) = singles[pin][eidx(edge)].as_ref() else {
                        return Err(ModelError::Table(
                            "dual assembly lost its single-input model".into(),
                        ));
                    };
                    let m = DualInputModel::assemble(
                        opts.c_load,
                        single,
                        partner,
                        &opts.dual_u_grid,
                        &opts.dual_v_grid,
                        &opts.dual_w_grid,
                        &ok,
                    )?;
                    if duals[pin][eidx(edge)].is_none() {
                        duals[pin][eidx(edge)] = Some(m);
                    } else {
                        extra_duals.push(m);
                    }
                }
                PairSpec::Nldm { pin, edge } => {
                    let Some(load_grid) = opts.load_grid.as_ref() else {
                        return Err(ModelError::Table(
                            "load-slew assembly lost its load grid".into(),
                        ));
                    };
                    nldm[pin][eidx(edge)] = Some(LoadSlewModel::assemble(
                        pin,
                        edge,
                        &opts.tau_grid,
                        load_grid,
                        &ok,
                    )?);
                }
                PairSpec::Glitch {
                    causer,
                    edge,
                    blocker,
                } => {
                    let Some(single) = singles[causer][eidx(edge)].as_ref() else {
                        return Err(ModelError::Table(
                            "glitch assembly lost its single-input model".into(),
                        ));
                    };
                    glitches.push(GlitchModel::assemble(
                        tech.vdd,
                        single,
                        blocker,
                        &opts.glitch_u_grid,
                        &opts.glitch_v_grid,
                        &opts.glitch_w_grid,
                        &ok,
                    )?);
                }
            }
        }
        drop(phase_span);
        phases.pairs = t0.elapsed().as_secs_f64();

        let mut model = Self {
            cell: cell.clone(),
            tech: tech.clone(),
            thresholds,
            vtc,
            c_ref: opts.c_load,
            dv_max: opts.dv_max,
            singles,
            duals,
            extra_duals,
            corrections: [CorrectionTerm::default(); 2],
            ramp_stretch: [1.0; 2],
            nldm,
            glitches,
            degraded,
        };

        // Phase 4 (sequential): the two small calibration passes. Each is a
        // handful of sims with data dependencies on the assembled model, so
        // batching buys nothing. (Not checkpointed: re-running them on
        // resume is cheap and deterministic.)
        cancel.check("characterization")?;
        let t0 = Instant::now();
        let phase_span = obs::span("char.phase.finish");

        // Driver-receiver ramp-stretch calibration: a two-stage self-chain
        // per input edge pins down the equivalent full-swing ramp the next
        // stage actually sees (used by netlist timing).
        for input_edge in [Edge::Rising, Edge::Falling] {
            let Some(single_a) = model.singles[0][eidx(input_edge)].as_ref() else {
                continue;
            };
            let out_edge = single_a.output_edge;
            let Some(single_b) = model.singles[0][eidx(out_edge)].as_ref() else {
                continue;
            };
            if let Ok(f) = crate::calibrate::calibrate_stretch(
                cell,
                tech,
                &thresholds,
                input_edge,
                single_a,
                single_b,
                opts.c_load,
                opts.dv_max,
            ) {
                bump(&reg, metric::SIMS_RUN, 3); // the calibration chain's three sims
                model.ramp_stretch[eidx(out_edge)] = f;
            }
        }

        // Correction terms (§4): difference between simulation and the
        // uncorrected composition when near-step signals hit all inputs
        // simultaneously. The fastest characterized τ stands in for the
        // paper's step input so the single-input tables stay in range.
        if n >= 2 {
            let tau_step = opts.tau_grid.iter().copied().fold(f64::INFINITY, f64::min);
            for edge in [Edge::Rising, Edge::Falling] {
                let events: Vec<InputEvent> = (0..n)
                    .map(|p| InputEvent::new(p, edge, 0.0, tau_step))
                    .collect();
                if Scenario::resolve(cell, &events).is_err() {
                    continue;
                }
                let model_t = match model.gate_timing_opts(&events, opts.c_load, false) {
                    Ok(t) => t,
                    Err(_) => continue,
                };
                let Some(k_ref) = events.iter().position(|e| e.pin == model_t.reference_pin) else {
                    return Err(ModelError::Table(
                        "correction reference pin is not among the step events".into(),
                    ));
                };
                let term = (|| -> Result<CorrectionTerm, ModelError> {
                    let r = sim.simulate(&events)?;
                    let d_sim = r.delay_from(k_ref, &thresholds)?;
                    let t_sim = r.transition_time(&thresholds)?;
                    Ok(CorrectionTerm {
                        delay: d_sim - model_t.delay,
                        trans: t_sim - model_t.output_transition,
                    })
                })();
                bump(&reg, metric::SIMS_RUN, 1);
                match term {
                    Ok(term) => {
                        model.corrections[eidx(model_t.output_edge)] = term;
                    }
                    // A lost correction degrades the slice to the
                    // uncorrected composition (the zero default term).
                    Err(e) if e.is_slice_degradable() => {
                        let d = DegradedSlice {
                            kind: SliceKind::Correction,
                            pin: model_t.reference_pin,
                            edge,
                            reason: e.to_string(),
                        };
                        note_degraded(&reg, &d);
                        model.degraded.push(d);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        drop(phase_span);
        phases.finish = t0.elapsed().as_secs_f64();

        // A cancellation that raced the sequential tail (where some errors
        // are deliberately swallowed into fallbacks) still fails typed.
        cancel.check("characterization")?;

        // Post-assembly physics audit (§2 positivity, §3 asymptotes,
        // monotonicity, outlier scan). Telemetry only: findings are counted
        // into the run stats but never fail the characterization — a
        // degraded-but-announced model beats no model, and callers that
        // want enforcement run `audit()`/`audit_and_repair()` themselves.
        // Booked into the run registry directly; `audit()` already mirrors
        // the count into the global registry when metrics are enabled.
        let audit_report = model.audit(&crate::audit::AuditOptions::default());
        reg.counter(metric::AUDIT_FINDINGS)
            .add(audit_report.len() as u64);

        // The caller's stats are a snapshot view of the run registry, not a
        // separately maintained set of counters — so they cannot drift from
        // what the pipeline actually recorded.
        let mut stats = CharStats::from_registry(&reg.snapshot());
        stats.threads = threads;
        stats.phases = phases;
        if stats.degraded_slices != model.degraded.len() {
            return Err(ModelError::Table(format!(
                "degraded-slice accounting out of balance: {} counted vs {} recorded",
                stats.degraded_slices,
                model.degraded.len()
            )));
        }
        if let Some(detail) = stats.invariant_violation() {
            return Err(ModelError::Table(detail));
        }
        drop(
            run_span
                .arg("sims_run", stats.sims_run)
                .arg("recoveries", stats.recoveries)
                .arg("failed_jobs", stats.failed_jobs)
                .arg("degraded_slices", stats.degraded_slices),
        );

        Ok((model, stats))
    }

    /// Computes the gate timing for a multi-input switching scenario at the
    /// characterized reference load, with the correction term applied.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuery`] for empty/mixed-edge scenarios
    /// or pins without characterized models.
    pub fn gate_timing(&self, events: &[InputEvent]) -> Result<GateTiming, ModelError> {
        self.gate_timing_opts(events, self.c_ref, true)
    }

    /// [`ProximityModel::gate_timing`] at an explicit output load.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ProximityModel::gate_timing`].
    pub fn gate_timing_at_load(
        &self,
        events: &[InputEvent],
        c_load: f64,
    ) -> Result<GateTiming, ModelError> {
        self.gate_timing_opts(events, c_load, true)
    }

    /// Full-control variant: explicit load and correction toggle (the
    /// correction ablation of DESIGN.md).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuery`] for empty or mixed-edge
    /// scenarios, or when a switching pin has no characterized model.
    pub fn gate_timing_opts(
        &self,
        events: &[InputEvent],
        c_load: f64,
        use_correction: bool,
    ) -> Result<GateTiming, ModelError> {
        let scenario = Scenario::resolve(&self.cell, events)?;
        self.gate_timing_scenario(events, &scenario, c_load, use_correction)
    }

    /// Gate timing with *known* stable-pin levels, as in netlist timing
    /// where non-switching pins carry actual circuit values (see
    /// [`Scenario::from_levels`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuery`] if the output does not flip
    /// under the given levels, edges are mixed, or models are missing.
    pub fn gate_timing_with_levels(
        &self,
        events: &[InputEvent],
        stable_levels: &[Option<bool>],
        c_load: f64,
    ) -> Result<GateTiming, ModelError> {
        let scenario = Scenario::from_levels(&self.cell, events, stable_levels)?;
        self.gate_timing_scenario(events, &scenario, c_load, true)
    }

    fn gate_timing_scenario(
        &self,
        events: &[InputEvent],
        scenario: &Scenario,
        c_load: f64,
        use_correction: bool,
    ) -> Result<GateTiming, ModelError> {
        let edge = events[0].edge();
        if events.iter().any(|e| e.edge() != edge) {
            return Err(ModelError::InvalidQuery {
                detail: "proximity timing requires all inputs to switch the same way \
                         (use the glitch model for opposing transitions)"
                    .into(),
            });
        }

        // Near the reference load, the paper's dimensionless tables are
        // exact at their characterization points; far from it, the
        // fixed-load form drops the junction-to-load group and the NLDM
        // surfaces (when characterized) are the accurate source of
        // Δ⁽¹⁾/τ⁽¹⁾ (see crate::nldm).
        let off_reference = !(0.7..=1.4).contains(&(c_load / self.c_ref));
        let mut degradation: Option<DegradedReason> = None;
        let mut ranked = Vec::with_capacity(events.len());
        for e in events {
            let single =
                self.single_model(e.pin, edge)
                    .ok_or_else(|| ModelError::InvalidQuery {
                        detail: format!("no single-input model for pin {} {edge}", e.pin),
                    })?;
            let tau = e.transition_time();
            let (d1, t1) = match self.load_slew_model(e.pin, edge) {
                Some(nldm) if off_reference => {
                    (nldm.delay(tau, c_load), nldm.transition(tau, c_load))
                }
                _ => {
                    // An off-reference query that *would* have used a
                    // load–slew surface lost it to degradation: fall back
                    // to the fixed-load dimensionless form, with
                    // provenance.
                    if off_reference && self.slice_degraded(SliceKind::LoadSlew, e.pin, edge) {
                        degradation = Some(DegradedReason::NldmSliceMissing);
                    }
                    (single.delay(tau, c_load), single.transition(tau, c_load))
                }
            };
            ranked.push(RankedEvent {
                event: *e,
                arrival: e.arrival(&self.thresholds),
                d1,
                t1,
            });
        }
        // Conduction style: rank 1 (first arrival flips the output) is the
        // paper's OR-like case; higher ranks gate the output on later
        // arrivals (AND-like) and rank accordingly.
        let causing = crate::measure::causing_rank(&self.cell, events, scenario, &self.thresholds)?;
        let or_like = causing.rank == 1;
        let ranked = rank_for_scenario(ranked, causing.rank);

        // Pair-aware lookup: prefer an exact (dominant, partner) model when
        // the full matrix was characterized, fall back to the paper's 2n
        // scheme (one model per dominant pin). When the miss is a *degraded*
        // dual (not a structurally absent one, e.g. an inverter), record it:
        // `compose` then degenerates to the single-input response — exact
        // outside the proximity window, the documented fallback inside it.
        let dual_degraded = std::cell::Cell::new(false);
        let lookup = |dom: usize, partner: usize| -> Option<&DualInputModel> {
            let m = self
                .dual_model_for_pair(dom, partner, edge)
                .or_else(|| self.duals.get(dom)?.get(eidx(edge))?.as_ref());
            if m.is_none() && self.slice_degraded(SliceKind::Dual, dom, edge) {
                dual_degraded.set(true);
            }
            m
        };
        let correction = self.corrections[eidx(scenario.output_edge)];
        let outcome = compose(&ranked, &lookup, correction, use_correction, or_like);
        if dual_degraded.get() {
            degradation = Some(DegradedReason::DualSliceMissing);
        }

        Ok(GateTiming {
            reference_pin: outcome.reference_pin,
            delay: outcome.delay,
            output_transition: outcome.trans,
            output_arrival: outcome.output_arrival,
            output_edge: scenario.output_edge,
            inputs_in_window: outcome.inputs_in_window,
            degradation,
        })
    }

    /// The cell this model describes.
    pub fn cell(&self) -> &Cell {
        &self.cell
    }

    /// The technology the model was characterized in.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// The selected measurement thresholds.
    pub fn thresholds(&self) -> &Thresholds {
        &self.thresholds
    }

    /// The extracted VTC family (for reporting, as in Fig. 2-1).
    pub fn vtc_family(&self) -> &VtcFamily {
        &self.vtc
    }

    /// The load the model was characterized at.
    pub fn reference_load(&self) -> f64 {
        self.c_ref
    }

    /// The transient accuracy knob used during characterization.
    pub fn dv_max(&self) -> f64 {
        self.dv_max
    }

    /// The single-input macromodel for `(pin, input edge)`, if characterized.
    pub fn single_model(&self, pin: usize, edge: Edge) -> Option<&SingleInputModel> {
        self.singles.get(pin)?.get(eidx(edge))?.as_ref()
    }

    /// The NLDM-style load-slew surface for `(pin, input edge)`, when the
    /// characterization requested one (`CharacterizeOptions::load_grid`).
    pub fn load_slew_model(&self, pin: usize, edge: Edge) -> Option<&LoadSlewModel> {
        self.nldm.get(pin)?.get(eidx(edge))?.as_ref()
    }

    /// The dual-input macromodel whose dominant pin is `pin`, if
    /// characterized.
    pub fn dual_model(&self, pin: usize, edge: Edge) -> Option<&DualInputModel> {
        self.duals.get(pin)?.get(eidx(edge))?.as_ref()
    }

    /// The characterized correction term for an output edge.
    pub fn correction(&self, output_edge: Edge) -> CorrectionTerm {
        self.corrections[eidx(output_edge)]
    }

    /// The glitch model whose causer switches with `causer_edge`, if
    /// characterized.
    pub fn glitch_model(&self, causer_edge: Edge) -> Option<&GlitchModel> {
        self.glitches.iter().find(|g| g.causer_edge == causer_edge)
    }

    /// The calibrated full-swing ramp-stretch factor for outputs
    /// transitioning with `output_edge`: how much longer the equivalent
    /// linear ramp seen by a downstream stage is than the linear
    /// extrapolation of the threshold-to-threshold transition time
    /// (driver-receiver calibrated; see [`crate::calibrate`]). 1.0 when the
    /// calibration chain could not be built.
    pub fn tail_factor(&self, output_edge: Edge) -> f64 {
        self.ramp_stretch[eidx(output_edge)]
    }

    /// The mean measured 5-95 % edge tail factor for outputs transitioning
    /// with `output_edge` (see [`SingleInputModel::tail_factor`]) — the
    /// physical upper bound on [`ProximityModel::tail_factor`].
    pub fn measured_tail_factor(&self, output_edge: Edge) -> f64 {
        let factors: Vec<f64> = self
            .singles
            .iter()
            .flatten()
            .flatten()
            .filter(|m| m.output_edge == output_edge)
            .map(|m| m.tail_factor())
            .collect();
        if factors.is_empty() {
            1.0
        } else {
            factors.iter().sum::<f64>() / factors.len() as f64
        }
    }

    /// Slices that failed characterization with a data-dependent error and
    /// were dropped with provenance instead of failing the whole model.
    pub fn degraded_slices(&self) -> &[DegradedSlice] {
        &self.degraded
    }

    /// Whether any characterization slice was degraded.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }

    /// Whether a specific `(kind, pin, edge)` slice was degraded.
    fn slice_degraded(&self, kind: SliceKind, pin: usize, edge: Edge) -> bool {
        self.degraded
            .iter()
            .any(|d| d.kind == kind && d.pin == pin && d.edge == edge)
    }

    /// Extra dual models characterized under the full-matrix option.
    pub fn extra_dual_models(&self) -> &[DualInputModel] {
        &self.extra_duals
    }

    /// The exact-pair dual model for `(dominant, partner)`, if the full
    /// matrix was characterized (checks the primary slot and the extras).
    pub fn dual_model_for_pair(
        &self,
        dominant: usize,
        partner: usize,
        edge: Edge,
    ) -> Option<&DualInputModel> {
        if self.extra_duals.is_empty() {
            return None;
        }
        if let Some(m) = self.duals.get(dominant)?.get(eidx(edge))?.as_ref() {
            if m.partner == partner {
                return Some(m);
            }
        }
        self.extra_duals
            .iter()
            .find(|m| m.pin == dominant && m.partner == partner && m.input_edge == edge)
    }

    /// Total stored table entries across all macromodels — the storage cost
    /// this model actually pays (Fig. 4-2 accounting).
    pub fn table_entries(&self) -> usize {
        let s: usize = self
            .singles
            .iter()
            .flatten()
            .flatten()
            .map(|m| m.table_len())
            .sum();
        let d: usize = self
            .duals
            .iter()
            .flatten()
            .flatten()
            .map(|m| m.table_len())
            .sum();
        let x: usize = self.extra_duals.iter().map(|m| m.table_len()).sum();
        let g: usize = self.glitches.iter().map(|m| m.table_len()).sum();
        let l: usize = self
            .nldm
            .iter()
            .flatten()
            .flatten()
            .map(|m| m.table_len())
            .sum();
        s + d + x + g + l
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn quick_model() -> ProximityModel {
        let tech = Technology::demo_5v();
        let cell = Cell::nand(2);
        ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast()).unwrap()
    }

    #[test]
    fn parallel_characterization_is_byte_identical_to_sequential() {
        // Reduced opts with every job kind enabled: singles, duals, the
        // load–slew surface, and glitch peaks all go through the batched
        // executor, so this covers the whole enumerate → execute → assemble
        // pipeline, not just the cheap phases.
        let tech = Technology::demo_5v();
        let cell = Cell::nand(2);
        let base = CharacterizeOptions {
            glitch: true,
            load_grid: Some(proxim_numeric::grid::logspace(20e-15, 200e-15, 2)),
            ..CharacterizeOptions::fast()
        };

        let seq = CharacterizeOptions {
            jobs: 1,
            ..base.clone()
        };
        let par = CharacterizeOptions { jobs: 4, ..base };
        let m1 = ProximityModel::characterize(&cell, &tech, &seq).unwrap();
        let m4 = ProximityModel::characterize(&cell, &tech, &par).unwrap();
        assert_eq!(
            m1.to_json().unwrap(),
            m4.to_json().unwrap(),
            "jobs = 4 must assemble the exact bytes jobs = 1 produces"
        );
    }

    #[test]
    fn characterize_with_stats_counts_work_and_phases() {
        let tech = Technology::demo_5v();
        let cell = Cell::nand(2);
        let opts = CharacterizeOptions {
            jobs: 2,
            ..CharacterizeOptions::fast()
        };
        let (_, stats) = ProximityModel::characterize_with_stats(&cell, &tech, &opts).unwrap();
        assert!(
            stats.sims_run > 0,
            "characterization must count its transients"
        );
        assert_eq!(stats.threads, 2);
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 0));
        let p = stats.phases;
        assert!(p.vtc > 0.0 && p.singles > 0.0 && p.pairs > 0.0 && p.finish > 0.0);
        assert!((p.total() - (p.vtc + p.singles + p.pairs + p.finish)).abs() < 1e-12);
    }

    #[test]
    fn characterized_model_has_all_parts() {
        let m = quick_model();
        for pin in 0..2 {
            for edge in [Edge::Rising, Edge::Falling] {
                assert!(m.single_model(pin, edge).is_some(), "single {pin} {edge}");
                assert!(m.dual_model(pin, edge).is_some(), "dual {pin} {edge}");
            }
        }
        assert!(m.table_entries() > 0);
        // NAND thresholds: V_il below mid-rail, V_ih above.
        let th = m.thresholds();
        assert!(th.v_il < 2.5 && th.v_ih > 2.5, "{th:?}");
    }

    #[test]
    fn single_event_matches_single_model() {
        let m = quick_model();
        let e = InputEvent::new(0, Edge::Rising, 0.0, 400e-12);
        let t = m.gate_timing(&[e]).unwrap();
        let single = m.single_model(0, Edge::Rising).unwrap();
        assert!((t.delay - single.delay(400e-12, m.reference_load())).abs() < 1e-18);
        assert_eq!(t.output_edge, Edge::Falling);
        assert_eq!(t.inputs_in_window, 1);
    }

    #[test]
    fn far_separation_falling_degenerates_to_dominant_single() {
        // OR-like (falling inputs): a partner arriving far outside the
        // proximity window has exactly no effect.
        let m = quick_model();
        let events = [
            InputEvent::new(0, Edge::Falling, 0.0, 400e-12),
            InputEvent::new(1, Edge::Falling, 50e-9, 400e-12),
        ];
        let t = m.gate_timing(&events).unwrap();
        let alone = m.gate_timing(&[events[0]]).unwrap();
        assert_eq!(t.inputs_in_window, 1);
        assert_eq!(t.reference_pin, 0);
        assert!((t.delay - alone.delay).abs() < 1e-15);
    }

    #[test]
    fn far_separation_rising_references_the_late_input() {
        // AND-like (rising inputs): the output is gated by the last-arriving
        // input; with 50 ns of separation the early partner is fully on and
        // the timing approaches the late input's single-input response.
        let m = quick_model();
        let events = [
            InputEvent::new(0, Edge::Rising, 0.0, 400e-12),
            InputEvent::new(1, Edge::Rising, 50e-9, 400e-12),
        ];
        let t = m.gate_timing(&events).unwrap();
        assert_eq!(t.reference_pin, 1, "late riser is the reference");
        let alone = m.gate_timing(&[events[1]]).unwrap();
        let rel = (t.output_arrival - 50e-9 - alone.delay - events[1].arrival(m.thresholds())
            + 50e-9)
            .abs()
            / alone.delay;
        // Table-corner clamping leaves a small residual; 10% is ample.
        assert!(rel < 0.10, "relative deviation {rel}");
    }

    #[test]
    fn model_tracks_simulation_for_simultaneous_inputs() {
        let m = quick_model();
        let tech = Technology::demo_5v();
        let cell = Cell::nand(2);
        let sim = Simulator::new(&cell, &tech, *m.thresholds(), m.reference_load(), 0.08);
        let events = [
            InputEvent::new(0, Edge::Rising, 0.0, 500e-12),
            InputEvent::new(1, Edge::Rising, 0.0, 500e-12),
        ];
        let predicted = m.gate_timing(&events).unwrap();
        let r = sim.simulate(&events).unwrap();
        let k = events
            .iter()
            .position(|e| e.pin == predicted.reference_pin)
            .unwrap();
        let measured = r.delay_from(k, m.thresholds()).unwrap();
        let err = (predicted.delay - measured).abs() / measured;
        assert!(
            err < 0.10,
            "model {} vs sim {} ({}% error)",
            predicted.delay,
            measured,
            err * 100.0
        );
    }

    #[test]
    fn mixed_edges_are_rejected() {
        let m = quick_model();
        let events = [
            InputEvent::new(0, Edge::Rising, 0.0, 400e-12),
            InputEvent::new(1, Edge::Falling, 0.0, 400e-12),
        ];
        assert!(matches!(
            m.gate_timing(&events),
            Err(ModelError::InvalidQuery { .. })
        ));
    }

    #[test]
    fn delay_positive_across_wild_scenarios() {
        // The §2 property: with min-V_il / max-V_ih thresholds, delay is
        // positive for any separations and transition times.
        let m = quick_model();
        for &(s, tau0, tau1) in &[
            (0.0, 100e-12, 1500e-12),
            (-400e-12, 1500e-12, 100e-12),
            (300e-12, 800e-12, 800e-12),
            (-1000e-12, 200e-12, 1900e-12),
        ] {
            for edge in [Edge::Rising, Edge::Falling] {
                let events = [
                    InputEvent::new(0, edge, 0.0, tau0),
                    InputEvent::new(1, edge, s, tau1),
                ];
                let t = m.gate_timing(&events).unwrap();
                assert!(
                    t.delay > 0.0,
                    "negative delay for s={s} tau=({tau0},{tau1}) {edge}: {}",
                    t.delay
                );
                assert!(t.output_transition > 0.0);
            }
        }
    }

    #[test]
    fn inverter_characterizes_without_duals() {
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        let m = ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast()).unwrap();
        assert!(m.single_model(0, Edge::Rising).is_some());
        assert!(m.dual_model(0, Edge::Rising).is_none());
        let t = m
            .gate_timing(&[InputEvent::new(0, Edge::Rising, 0.0, 300e-12)])
            .unwrap();
        assert!(t.delay > 0.0);
    }
}
