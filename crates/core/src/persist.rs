//! Model persistence.
//!
//! Characterization costs thousands of transient analyses; the resulting
//! [`ProximityModel`] is plain data (tables, thresholds, VTC curves) and is
//! serialized to JSON so a library can be characterized once and shipped —
//! the moral equivalent of a `.lib` file in a conventional flow.

use crate::error::ModelError;
use crate::model::ProximityModel;
use std::fs;
use std::path::Path;

impl ProximityModel {
    /// Serializes the model to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Persist`] if serialization fails (it cannot for
    /// a well-formed model; the variant exists for forward compatibility).
    pub fn to_json(&self) -> Result<String, ModelError> {
        serde_json::to_string(self).map_err(|e| ModelError::Persist { detail: e.to_string() })
    }

    /// Deserializes a model from JSON produced by [`ProximityModel::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Persist`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, ModelError> {
        serde_json::from_str(text).map_err(|e| ModelError::Persist { detail: e.to_string() })
    }

    /// Writes the model to a file.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Persist`] on serialization or I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelError> {
        fs::write(path.as_ref(), self.to_json()?)
            .map_err(|e| ModelError::Persist { detail: e.to_string() })
    }

    /// Loads a model from a file written by [`ProximityModel::save`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Persist`] on I/O or parse failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        let text = fs::read_to_string(path.as_ref())
            .map_err(|e| ModelError::Persist { detail: e.to_string() })?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::CharacterizeOptions;
    use crate::measure::InputEvent;
    use proxim_cells::{Cell, Technology};
    use proxim_numeric::pwl::Edge;

    #[test]
    fn json_roundtrip_preserves_every_answer() {
        let tech = Technology::demo_5v();
        let cell = Cell::nand(2);
        let opts = CharacterizeOptions { glitch: true, ..CharacterizeOptions::fast() };
        let model = ProximityModel::characterize(&cell, &tech, &opts).unwrap();

        let json = model.to_json().unwrap();
        let back = ProximityModel::from_json(&json).unwrap();

        assert_eq!(model.thresholds(), back.thresholds());
        assert_eq!(model.table_entries(), back.table_entries());
        for &(s, tau_a, tau_b) in
            &[(0.0, 400e-12, 400e-12), (150e-12, 800e-12, 200e-12), (-300e-12, 120e-12, 1700e-12)]
        {
            for edge in [Edge::Rising, Edge::Falling] {
                let events = [
                    InputEvent::new(0, edge, 0.0, tau_a),
                    InputEvent::new(1, edge, s, tau_b),
                ];
                let a = model.gate_timing(&events).unwrap();
                let b = back.gate_timing(&events).unwrap();
                // JSON float parsing may differ in the last ULP.
                let close = |x: f64, y: f64| (x - y).abs() <= 1e-12 * x.abs().max(y.abs());
                assert!(close(a.delay, b.delay), "{edge} s={s}: {} vs {}", a.delay, b.delay);
                assert!(close(a.output_transition, b.output_transition));
                assert_eq!(a.reference_pin, b.reference_pin);
            }
        }
        // Glitch model survives too.
        assert_eq!(
            model.glitch_model(Edge::Rising).is_some(),
            back.glitch_model(Edge::Rising).is_some()
        );
    }

    #[test]
    fn save_and_load_via_file() {
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        let model =
            ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast()).unwrap();
        let dir = std::env::temp_dir().join("proxim_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inv_model.json");
        model.save(&path).unwrap();
        let back = ProximityModel::load(&path).unwrap();
        assert_eq!(model.thresholds(), back.thresholds());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_reported() {
        let e = ProximityModel::from_json("{not json").unwrap_err();
        assert!(matches!(e, ModelError::Persist { .. }));
        assert!(e.to_string().contains("persist"));
    }

    #[test]
    fn load_missing_file_is_reported() {
        let e = ProximityModel::load("/nonexistent/path/model.json").unwrap_err();
        assert!(matches!(e, ModelError::Persist { .. }));
    }
}
