//! Model persistence and the content-addressed characterization cache.
//!
//! Characterization costs thousands of transient analyses; the resulting
//! [`ProximityModel`] is plain data (tables, thresholds, VTC curves) and is
//! serialized to JSON so a library can be characterized once and shipped —
//! the moral equivalent of a `.lib` file in a conventional flow.
//!
//! [`ModelCache`] sits on top: it keys stored models by a hash of the cell
//! topology, the technology, and every result-affecting characterization
//! option, so repeated [`ModelCache::characterize`] calls for the same
//! inputs are served from disk with zero simulations — and any change to
//! cell, technology, or grids misses and re-characterizes.

use crate::characterize::CharacterizeOptions;
use crate::error::ModelError;
use crate::jobs::{metric, CharStats};
use crate::model::ProximityModel;
use proxim_cells::{Cell, Technology};
use proxim_obs as obs;
use std::fs;
use std::path::{Path, PathBuf};

/// Books one cache lookup outcome: a trace event for the timeline and a
/// process-global counter (the caller's [`CharStats`] keeps its own
/// per-call copy).
fn note_cache(outcome: &str, counter: &str, key: u64) {
    if obs::metrics_enabled() {
        obs::Registry::global().counter(counter).incr();
    }
    let _ = obs::event("char.cache")
        .arg("outcome", outcome)
        .arg("key", format_args!("{key:016x}"));
}

impl ProximityModel {
    /// Serializes the model to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Persist`] if serialization fails (it cannot for
    /// a well-formed model; the variant exists for forward compatibility).
    pub fn to_json(&self) -> Result<String, ModelError> {
        serde_json::to_string(self).map_err(|e| ModelError::Persist {
            detail: e.to_string(),
        })
    }

    /// Deserializes a model from JSON produced by [`ProximityModel::to_json`].
    ///
    /// The input is untrusted: beyond parsing, the text must fit
    /// [`MAX_MODEL_JSON_BYTES`] and the decoded model must pass
    /// [`ProximityModel::validate`] — serde fills table fields directly,
    /// so without the post-parse walk a hand-edited or bit-rotted file
    /// could smuggle NaN/Inf entries or malformed axes into the query
    /// path. (JSON `1e999` parses as `+inf`, so overflow is a validation
    /// concern, not just a syntax one.)
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Persist`] on oversized or malformed input and
    /// [`ModelError::Audit`] when the decoded model fails validation.
    pub fn from_json(text: &str) -> Result<Self, ModelError> {
        if text.len() > MAX_MODEL_JSON_BYTES {
            return Err(ModelError::Persist {
                detail: format!(
                    "model JSON is {} bytes, over the {MAX_MODEL_JSON_BYTES}-byte limit",
                    text.len()
                ),
            });
        }
        let model: Self = serde_json::from_str(text).map_err(|e| ModelError::Persist {
            detail: e.to_string(),
        })?;
        model.validate()?;
        Ok(model)
    }

    /// Writes the model to a file, atomically: the JSON is staged in a
    /// same-directory temp file, fsync'd, and renamed into place, so a
    /// crash mid-save never leaves a half-written model at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Persist`] on serialization or I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelError> {
        atomic_write(path.as_ref(), self.to_json()?.as_bytes())
    }

    /// Loads a model from a file written by [`ProximityModel::save`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Persist`] on I/O or parse failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        let text = fs::read_to_string(path.as_ref()).map_err(|e| ModelError::Persist {
            detail: e.to_string(),
        })?;
        Self::from_json(&text)
    }
}

/// On-disk model format version, part of every cache key. Bump whenever
/// [`ProximityModel`]'s serialized shape changes so stale entries from an
/// older build miss (and re-characterize) instead of failing to parse.
/// v2: models carry the `degraded` slice provenance list.
/// v3: cache entries are wrapped in a checksummed envelope and written
/// atomically (tmp + fsync + rename), so torn entries are detectable.
const MODEL_FORMAT_VERSION: u32 = 3;

/// Upper bound on accepted model-JSON size. A characterized model is a few
/// hundred kilobytes; anything near this limit is not one of ours, and
/// bounding the input keeps a hostile cache entry from ballooning memory
/// before the parser even sees a structural problem.
pub const MAX_MODEL_JSON_BYTES: usize = 64 * 1024 * 1024;

/// FNV-1a 64-bit — tiny, dependency-free, and stable across platforms and
/// runs (unlike `std`'s `DefaultHasher`, whose output is unspecified).
///
/// Public because every checksummed on-disk format in the workspace (cache
/// envelopes, checkpoint journals, the binary model store in
/// `proxim-serve`) uses this same function, so readers and writers cannot
/// drift apart.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn persist_err(e: impl std::fmt::Display) -> ModelError {
    ModelError::Persist {
        detail: e.to_string(),
    }
}

/// Monotonic discriminator for temp-file names, so two writer *threads* in
/// one process never collide (two *processes* are separated by pid).
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Crash-consistent file write: the bytes land in a same-directory temp
/// file, are fsync'd, and are atomically renamed over `path` (then the
/// directory entry is fsync'd, best effort). A reader — or a crash at any
/// instant — sees either the complete old file or the complete new file,
/// never an interleaving or a prefix. Concurrent writers race only at the
/// rename, so the last *complete* write wins intact.
///
/// Public so other persistence layers (the `proxim-serve` binary model
/// store) share the exact same crash-consistency path instead of
/// reimplementing it.
///
/// # Errors
///
/// Returns [`ModelError::Persist`] on any I/O failure; the staged temp
/// file is removed best-effort so failures leave no debris.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), ModelError> {
    use std::io::Write;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| persist_err(format!("unusable path {}", path.display())))?;
    let tmp = path.with_file_name(format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = fs::File::create(&tmp).map_err(persist_err)?;
        f.write_all(bytes).map_err(persist_err)?;
        f.sync_all().map_err(persist_err)?;
        fs::rename(&tmp, path).map_err(persist_err)?;
        // Make the rename itself durable. Failure here (exotic
        // filesystems) costs durability of the *name*, not atomicity.
        if let Some(dir) = dir {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// First-line magic of a v3 cache entry; the per-entry checksum follows.
const ENTRY_MAGIC: &str = "#proxim-cache v3 fnv=";

/// Serializes a cache-entry payload: a checksummed header line, then the
/// model JSON. The checksum covers every byte after the header's newline.
fn envelope(json: &str) -> String {
    format!("{ENTRY_MAGIC}{:016x}\n{json}", fnv1a_64(json.as_bytes()))
}

/// Validates an entry envelope and hands back the model JSON within.
fn open_envelope(text: &str) -> Result<&str, ModelError> {
    let (header, json) = text
        .split_once('\n')
        .ok_or_else(|| persist_err("cache entry has no envelope header"))?;
    let sum = header
        .strip_prefix(ENTRY_MAGIC)
        .ok_or_else(|| persist_err("cache entry is missing the v3 envelope magic"))?;
    let sum = u64::from_str_radix(sum, 16)
        .map_err(|_| persist_err("cache entry has a malformed checksum"))?;
    if fnv1a_64(json.as_bytes()) != sum {
        return Err(persist_err(
            "cache entry checksum mismatch (torn or corrupted write)",
        ));
    }
    Ok(json)
}

/// Writes one cache entry: checksummed envelope, atomic rename.
fn write_entry_text(path: &Path, json: &str) -> Result<(), ModelError> {
    atomic_write(path, envelope(json).as_bytes())
}

/// Reads one cache entry back, verifying the envelope checksum.
fn read_entry_text(path: &Path) -> Result<String, ModelError> {
    let text = fs::read_to_string(path).map_err(persist_err)?;
    open_envelope(&text).map(str::to_owned)
}

/// A content-addressed on-disk cache of characterized models.
///
/// Each entry is one JSON file named by the hex cache key under the cache
/// root. The key hashes the serialized cell, the serialized technology, and
/// [`CharacterizeOptions::cache_key_string`] — everything that affects the
/// characterized result, and nothing that doesn't (the `jobs` worker count
/// is deliberately excluded, since the pipeline is deterministic in it).
#[derive(Debug, Clone)]
pub struct ModelCache {
    root: PathBuf,
}

impl ModelCache {
    /// Opens (and lazily creates) a cache rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The cache key for one `(cell, tech, opts)` triple.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Persist`] if the cell or technology cannot be
    /// serialized.
    pub fn key(
        cell: &Cell,
        tech: &Technology,
        opts: &CharacterizeOptions,
    ) -> Result<u64, ModelError> {
        let cell_json = serde_json::to_string(cell).map_err(|e| ModelError::Persist {
            detail: e.to_string(),
        })?;
        let tech_json = serde_json::to_string(tech).map_err(|e| ModelError::Persist {
            detail: e.to_string(),
        })?;
        let blob = format!(
            "fmt={MODEL_FORMAT_VERSION}\ncell={cell_json}\ntech={tech_json}\nopts={}",
            opts.cache_key_string()
        );
        Ok(fnv1a_64(blob.as_bytes()))
    }

    /// The on-disk path an entry would live at.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.root.join(format!("{key:016x}.json"))
    }

    /// The path a corrupt entry with the given content hash is quarantined
    /// at: the entry path plus the FNV-1a hash of the corrupt bytes and a
    /// `.quarantined` suffix.
    ///
    /// The content hash keeps *repeated* corruption events at the same key
    /// from overwriting each other: each distinct set of corrupt bytes
    /// lands in its own file, so no evidence is lost between post-mortems.
    /// (Identical corrupt bytes dedupe onto one file, which loses nothing.)
    pub fn quarantined_path(&self, key: u64, content_hash: u64) -> PathBuf {
        self.root
            .join(format!("{key:016x}.json.{content_hash:016x}.quarantined"))
    }

    /// Characterizes through the cache: a stored model for the same cell,
    /// technology, and options is loaded with **zero** simulations;
    /// otherwise the model is characterized (honoring `opts.jobs`) and
    /// stored. `stats` accumulates hit/miss counters and, on a miss, the
    /// characterization telemetry.
    ///
    /// Entries are stored in a checksummed envelope and written atomically
    /// (temp file + fsync + rename), so a concurrent writer or a crash
    /// mid-store can never leave interleaved or truncated JSON at the
    /// entry path: readers see a complete old entry, a complete new entry,
    /// or a detectably corrupt one.
    ///
    /// A corrupt (present but unparseable, torn, or checksum-failing)
    /// cache entry counts as a miss: it is quarantined aside — renamed to
    /// `.json.quarantined` for post-mortem, counted in
    /// [`CharStats::cache_quarantined`] — and the model is
    /// re-characterized and stored fresh.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on characterization failure or when the cache
    /// directory cannot be written.
    pub fn characterize(
        &self,
        cell: &Cell,
        tech: &Technology,
        opts: &CharacterizeOptions,
        stats: &mut CharStats,
    ) -> Result<ProximityModel, ModelError> {
        self.characterize_controlled(
            cell,
            tech,
            opts,
            stats,
            &crate::checkpoint::RunControl::new(),
        )
    }

    /// [`ModelCache::characterize`] under a [`RunControl`]: the run honors
    /// the control's cancellation token, and — when a checkpoint journal is
    /// configured — journals completed jobs so an interrupted run resumed
    /// with the same control skips finished work
    /// ([`CharStats::checkpoint_skipped`]) and still produces the exact
    /// bytes of an uninterrupted run.
    ///
    /// [`RunControl`]: crate::checkpoint::RunControl
    ///
    /// # Errors
    ///
    /// As [`ModelCache::characterize`], plus a typed cancellation error
    /// ([`ModelError::is_cancellation`]) when the token trips mid-run.
    pub fn characterize_controlled(
        &self,
        cell: &Cell,
        tech: &Technology,
        opts: &CharacterizeOptions,
        stats: &mut CharStats,
        control: &crate::checkpoint::RunControl,
    ) -> Result<ProximityModel, ModelError> {
        let key = Self::key(cell, tech, opts)?;
        let path = self.entry_path(key);
        match read_entry_text(&path).and_then(|json| ProximityModel::from_json(&json)) {
            Ok(model) => {
                stats.cache_hits += 1;
                note_cache("hit", metric::CACHE_HITS, key);
                return Ok(model);
            }
            // The entry exists but does not parse or fails its checksum:
            // move it aside (best effort) so the bad bytes survive for
            // inspection and cannot be mistaken for a valid entry again.
            // The event is counted unconditionally — a quarantine whose
            // rename failed is still a corrupt entry the operator must
            // hear about, and the content-hashed name keeps repeated
            // corruption at the same key from overwriting earlier
            // evidence.
            Err(_) if path.exists() => {
                let content_hash = fnv1a_64(&fs::read(&path).unwrap_or_default());
                let _ = fs::rename(&path, self.quarantined_path(key, content_hash));
                stats.cache_quarantined += 1;
                note_cache("quarantined", metric::CACHE_QUARANTINED, key);
            }
            Err(_) => {}
        }
        stats.cache_misses += 1;
        note_cache("miss", metric::CACHE_MISSES, key);
        let (model, run) = ProximityModel::characterize_controlled(cell, tech, opts, control)?;
        stats.sims_run += run.sims_run;
        stats.threads = run.threads;
        stats.workers_engaged = stats.workers_engaged.max(run.workers_engaged);
        stats.phases = run.phases;
        stats.enumerated_jobs += run.enumerated_jobs;
        stats.succeeded_jobs += run.succeeded_jobs;
        stats.checkpoint_skipped += run.checkpoint_skipped;
        stats.recoveries += run.recoveries;
        stats.recovery_seconds += run.recovery_seconds;
        stats.failed_jobs += run.failed_jobs;
        stats.degraded_slices += run.degraded_slices;
        stats.audit_findings += run.audit_findings;
        fs::create_dir_all(&self.root).map_err(persist_err)?;
        write_entry_text(&path, &model.to_json()?)?;
        Ok(model)
    }

    /// Deletes every cache entry (the `*.json` files under the root) and
    /// every quarantined entry (`*.json.quarantined`). Other files are left
    /// alone; a missing root is fine.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Persist`] if an entry cannot be removed.
    pub fn wipe(&self) -> Result<(), ModelError> {
        let entries = match fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.extension()
                .is_some_and(|e| e == "json" || e == "quarantined")
            {
                fs::remove_file(&p).map_err(|e| ModelError::Persist {
                    detail: e.to_string(),
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::characterize::CharacterizeOptions;
    use crate::measure::InputEvent;
    use proxim_cells::{Cell, Technology};
    use proxim_numeric::pwl::Edge;

    #[test]
    fn json_roundtrip_preserves_every_answer() {
        let tech = Technology::demo_5v();
        let cell = Cell::nand(2);
        let opts = CharacterizeOptions {
            glitch: true,
            ..CharacterizeOptions::fast()
        };
        let model = ProximityModel::characterize(&cell, &tech, &opts).unwrap();

        let json = model.to_json().unwrap();
        let back = ProximityModel::from_json(&json).unwrap();

        assert_eq!(model.thresholds(), back.thresholds());
        assert_eq!(model.table_entries(), back.table_entries());
        for &(s, tau_a, tau_b) in &[
            (0.0, 400e-12, 400e-12),
            (150e-12, 800e-12, 200e-12),
            (-300e-12, 120e-12, 1700e-12),
        ] {
            for edge in [Edge::Rising, Edge::Falling] {
                let events = [
                    InputEvent::new(0, edge, 0.0, tau_a),
                    InputEvent::new(1, edge, s, tau_b),
                ];
                let a = model.gate_timing(&events).unwrap();
                let b = back.gate_timing(&events).unwrap();
                // JSON float parsing may differ in the last ULP.
                let close = |x: f64, y: f64| (x - y).abs() <= 1e-12 * x.abs().max(y.abs());
                assert!(
                    close(a.delay, b.delay),
                    "{edge} s={s}: {} vs {}",
                    a.delay,
                    b.delay
                );
                assert!(close(a.output_transition, b.output_transition));
                assert_eq!(a.reference_pin, b.reference_pin);
            }
        }
        // Glitch model survives too.
        assert_eq!(
            model.glitch_model(Edge::Rising).is_some(),
            back.glitch_model(Edge::Rising).is_some()
        );
    }

    #[test]
    fn save_and_load_via_file() {
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        let model =
            ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast()).unwrap();
        let dir = std::env::temp_dir().join("proxim_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inv_model.json");
        model.save(&path).unwrap();
        let back = ProximityModel::load(&path).unwrap();
        assert_eq!(model.thresholds(), back.thresholds());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_reported() {
        let e = ProximityModel::from_json("{not json").unwrap_err();
        assert!(matches!(e, ModelError::Persist { .. }));
        assert!(e.to_string().contains("persist"));
    }

    #[test]
    fn load_missing_file_is_reported() {
        let e = ProximityModel::load("/nonexistent/path/model.json").unwrap_err();
        assert!(matches!(e, ModelError::Persist { .. }));
    }

    #[test]
    fn non_finite_values_in_valid_json_are_rejected_as_audit_errors() {
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        let model =
            ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast()).unwrap();
        let json = model.to_json().unwrap();

        // `1e999` is syntactically valid JSON that saturates to +inf when
        // parsed into an f64 — the classic route past a syntax-only loader.
        // The on-load validation must catch it as a typed audit error, not
        // hand back a model that poisons every downstream interpolation.
        let field = "\"c_ref\":";
        let start = json.find(field).expect("c_ref field present") + field.len();
        let end = start + json[start..].find([',', '}']).expect("field terminated");
        let poisoned = format!("{}1e999{}", &json[..start], &json[end..]);
        let e = ProximityModel::from_json(&poisoned).unwrap_err();
        assert!(matches!(e, ModelError::Audit { .. }), "{e}");
        assert!(e.to_string().contains("audit"), "{e}");
    }

    #[test]
    fn oversized_json_is_rejected_before_parsing() {
        // A multi-gigabyte "model" must be refused up front, not parsed.
        let mut huge = String::from("{\"pad\": \"");
        huge.reserve(MAX_MODEL_JSON_BYTES + 16);
        while huge.len() <= MAX_MODEL_JSON_BYTES {
            huge.push_str("xxxxxxxxxxxxxxxx");
        }
        huge.push_str("\"}");
        let e = ProximityModel::from_json(&huge).unwrap_err();
        assert!(matches!(e, ModelError::Persist { .. }), "{e}");
        assert!(e.to_string().contains("limit"), "{e}");
    }

    fn fresh_cache(name: &str) -> ModelCache {
        let dir = std::env::temp_dir().join(name);
        std::fs::remove_dir_all(&dir).ok();
        ModelCache::new(dir)
    }

    #[test]
    fn second_characterize_is_a_pure_cache_hit() {
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        let opts = CharacterizeOptions::fast();
        let cache = fresh_cache("proxim_cache_test_hit");

        let mut first = CharStats::default();
        let m1 = cache.characterize(&cell, &tech, &opts, &mut first).unwrap();
        assert_eq!((first.cache_hits, first.cache_misses), (0, 1));
        assert!(first.sims_run > 0, "a miss must simulate");

        let mut second = CharStats::default();
        let m2 = cache
            .characterize(&cell, &tech, &opts, &mut second)
            .unwrap();
        assert_eq!((second.cache_hits, second.cache_misses), (1, 0));
        assert_eq!(second.sims_run, 0, "a hit must not simulate at all");
        assert_eq!(m1.to_json().unwrap(), m2.to_json().unwrap());

        std::fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn changed_options_miss_but_worker_count_does_not() {
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        let opts = CharacterizeOptions::fast();
        let cache = fresh_cache("proxim_cache_test_miss");

        let mut stats = CharStats::default();
        cache.characterize(&cell, &tech, &opts, &mut stats).unwrap();

        // Any result-affecting knob changes the key.
        let tighter = CharacterizeOptions {
            dv_max: 0.06,
            ..opts.clone()
        };
        let mut stats = CharStats::default();
        cache
            .characterize(&cell, &tech, &tighter, &mut stats)
            .unwrap();
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
        assert!(stats.sims_run > 0);

        // The worker count is not part of the identity: a model
        // characterized at jobs = 1 is a hit when asked for at jobs = 4.
        let parallel = CharacterizeOptions {
            jobs: 4,
            ..opts.clone()
        };
        assert_eq!(
            ModelCache::key(&cell, &tech, &opts).unwrap(),
            ModelCache::key(&cell, &tech, &parallel).unwrap(),
        );
        let mut stats = CharStats::default();
        cache
            .characterize(&cell, &tech, &parallel, &mut stats)
            .unwrap();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 0));

        // A different cell misses.
        let nand = Cell::nand(2);
        assert_ne!(
            ModelCache::key(&cell, &tech, &opts).unwrap(),
            ModelCache::key(&nand, &tech, &opts).unwrap(),
        );

        std::fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_recharacterized() {
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        let opts = CharacterizeOptions::fast();
        let cache = fresh_cache("proxim_cache_test_corrupt");

        let key = ModelCache::key(&cell, &tech, &opts).unwrap();
        let path = cache.entry_path(key);
        std::fs::create_dir_all(cache.root()).unwrap();
        std::fs::write(&path, "{definitely not a model").unwrap();

        let mut stats = CharStats::default();
        cache.characterize(&cell, &tech, &opts, &mut stats).unwrap();
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
        assert_eq!(stats.cache_quarantined, 1);

        // The entry was replaced with a loadable model, and the corrupt
        // bytes were moved aside rather than destroyed.
        let json = read_entry_text(&path).unwrap();
        assert!(ProximityModel::from_json(&json).is_ok());
        let quarantined = cache.quarantined_path(key, fnv1a_64(b"{definitely not a model"));
        assert_eq!(
            std::fs::read_to_string(&quarantined).unwrap(),
            "{definitely not a model"
        );

        // A wipe removes quarantined entries along with live ones.
        cache.wipe().unwrap();
        assert!(!path.exists() && !quarantined.exists());

        std::fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn repeated_corruption_keeps_every_piece_of_evidence() {
        // Regression for the quarantine-name collision: two *different*
        // corrupt payloads at the same key must land in two different
        // quarantine files, and every event must be counted.
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        let opts = CharacterizeOptions::fast();
        let cache = fresh_cache("proxim_cache_test_requarantine");

        let key = ModelCache::key(&cell, &tech, &opts).unwrap();
        let path = cache.entry_path(key);
        std::fs::create_dir_all(cache.root()).unwrap();

        let mut total = 0;
        for corrupt in ["{first corruption", "{second, different corruption"] {
            std::fs::write(&path, corrupt).unwrap();
            let mut stats = CharStats::default();
            cache.characterize(&cell, &tech, &opts, &mut stats).unwrap();
            assert_eq!(stats.cache_quarantined, 1, "every event is counted");
            total += stats.cache_quarantined;
        }
        assert_eq!(total, 2);

        for corrupt in ["{first corruption", "{second, different corruption"] {
            let q = cache.quarantined_path(key, fnv1a_64(corrupt.as_bytes()));
            assert_eq!(
                std::fs::read_to_string(&q).unwrap(),
                corrupt,
                "each corruption keeps its own evidence file"
            );
        }

        std::fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn torn_entry_fails_its_checksum_and_is_quarantined() {
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        let opts = CharacterizeOptions::fast();
        let cache = fresh_cache("proxim_cache_test_torn");

        let mut stats = CharStats::default();
        cache.characterize(&cell, &tech, &opts, &mut stats).unwrap();

        // Simulate a torn write: the envelope header survives but the
        // payload is cut short. The JSON prefix may even still parse as
        // *invalid* JSON — the checksum is what catches it.
        let key = ModelCache::key(&cell, &tech, &opts).unwrap();
        let path = cache.entry_path(key);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(read_entry_text(&path).is_err(), "torn entry must not load");

        let torn: Vec<u8> = bytes[..bytes.len() / 2].to_vec();
        let mut stats = CharStats::default();
        cache.characterize(&cell, &tech, &opts, &mut stats).unwrap();
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
        assert_eq!(stats.cache_quarantined, 1);
        assert!(cache.quarantined_path(key, fnv1a_64(&torn)).exists());

        std::fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn concurrent_writers_never_leave_a_torn_entry() {
        // Two writers hammer the same entry path with *different* complete
        // payloads while a reader polls it. The atomic-rename path must
        // guarantee every successful read is one of the complete payloads —
        // interleaved or truncated JSON would fail the envelope checksum
        // (and this assertion).
        let dir = std::env::temp_dir().join(format!("proxim_cache_race_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entry.json");

        let payload_a = format!("{{\"who\":\"a\",\"pad\":\"{}\"}}", "a".repeat(256 * 1024));
        let payload_b = format!("{{\"who\":\"b\",\"pad\":\"{}\"}}", "b".repeat(256 * 1024));
        write_entry_text(&path, &payload_a).unwrap();

        const ROUNDS: usize = 40;
        std::thread::scope(|scope| {
            for payload in [&payload_a, &payload_b] {
                let path = &path;
                scope.spawn(move || {
                    for _ in 0..ROUNDS {
                        write_entry_text(path, payload).unwrap();
                    }
                });
            }
            let reads: Vec<String> = (0..ROUNDS * 4)
                .map(|_| read_entry_text(&path).expect("entry must never be torn mid-write"))
                .collect();
            for text in reads {
                assert!(
                    text == payload_a || text == payload_b,
                    "read neither complete payload (len {})",
                    text.len()
                );
            }
        });

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wipe_clears_entries_and_forces_recharacterization() {
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        let opts = CharacterizeOptions::fast();
        let cache = fresh_cache("proxim_cache_test_wipe");

        let mut stats = CharStats::default();
        cache.characterize(&cell, &tech, &opts, &mut stats).unwrap();
        cache.wipe().unwrap();

        let mut stats = CharStats::default();
        cache.characterize(&cell, &tech, &opts, &mut stats).unwrap();
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));

        // Wiping a nonexistent root is fine.
        ModelCache::new("/nonexistent/proxim/cache").wipe().unwrap();

        std::fs::remove_dir_all(cache.root()).ok();
    }
}
