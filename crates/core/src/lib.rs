//! Temporal-proximity delay and transition-time macromodels for multi-input
//! gates — the primary contribution of Chandramouli & Sakallah (DAC 1996).
//!
//! When several inputs of a gate switch in close temporal proximity, the
//! gate's propagation delay and output transition time deviate strongly from
//! the single-switching-input values that conventional timing models assume.
//! This crate implements the paper's full modeling stack:
//!
//! - [`thresholds`] (§2): extraction of the `2^n - 1` voltage-transfer
//!   curves of an n-input gate and the min-`V_il` / max-`V_ih` threshold
//!   policy that guarantees positive delays for every input scenario.
//! - [`measure`]: threshold-based delay and transition-time measurement on
//!   simulated waveforms.
//! - [`single`] (§3, eqs. 3.7/3.8): normalized single-input macromodels
//!   `Δ⁽¹⁾/τ = D⁽¹⁾(C_L / (K V_dd τ))`.
//! - [`dual`] (§3, eqs. 3.11/3.12): the three-argument dual-input proximity
//!   macromodels `Δ⁽²⁾/Δ⁽¹⁾ = D⁽²⁾(τ_i/Δ⁽¹⁾, τ_j/Δ⁽¹⁾, s_ij/Δ⁽¹⁾)`.
//! - [`dominance`] (§3): identification of the dominant input — the input
//!   whose single-input output crossing would occur first.
//! - [`algorithm`] (§4, Fig. 4-1): the `ProximityDelay` composition that
//!   folds inputs into an equivalent waveform two at a time, plus the
//!   simultaneous-step correction term.
//! - [`glitch`] (§6): the output-extremum macromodel connecting inertial
//!   delay to the proximity effect.
//! - [`baseline`]: the prior-art comparators — classic single-input-switching
//!   timing and series/parallel collapse to an equivalent inverter.
//! - [`characterize`]: the drivers that build every table by running the
//!   [`proxim_spice`] simulator, mirroring the paper's use of HSPICE.
//! - [`jobs`]: the enumerate → execute → assemble pipeline that fans the
//!   independent characterization transients across worker threads while
//!   keeping the assembled model byte-identical to a sequential run.
//! - [`model`]: [`model::ProximityModel`], the characterized bundle with the
//!   user-facing query API.
//! - [`checkpoint`]: cooperative cancellation/deadlines and the
//!   crash-consistent checkpoint journal that lets an interrupted
//!   characterization resume to a byte-identical model.
//! - [`audit`]: the post-assembly physics-invariant audit (§2 positivity,
//!   §3 asymptotes, monotonicity, outlier detection) and the bounded
//!   self-repair pass that re-simulates suspect grid points or demotes
//!   unrepairable slices to degraded provenance.
//!
//! # Example
//!
//! ```no_run
//! use proxim_cells::{Cell, Technology};
//! use proxim_model::characterize::CharacterizeOptions;
//! use proxim_model::model::ProximityModel;
//! use proxim_model::InputEvent;
//! use proxim_numeric::pwl::Edge;
//!
//! # fn main() -> Result<(), proxim_model::ModelError> {
//! let tech = Technology::demo_5v();
//! let cell = Cell::nand(3);
//! let model = ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::default())?;
//!
//! // Three rising inputs arriving 100 ps apart with 500 ps transition times.
//! let events = vec![
//!     InputEvent::new(0, Edge::Rising, 0.0, 500e-12),
//!     InputEvent::new(1, Edge::Rising, 100e-12, 500e-12),
//!     InputEvent::new(2, Edge::Rising, 200e-12, 500e-12),
//! ];
//! let timing = model.gate_timing(&events)?;
//! println!("delay = {:.1} ps", timing.delay * 1e12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod algorithm;
pub mod analytic;
pub mod audit;
pub mod baseline;
pub mod calibrate;
pub mod characterize;
pub mod checkpoint;
pub mod dominance;
pub mod dual;
pub mod error;
pub mod glitch;
pub mod jobs;
pub mod measure;
pub mod model;
pub mod nldm;
pub mod persist;
pub mod single;
pub mod thresholds;
pub mod validate;

pub use audit::{AuditCheck, AuditFinding, AuditOptions, AuditReport, RepairOutcome, TableRole};
pub use checkpoint::{CheckpointConfig, CheckpointJournal, RunControl};
pub use error::ModelError;
pub use measure::InputEvent;
pub use model::{DegradedReason, DegradedSlice, GateTiming, ProximityModel, SliceKind};
pub use thresholds::{Thresholds, VtcCurve, VtcFamily};
