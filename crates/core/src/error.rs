//! Error type for characterization and model evaluation.

use proxim_spice::AnalysisError;
use std::fmt;

/// The error returned by characterization and model queries.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The underlying circuit simulation failed.
    Simulation(AnalysisError),
    /// A simulated waveform never crossed a measurement threshold.
    MissingCrossing {
        /// What was being measured.
        what: String,
    },
    /// A VTC did not exhibit the expected unity-gain points.
    MalformedVtc {
        /// Which switching combination produced it.
        detail: String,
    },
    /// The model was queried outside its characterized validity.
    InvalidQuery {
        /// Why the query is invalid.
        detail: String,
    },
    /// Characterization produced an inconsistent table.
    Table(String),
    /// Saving or loading a characterized model failed.
    Persist {
        /// The underlying serialization or I/O failure.
        detail: String,
    },
    /// A loaded or audited model violates a structural or physical
    /// invariant (non-finite entries, malformed axes, §2/§3 bound
    /// violations). Distinct from [`Self::Persist`]: the bytes decoded
    /// fine, but the *content* is untrustworthy.
    Audit {
        /// The first violated invariant, with provenance.
        detail: String,
    },
}

impl ModelError {
    /// Whether a characterization slice whose jobs failed with this error
    /// can be *degraded* (dropped with provenance, the rest of the model
    /// kept) instead of failing the whole characterization.
    ///
    /// Simulation failures and missing crossings are data-dependent — one
    /// pathological operating point shouldn't discard thousands of healthy
    /// ones. Cancellations and deadline expiries are *not* degradable: the
    /// user asked the run to stop, so the whole characterization must fail
    /// typed instead of quietly shipping a model with holes. Everything
    /// else (malformed grids, inconsistent tables, bad queries, persistence
    /// problems) points at configuration bugs and still fails fast.
    pub fn is_slice_degradable(&self) -> bool {
        match self {
            Self::Simulation(e) => !e.is_cancellation(),
            Self::MissingCrossing { .. } => true,
            _ => false,
        }
    }

    /// Whether this error is a cooperative stop — a cancellation or a
    /// deadline expiry — rather than a genuine failure.
    pub fn is_cancellation(&self) -> bool {
        matches!(self, Self::Simulation(e) if e.is_cancellation())
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Simulation(e) => write!(f, "simulation failed: {e}"),
            Self::MissingCrossing { what } => {
                write!(
                    f,
                    "waveform never crossed the measurement threshold while {what}"
                )
            }
            Self::MalformedVtc { detail } => write!(f, "malformed VTC: {detail}"),
            Self::InvalidQuery { detail } => write!(f, "invalid model query: {detail}"),
            Self::Table(s) => write!(f, "characterization table error: {s}"),
            Self::Persist { detail } => write!(f, "failed to persist model: {detail}"),
            Self::Audit { detail } => write!(f, "model failed audit: {detail}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AnalysisError> for ModelError {
    fn from(e: AnalysisError) -> Self {
        Self::Simulation(e)
    }
}

impl From<proxim_numeric::interp::BuildTableError> for ModelError {
    fn from(e: proxim_numeric::interp::BuildTableError) -> Self {
        Self::Table(e.to_string())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ModelError::MissingCrossing {
            what: "measuring delay".into(),
        };
        assert!(e.to_string().contains("never crossed"));
        let e = ModelError::InvalidQuery {
            detail: "no switching inputs".into(),
        };
        assert!(e.to_string().contains("invalid model query"));
    }

    #[test]
    fn from_analysis_error_preserves_source() {
        use std::error::Error;
        let inner = AnalysisError::Singular {
            analysis: "op".into(),
        };
        let e = ModelError::from(inner);
        assert!(e.source().is_some());
    }
}
