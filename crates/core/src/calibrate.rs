//! Driver–receiver ramp-stretch calibration.
//!
//! Netlist timing reconstructs each gate's output as a full-swing linear
//! ramp. Real edges are only linear in the middle: the slow tail near the
//! far rail keeps the next stage's complementary network conducting longer,
//! so the best-matching *equivalent* ramp is somewhere between the linear
//! extrapolation of the threshold-to-threshold time (too fast) and the full
//! measured 5–95 % time (too slow — the early part of the tail barely
//! matters). Rather than guessing, the stretch is calibrated per output
//! edge: a two-stage chain of the cell driving itself is simulated at a few
//! input slopes, and the factor is solved so the *modeled* two-stage
//! arrival matches the simulated one.

use crate::error::ModelError;
use crate::measure::{InputEvent, Scenario};
use crate::single::SingleInputModel;
use crate::thresholds::Thresholds;
use proxim_cells::{Cell, Technology};
use proxim_numeric::pwl::Edge;
use proxim_numeric::rootfind::brent;
use proxim_spice::circuit::{Circuit, Waveform};
use proxim_spice::tran::TranOptions;

/// One simulated two-stage data point.
struct ChainPoint {
    /// Clean input ramp transition time.
    tau: f64,
    /// Simulated second-stage output arrival (absolute).
    t2_sim: f64,
    /// First-stage input arrival (absolute).
    arrival_in: f64,
}

/// Simulates `cell` driving an identical copy of itself, pin 0 to pin 0,
/// with stable pins at sensitizing levels, and returns the second-stage
/// output arrival.
fn simulate_chain(
    cell: &Cell,
    tech: &Technology,
    th: &Thresholds,
    input_edge: Edge,
    tau: f64,
    c_load: f64,
    dv_max: f64,
) -> Result<ChainPoint, ModelError> {
    let probe = [InputEvent::new(0, input_edge, 0.0, tau)];
    let scenario = Scenario::resolve(cell, &probe)?;
    let a_out_edge = scenario.output_edge;
    // Stage B's input edge is stage A's output edge.
    let b_scenario = Scenario::resolve(cell, &[InputEvent::new(0, a_out_edge, 0.0, tau)])?;
    let b_out_edge = b_scenario.output_edge;

    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::Dc(tech.vdd));

    let t_start = 0.3e-9;
    let event = InputEvent::new(0, input_edge, t_start, tau);
    let in_node = ckt.node("a_in0");
    ckt.vsource("VIN", in_node, Circuit::GND, event.ramp.waveform(tech.vdd));

    // Stage A pins: pin 0 from the ramp, others at sensitizing levels.
    let mut a_pins = vec![in_node];
    for (pin, lv) in scenario.stable_levels.iter().enumerate().skip(1) {
        let node = ckt.node(&format!("a_in{pin}"));
        let level = lv.unwrap_or(true);
        ckt.vsource(
            &format!("VA{pin}"),
            node,
            Circuit::GND,
            Waveform::Dc(if level { tech.vdd } else { 0.0 }),
        );
        a_pins.push(node);
    }
    let mid = ckt.node("mid");
    cell.elaborate_into(&mut ckt, tech, "a", vdd, &a_pins, mid);

    // Stage B pins: pin 0 from the mid net.
    let mut b_pins = vec![mid];
    for (pin, lv) in b_scenario.stable_levels.iter().enumerate().skip(1) {
        let node = ckt.node(&format!("b_in{pin}"));
        let level = lv.unwrap_or(true);
        ckt.vsource(
            &format!("VB{pin}"),
            node,
            Circuit::GND,
            Waveform::Dc(if level { tech.vdd } else { 0.0 }),
        );
        b_pins.push(node);
    }
    let out = ckt.node("out");
    cell.elaborate_into(&mut ckt, tech, "b", vdd, &b_pins, out);
    ckt.capacitor("CL", out, Circuit::GND, c_load);

    let t_stop = t_start + tau + 12e-9;
    let r = ckt.tran(&TranOptions::to(t_stop).with_dv_max(dv_max))?;
    let w = r.waveform(out);
    let t2_sim = w
        .first_crossing(th.threshold_for(b_out_edge), b_out_edge)
        .ok_or_else(|| ModelError::MissingCrossing {
            what: "calibrating the two-stage chain".into(),
        })?;
    Ok(ChainPoint {
        tau,
        t2_sim,
        arrival_in: event.arrival(th),
    })
}

/// Calibrates the ramp-stretch factor for the output edge produced by
/// `input_edge` on pin 0, using the pin-0 single-input models of both
/// stages (`single_a` drives, `single_b` receives).
///
/// Returns a factor in `[0.8, 2.5]` (clamped if the bracket fails).
///
/// # Errors
///
/// Returns [`ModelError`] if the chain simulations fail.
#[allow(clippy::too_many_arguments)]
pub(crate) fn calibrate_stretch(
    cell: &Cell,
    tech: &Technology,
    th: &Thresholds,
    input_edge: Edge,
    single_a: &SingleInputModel,
    single_b: &SingleInputModel,
    c_ref: f64,
    dv_max: f64,
) -> Result<f64, ModelError> {
    let (tau_lo, tau_hi) = single_a.tau_range();
    let taus = [tau_lo * 1.5, (tau_lo * tau_hi).sqrt(), tau_hi * 0.7];
    let c_mid = cell.input_cap(tech);
    let frac_span = (th.v_ih - th.v_il) / th.vdd;

    let mut points = Vec::with_capacity(taus.len());
    for &tau in &taus {
        points.push(simulate_chain(
            cell, tech, th, input_edge, tau, c_ref, dv_max,
        )?);
    }

    // Modeled two-stage arrival as a function of the stretch factor.
    let t2_model = |f: f64, p: &ChainPoint| -> f64 {
        let delay_a = single_a.delay(p.tau, c_mid);
        let tt_a = single_a.transition(p.tau, c_mid);
        let tau_full = (tt_a / frac_span * f).max(1e-15);
        p.arrival_in + delay_a + single_b.delay(tau_full, c_ref)
    };
    let residual = |f: f64| -> f64 {
        points
            .iter()
            .map(|p| t2_model(f, p) - p.t2_sim)
            .sum::<f64>()
            / points.len() as f64
    };

    let (lo, hi) = (0.8, 2.5);
    if residual(lo) >= 0.0 {
        return Ok(lo);
    }
    if residual(hi) <= 0.0 {
        return Ok(hi);
    }
    Ok(brent(residual, lo, hi, 1e-4).unwrap_or(1.0))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::characterize::Simulator;
    use proxim_cells::Technology;

    #[test]
    fn calibrated_stretch_is_between_linear_and_full_tail() {
        let tech = Technology::demo_5v();
        let cell = Cell::nand(2);
        let th = Thresholds::new(1.8, 3.78, 5.0);
        let sim = Simulator::new(&cell, &tech, th, 100e-15, 0.08);
        let single =
            SingleInputModel::characterize(&sim, 0, Edge::Rising, &[100e-12, 400e-12, 1500e-12])
                .unwrap();
        let f = calibrate_stretch(
            &cell,
            &tech,
            &th,
            Edge::Rising,
            &single,
            &single,
            100e-15,
            0.08,
        )
        .unwrap();
        assert!(f > 1.0, "real edges are slower than linear: {f}");
        assert!(
            f < single.tail_factor() + 0.2,
            "stretch {f} should not exceed the full 5-95% tail {}",
            single.tail_factor()
        );
    }
}
