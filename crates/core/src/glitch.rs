//! Inertial delay as a proximity effect (§6).
//!
//! When one input would drive the output through a transition (the
//! *causer*) and another input switches the opposite way in close proximity
//! (the *blocker*), the output only partially completes its excursion — a
//! glitch. The paper models the output-voltage extremum as a macromodel of
//! the same shape as eq. (3.9), with the causer as reference, and defines
//! the gate's inertial delay as the minimum separation for which the
//! extremum still crosses the measurement threshold (a "valid output").

use crate::characterize::Simulator;
use crate::error::ModelError;
use crate::jobs::{execute_jobs, first_error, JobOutcome, SimJob};
use crate::measure::{InputEvent, Scenario};
use crate::single::{edge_as_bool as edge_serde, SingleInputModel};
use crate::thresholds::Thresholds;
use proxim_numeric::pwl::Edge;
use proxim_numeric::rootfind::brent;
use proxim_numeric::Table3d;
use serde::{Deserialize, Serialize};

/// A characterized glitch-peak macromodel for one causer pin and edge.
///
/// The table stores the normalized output extremum `V_peak / V_dd` over
/// `(u₁, v, w) = (τ_c/Δ_c⁽¹⁾, τ_b/Δ_c⁽¹⁾, s/Δ_c⁽¹⁾)`, where `s` is the
/// blocker's arrival minus the causer's arrival: large `s` means the blocker
/// comes late and the output completes its transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlitchModel {
    /// The causer pin (drives the output transition).
    pub causer: usize,
    /// The blocker pin (switches the opposite way).
    pub blocker: usize,
    /// The causer's input edge.
    #[serde(with = "edge_serde")]
    pub causer_edge: Edge,
    /// The output edge the causer would produce.
    #[serde(with = "edge_serde")]
    pub output_edge: Edge,
    /// Supply voltage.
    pub vdd: f64,
    /// Normalized extremum table.
    peak: Table3d,
}

impl GlitchModel {
    /// Characterizes the glitch model.
    ///
    /// `single` must be the causer pin's single-input model for
    /// `causer_edge`; its delay defines the normalization.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on simulation failure or degenerate grids.
    ///
    /// # Panics
    ///
    /// Panics if `blocker == causer`.
    pub fn characterize(
        sim: &Simulator<'_>,
        single: &SingleInputModel,
        blocker: usize,
        u_grid: &[f64],
        v_grid: &[f64],
        w_grid: &[f64],
    ) -> Result<Self, ModelError> {
        let jobs = Self::enumerate(
            sim.cell,
            &sim.thresholds,
            sim.c_load,
            single,
            blocker,
            u_grid,
            v_grid,
            w_grid,
        )?;
        let batch = execute_jobs(sim, &jobs, 1);
        Self::assemble(
            sim.tech.vdd,
            single,
            blocker,
            u_grid,
            v_grid,
            w_grid,
            &first_error(&batch.outcomes)?,
        )
    }

    /// Enumerates the `(u₁, v, w)` glitch grid as independent simulation
    /// jobs in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the causer scenario cannot be sensitized.
    ///
    /// # Panics
    ///
    /// Panics if `blocker == single.pin`.
    #[allow(clippy::too_many_arguments)]
    pub fn enumerate(
        cell: &proxim_cells::Cell,
        th: &Thresholds,
        c_load: f64,
        single: &SingleInputModel,
        blocker: usize,
        u_grid: &[f64],
        v_grid: &[f64],
        w_grid: &[f64],
    ) -> Result<Vec<SimJob>, ModelError> {
        let causer = single.pin;
        assert_ne!(causer, blocker, "blocker must differ from the causer");
        let causer_edge = single.input_edge;
        let blocker_edge = causer_edge.opposite();

        // The blocker starts from its sensitizing (non-blocking) level and
        // ramps to the opposite.
        let causer_scenario =
            Scenario::resolve(cell, &[InputEvent::new(causer, causer_edge, 0.0, 1e-10)])?;

        let mut jobs = Vec::with_capacity(u_grid.len() * v_grid.len() * w_grid.len());
        for &u1 in u_grid {
            let tau_c = single.tau_for_ratio(u1, c_load);
            let d1 = single.delay(tau_c, c_load);
            let e_c = InputEvent::new(causer, causer_edge, 0.0, tau_c);
            let arrival_c = e_c.arrival(th);
            for &v in v_grid {
                let tau_b = (v * d1).max(10e-12);
                for &w in w_grid {
                    let s = w * d1;
                    let frac_b = InputEvent::new(blocker, blocker_edge, 0.0, tau_b).arrival(th);
                    let e_b = InputEvent::new(blocker, blocker_edge, arrival_c + s - frac_b, tau_b);
                    jobs.push(SimJob::glitch(causer_scenario.clone(), e_c, e_b));
                }
            }
        }
        Ok(jobs)
    }

    /// Builds the model from executed job outcomes in enumeration order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on degenerate grids.
    ///
    /// # Panics
    ///
    /// Panics if the outcome count does not match the enumeration.
    pub fn assemble(
        vdd: f64,
        single: &SingleInputModel,
        blocker: usize,
        u_grid: &[f64],
        v_grid: &[f64],
        w_grid: &[f64],
        outcomes: &[&JobOutcome],
    ) -> Result<Self, ModelError> {
        let causer = single.pin;
        let causer_edge = single.input_edge;
        let expected = u_grid.len() * v_grid.len() * w_grid.len();
        assert_eq!(outcomes.len(), expected, "one outcome per grid point");
        // The causer scenario's output edge is the same resolution that
        // produced the single-input model's output edge.
        let output_edge = single.output_edge;

        let vals: Vec<f64> = outcomes
            .iter()
            .map(|o| o.peak().map(|p| p / vdd))
            .collect::<Result<_, _>>()?;

        // Log-domain u/v axes, as in the dual-input tables.
        let ln_u: Vec<f64> = u_grid.iter().map(|u| u.ln()).collect();
        let ln_v: Vec<f64> = v_grid.iter().map(|v| v.ln()).collect();
        Ok(Self {
            causer,
            blocker,
            causer_edge,
            output_edge,
            vdd,
            peak: Table3d::new(ln_u, ln_v, w_grid.to_vec(), vals)?,
        })
    }

    /// The predicted output extremum voltage for causer transition time
    /// `tau_c`, blocker transition time `tau_b`, and separation `s`
    /// (blocker arrival − causer arrival), normalized with the causer's
    /// single-input delay `d1`.
    pub fn peak_voltage(&self, tau_c: f64, tau_b: f64, s: f64, d1: f64) -> f64 {
        self.vdd * self.peak.eval((tau_c / d1).ln(), (tau_b / d1).ln(), s / d1)
    }

    /// The inertial delay: the minimum separation `s` at which the output
    /// still completes a valid transition (the extremum crosses
    /// `v_threshold` — `V_il` for a falling output, `V_ih` for a rising
    /// one). Returns `None` if no separation within the characterized window
    /// achieves it.
    pub fn min_separation_for_valid_output(
        &self,
        tau_c: f64,
        tau_b: f64,
        d1: f64,
        v_threshold: f64,
    ) -> Option<f64> {
        let (w_lo, w_hi) = {
            // Table3d axes are validated non-empty at construction.
            let axis = self.peak.az();
            (axis[0], axis[axis.len() - 1])
        };
        // Signed clearance: positive once the output crosses the threshold.
        let clear = |s: f64| match self.output_edge {
            Edge::Falling => v_threshold - self.peak_voltage(tau_c, tau_b, s, d1),
            Edge::Rising => self.peak_voltage(tau_c, tau_b, s, d1) - v_threshold,
        };
        let (s_lo, s_hi) = (w_lo * d1, w_hi * d1);
        if clear(s_lo) >= 0.0 {
            return Some(s_lo);
        }
        if clear(s_hi) < 0.0 {
            return None;
        }
        brent(clear, s_lo, s_hi, 1e-16).ok()
    }

    /// Storage cost in table entries.
    pub fn table_len(&self) -> usize {
        self.peak.len()
    }

    /// Audit access: the normalized-peak table.
    pub(crate) fn peak_table(&self) -> &Table3d {
        &self.peak
    }

    /// Audit repair access: the normalized-peak table, mutably.
    pub(crate) fn peak_table_mut(&mut self) -> &mut Table3d {
        &mut self.peak
    }
}

/// Simulates one causer/blocker pair and returns the output extremum plus
/// the transient's recovery-ladder trace.
pub(crate) fn simulate_glitch(
    sim: &Simulator<'_>,
    causer_scenario: &Scenario,
    e_c: InputEvent,
    e_b: InputEvent,
    output_edge: Edge,
) -> Result<(f64, proxim_spice::RecoveryTrace), ModelError> {
    // Shift both events positive, mirroring Simulator::simulate.
    let t_min = e_c.ramp.t_start.min(e_b.ramp.t_start);
    let shift = 0.2e-9 - t_min.min(0.0);
    let e_c = e_c.delayed(shift);
    let e_b = e_b.delayed(shift);

    let mut net = sim.cell.netlist(sim.tech, sim.c_load);
    for (pin, lv) in causer_scenario.stable_levels.iter().enumerate() {
        if pin == e_b.pin {
            continue;
        }
        if let Some(high) = lv {
            net.set_level(pin, *high);
        }
    }
    net.set_waveform(e_c.pin, e_c.ramp.waveform(sim.tech.vdd));
    net.set_waveform(e_b.pin, e_b.ramp.waveform(sim.tech.vdd));

    let t_ramps_end = (e_c.ramp.t_start + e_c.ramp.transition_time)
        .max(e_b.ramp.t_start + e_b.ramp.transition_time);
    let t_stop = t_ramps_end + 3.0 * settle(sim);
    let options = proxim_spice::tran::TranOptions::to(t_stop)
        .with_dv_max(sim.dv_max)
        .with_tolerance_scale(sim.tol_scale);
    let result = net.circuit.tran(&options)?;
    let out = result.waveform(net.out);
    let peak = match output_edge {
        Edge::Falling => out.min().1,
        Edge::Rising => out.max().1,
    };
    Ok((peak, result.recovery))
}

fn settle(sim: &Simulator<'_>) -> f64 {
    let vdd = sim.tech.vdd;
    let k = sim.tech.k_n(sim.cell.wn()).min(sim.tech.k_p(sim.cell.wp()));
    let vt = sim.tech.nmos.vt0.max(sim.tech.pmos.vt0);
    let i = k * (vdd - vt) * (vdd - vt) / sim.cell.input_count() as f64;
    (4.0 * sim.c_load * vdd / i).max(1e-9)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::thresholds::Thresholds;
    use proxim_cells::{Cell, Technology};

    fn glitch_env() -> (Cell, Technology) {
        (Cell::nand(2), Technology::demo_5v())
    }

    #[test]
    fn glitch_deepens_with_later_blocker() {
        let (cell, tech) = glitch_env();
        let th = Thresholds::new(1.2, 3.4, 5.0);
        let sim = Simulator::new(&cell, &tech, th, 100e-15, 0.1);
        // Causer: pin 1 rising (pulls the NAND output low); blocker: pin 0
        // falling (restores it high) — the paper's Figure 6-1 scenario.
        let single =
            SingleInputModel::characterize(&sim, 1, Edge::Rising, &[150e-12, 600e-12, 1800e-12])
                .unwrap();
        let m = GlitchModel::characterize(
            &sim,
            &single,
            0,
            &[1.0, 4.0],
            &[1.0, 4.0],
            &[-0.5, 0.5, 1.5, 3.0],
        )
        .unwrap();
        assert_eq!(m.output_edge, Edge::Falling);

        let tau = 500e-12;
        let d1 = single.delay(tau, sim.c_load);
        let early_blocker = m.peak_voltage(tau, tau, -0.5 * d1, d1);
        let late_blocker = m.peak_voltage(tau, tau, 3.0 * d1, d1);
        // Blocker long after the causer: output completes its fall (low
        // extremum). Blocker early: output barely moves (stays high).
        assert!(
            late_blocker < early_blocker - 0.5,
            "late {late_blocker} vs early {early_blocker}"
        );
        assert!(late_blocker < 1.0, "full transition reaches near ground");
        assert!(early_blocker > 3.0, "blocked output stays high");
    }

    #[test]
    fn min_separation_is_within_window_and_monotone_sensible() {
        let (cell, tech) = glitch_env();
        let th = Thresholds::new(1.2, 3.4, 5.0);
        let sim = Simulator::new(&cell, &tech, th, 100e-15, 0.1);
        let single =
            SingleInputModel::characterize(&sim, 1, Edge::Rising, &[150e-12, 600e-12, 1800e-12])
                .unwrap();
        let m = GlitchModel::characterize(
            &sim,
            &single,
            0,
            &[1.0, 4.0],
            &[1.0, 4.0],
            &[-0.5, 0.5, 1.5, 3.0],
        )
        .unwrap();
        let tau = 500e-12;
        let d1 = single.delay(tau, sim.c_load);
        let s_min = m
            .min_separation_for_valid_output(tau, tau, d1, th.v_il)
            .expect("a late-enough blocker admits a full transition");
        // At the minimum separation the peak sits at the threshold.
        let v = m.peak_voltage(tau, tau, s_min, d1);
        assert!((v - th.v_il).abs() < 0.05, "peak at s_min = {v}");
        // Earlier blockers must not produce a valid output.
        let v_before = m.peak_voltage(tau, tau, s_min - 0.5 * d1, d1);
        assert!(v_before > v - 1e-9);
    }
}
