//! Simulation drivers for model characterization.
//!
//! The paper builds its macromodels from HSPICE runs; [`Simulator`] plays
//! that role here on top of [`proxim_spice`]. It elaborates the cell once
//! per scenario, applies controlled PWL ramps, picks a settling horizon from
//! the drive strength, and returns the measured output waveform.

use crate::error::ModelError;
use crate::measure::{InputEvent, Scenario};
use crate::thresholds::Thresholds;
use proxim_cells::{Cell, CellNetlist, Technology};
use proxim_numeric::grid::{linspace, logspace};
use proxim_numeric::pwl::{Edge, Pwl};
use proxim_spice::tran::{TranOptions, TranResult};
use proxim_spice::{CancelToken, RecoveryTrace};

/// Grids and knobs controlling characterization cost and fidelity.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeOptions {
    /// Output load capacitance, in farads.
    pub c_load: f64,
    /// Sweep samples per VTC.
    pub vtc_points: usize,
    /// Transition-time grid for the single-input tables, in seconds.
    pub tau_grid: Vec<f64>,
    /// `tau_i / Δ⁽¹⁾` axis of the dual-input tables.
    pub dual_u_grid: Vec<f64>,
    /// `tau_j / Δ⁽¹⁾` axis of the dual-input tables.
    pub dual_v_grid: Vec<f64>,
    /// `s_ij / Δ⁽¹⁾` axis of the dual-input tables.
    pub dual_w_grid: Vec<f64>,
    /// Per-step voltage-change bound passed to the transient engine.
    pub dv_max: f64,
    /// Whether to characterize the full `n x n` dual-input matrix instead of
    /// the paper's `2n` models (one representative partner per pin).
    pub full_pair_matrix: bool,
    /// Whether to characterize the glitch/inertial-delay model (§6).
    pub glitch: bool,
    /// `τ_c / Δ⁽¹⁾` axis of the glitch tables.
    pub glitch_u_grid: Vec<f64>,
    /// `τ_b / Δ⁽¹⁾` axis of the glitch tables.
    pub glitch_v_grid: Vec<f64>,
    /// Separation axis of the glitch tables (`s / Δ⁽¹⁾`; extends well past
    /// the delay window so the full-transition boundary is bracketed).
    pub glitch_w_grid: Vec<f64>,
    /// Optional load axis for NLDM-style 2-D load-slew surfaces
    /// ([`crate::nldm`]); `None` skips that characterization.
    pub load_grid: Option<Vec<f64>>,
    /// Worker threads for the batched characterization phases
    /// ([`crate::jobs`]). `0` (the default) resolves to
    /// `std::thread::available_parallelism()`. The assembled model is
    /// byte-identical for every value.
    pub jobs: usize,
    /// Maximum lanes per batched transient ([`proxim_spice::tran_batch`]):
    /// consecutive same-topology jobs are advanced in lockstep through the
    /// shared-structure SoA kernel. `1` disables batching. Like `jobs`,
    /// the assembled model is byte-identical for every value.
    pub batch_lanes: usize,
}

impl Default for CharacterizeOptions {
    fn default() -> Self {
        Self {
            c_load: 100e-15,
            vtc_points: 301,
            tau_grid: logspace(50e-12, 2000e-12, 9),
            dual_u_grid: logspace(0.12, 10.0, 8),
            dual_v_grid: logspace(0.12, 10.0, 8),
            dual_w_grid: linspace(-3.0, 2.0, 21),
            dv_max: 0.04,
            full_pair_matrix: false,
            glitch: true,
            glitch_u_grid: logspace(0.3, 8.0, 4),
            glitch_v_grid: logspace(0.3, 8.0, 4),
            glitch_w_grid: linspace(-1.0, 4.0, 11),
            load_grid: Some(logspace(10e-15, 400e-15, 5)),
            jobs: 0,
            batch_lanes: 8,
        }
    }
}

impl CharacterizeOptions {
    /// A mid-cost option set: paper-like shapes with a few percent of
    /// table-interpolation error, at roughly a quarter of the default cost.
    pub fn medium() -> Self {
        Self {
            c_load: 100e-15,
            vtc_points: 151,
            tau_grid: logspace(50e-12, 2000e-12, 6),
            dual_u_grid: logspace(0.12, 10.0, 6),
            dual_v_grid: logspace(0.12, 10.0, 6),
            dual_w_grid: linspace(-2.6, 1.8, 13),
            dv_max: 0.06,
            full_pair_matrix: false,
            glitch: true,
            glitch_u_grid: logspace(0.3, 8.0, 3),
            glitch_v_grid: logspace(0.3, 8.0, 3),
            glitch_w_grid: linspace(-1.0, 4.0, 8),
            load_grid: Some(logspace(10e-15, 300e-15, 4)),
            jobs: 0,
            batch_lanes: 8,
        }
    }

    /// A heavily reduced option set for unit tests: coarse grids, loose
    /// simulation accuracy. Roughly 50x cheaper than the default.
    pub fn fast() -> Self {
        Self {
            c_load: 100e-15,
            vtc_points: 81,
            tau_grid: logspace(60e-12, 2000e-12, 4),
            dual_u_grid: logspace(0.15, 9.0, 4),
            dual_v_grid: logspace(0.15, 9.0, 4),
            dual_w_grid: linspace(-2.2, 1.6, 8),
            dv_max: 0.08,
            full_pair_matrix: false,
            glitch: false,
            glitch_u_grid: vec![0.5, 4.0],
            glitch_v_grid: vec![0.5, 4.0],
            glitch_w_grid: linspace(-1.0, 4.0, 5),
            load_grid: None,
            jobs: 0,
            batch_lanes: 8,
        }
    }

    /// Resolves the `jobs` knob to an actual worker count: `0` becomes the
    /// machine's available parallelism (1 if that cannot be determined).
    pub fn worker_threads(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }

    /// A canonical description of every field that affects the characterized
    /// model — the options half of the cache key ([`crate::persist`]).
    /// Deliberately excludes `jobs` and `batch_lanes`: worker count and
    /// transient batching never change the result.
    pub fn cache_key_string(&self) -> String {
        format!(
            "c_load={:?};vtc_points={};tau_grid={:?};dual_u={:?};dual_v={:?};dual_w={:?};\
             dv_max={:?};full_pair_matrix={};glitch={};glitch_u={:?};glitch_v={:?};\
             glitch_w={:?};load_grid={:?}",
            self.c_load,
            self.vtc_points,
            self.tau_grid,
            self.dual_u_grid,
            self.dual_v_grid,
            self.dual_w_grid,
            self.dv_max,
            self.full_pair_matrix,
            self.glitch,
            self.glitch_u_grid,
            self.glitch_v_grid,
            self.glitch_w_grid,
            self.load_grid,
        )
    }
}

/// The measured response of one simulated scenario.
#[derive(Debug, Clone)]
pub struct SimResponse {
    /// The events as actually applied (time-shifted so every ramp starts
    /// strictly after `t = 0`).
    pub events: Vec<InputEvent>,
    /// The simulated output waveform.
    pub output: Pwl,
    /// The output transition direction.
    pub output_edge: Edge,
    /// The transient's recovery-ladder trace (empty for a healthy run);
    /// counts and per-rung wall time are aggregated into
    /// [`crate::jobs::CharStats::recoveries`] and
    /// [`crate::jobs::CharStats::recovery_seconds`].
    pub recovery: RecoveryTrace,
}

impl SimResponse {
    /// Delay measured relative to the event at index `k` (paper notation
    /// `Δ_{iz}`), using the first output crossing.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingCrossing`] if the output never switches.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn delay_from(&self, k: usize, th: &Thresholds) -> Result<f64, ModelError> {
        crate::measure::measure_delay(&self.events[k], &self.output, th, self.output_edge)
    }

    /// Output transition time between `V_il` and `V_ih`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingCrossing`] if the output does not
    /// complete its transition.
    pub fn transition_time(&self, th: &Thresholds) -> Result<f64, ModelError> {
        crate::measure::measure_transition(&self.output, th, self.output_edge)
    }
}

/// A characterization simulator bound to one cell, technology and load.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    /// The cell under characterization.
    pub cell: &'a Cell,
    /// The process technology.
    pub tech: &'a Technology,
    /// The measurement thresholds (from the VTC family).
    pub thresholds: Thresholds,
    /// Output load, in farads.
    pub c_load: f64,
    /// Transient accuracy knob.
    pub dv_max: f64,
    /// Solver-tolerance scale applied to every transient (see
    /// [`proxim_spice::tran::TranOptions::with_tolerance_scale`]). The
    /// default `1.0` is a bit-identical no-op; the audit repair pass drops
    /// it below one to re-run suspect grid points at higher accuracy.
    pub tol_scale: f64,
    /// Cancellation token polled by every transient this simulator runs.
    /// Defaults to a token that never cancels; see
    /// [`Simulator::with_cancel`].
    pub cancel: CancelToken,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator.
    pub fn new(
        cell: &'a Cell,
        tech: &'a Technology,
        thresholds: Thresholds,
        c_load: f64,
        dv_max: f64,
    ) -> Self {
        Self {
            cell,
            tech,
            thresholds,
            c_load,
            dv_max,
            tol_scale: 1.0,
            cancel: CancelToken::new(),
        }
    }

    /// Returns the simulator with a solver-tolerance scale; `1.0` leaves
    /// every transient bit-identical to the unscaled simulator.
    #[must_use]
    pub fn with_tolerance_scale(mut self, scale: f64) -> Self {
        self.tol_scale = scale;
        self
    }

    /// Binds a cancellation token: every transient this simulator runs polls
    /// it at step and Newton-iteration boundaries, so a characterization run
    /// can be stopped (or deadlined) mid-simulation with a typed error.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// A conservative settling horizon after the last ramp ends: the time to
    /// slew the loaded output several times over, accounting for the series
    /// stack dividing the drive strength.
    fn settle_margin(&self) -> f64 {
        let n = self.cell.input_count() as f64;
        let vdd = self.tech.vdd;
        let k_n = self.tech.k_n(self.cell.wn());
        let k_p = self.tech.k_p(self.cell.wp());
        let vt = self.tech.nmos.vt0.max(self.tech.pmos.vt0);
        let i_min = k_n.min(k_p) * (vdd - vt) * (vdd - vt) / n;
        // Total output capacitance: load plus a junction allowance.
        let c_total =
            self.c_load + 4.0 * self.tech.cj_per_width * self.cell.wn().max(self.cell.wp());
        (12.0 * c_total * vdd / i_min).max(1e-9)
    }

    /// Elaborates a switching scenario without running its transient: the
    /// first half of [`Simulator::simulate`], yielding a [`PreparedSim`]
    /// whose circuit and options can be handed to the transient engine —
    /// scalar or batched ([`proxim_spice::tran_batch`]) — and whose
    /// measurement context is finished by [`Simulator::finish`].
    ///
    /// Stable pins are driven at sensitizing levels resolved by
    /// [`Scenario::resolve`]. All events are shifted together so that every
    /// ramp starts after `t = 0` (the DC initial condition then reflects the
    /// initial rails); the shifted events are kept so measurements stay
    /// consistent.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the scenario is unsensitizable.
    pub fn prepare(&self, events: &[InputEvent]) -> Result<PreparedSim, ModelError> {
        let scenario = Scenario::resolve(self.cell, events)?;

        // Shift so the earliest ramp starts at a small positive time.
        let t_min = events
            .iter()
            .map(|e| e.ramp.t_start)
            .fold(f64::INFINITY, f64::min);
        let shift = 0.2e-9 - t_min.min(0.0);
        let events: Vec<InputEvent> = events.iter().map(|e| e.delayed(shift)).collect();

        let t_ramps_end = events
            .iter()
            .map(|e| e.ramp.t_start + e.ramp.transition_time)
            .fold(0.0f64, f64::max);
        let t_stop = t_ramps_end + self.settle_margin();

        let mut net = self.cell.netlist(self.tech, self.c_load);
        for (pin, lv) in scenario.stable_levels.iter().enumerate() {
            if let Some(high) = lv {
                net.set_level(pin, *high);
            }
        }
        for e in &events {
            net.set_waveform(e.pin, e.ramp.waveform(self.tech.vdd));
        }

        let options = TranOptions::to(t_stop)
            .with_dv_max(self.dv_max)
            .with_tolerance_scale(self.tol_scale);
        Ok(PreparedSim {
            events,
            output_edge: scenario.output_edge,
            net,
            options,
        })
    }

    /// Turns a prepared scenario plus its transient result into the measured
    /// response: the second half of [`Simulator::simulate`].
    pub fn finish(&self, prep: PreparedSim, result: TranResult) -> SimResponse {
        let output = result.waveform(prep.net.out);
        SimResponse {
            events: prep.events,
            output,
            output_edge: prep.output_edge,
            recovery: result.recovery,
        }
    }

    /// Simulates a switching scenario and returns the measured response:
    /// [`Simulator::prepare`], one scalar transient, [`Simulator::finish`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the scenario is unsensitizable or the
    /// simulation fails.
    pub fn simulate(&self, events: &[InputEvent]) -> Result<SimResponse, ModelError> {
        let prep = self.prepare(events)?;
        let result = prep
            .net
            .circuit
            .tran_cancellable(&prep.options, &self.cancel)?;
        Ok(self.finish(prep, result))
    }
}

/// A fully elaborated scenario whose transient has not run yet: the output
/// of [`Simulator::prepare`], consumed by [`Simulator::finish`]. The batched
/// job executor collects several of these, runs their transients in lockstep
/// through [`proxim_spice::tran_batch`], and finishes each lane separately.
#[derive(Debug, Clone)]
pub struct PreparedSim {
    /// The events as applied (time-shifted past `t = 0`).
    events: Vec<InputEvent>,
    /// The output transition direction of the resolved scenario.
    output_edge: Edge,
    /// The elaborated netlist, stimuli applied.
    net: CellNetlist,
    /// The transient options for this scenario.
    options: TranOptions,
}

impl PreparedSim {
    /// The elaborated circuit (the batch kernel borrows this per lane).
    pub fn circuit(&self) -> &proxim_spice::Circuit {
        &self.net.circuit
    }

    /// The transient options for this scenario.
    pub fn options(&self) -> TranOptions {
        self.options
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use proxim_cells::{Cell, Technology};

    fn setup() -> (Cell, Technology, Thresholds) {
        (
            Cell::nand(3),
            Technology::demo_5v(),
            Thresholds::new(1.2, 3.4, 5.0),
        )
    }

    #[test]
    fn default_options_are_consistent() {
        let o = CharacterizeOptions::default();
        assert!(o.tau_grid.windows(2).all(|w| w[1] > w[0]));
        assert!(o.dual_w_grid.windows(2).all(|w| w[1] > w[0]));
        assert!(o.dual_w_grid.first().copied().unwrap() < 0.0);
        assert!(
            *o.dual_w_grid.last().unwrap() >= 1.0,
            "window must reach s = Δ⁽¹⁾"
        );
    }

    #[test]
    fn single_rising_input_produces_falling_output() {
        let (cell, tech, th) = setup();
        let sim = Simulator::new(&cell, &tech, th, 100e-15, 0.1);
        let events = vec![InputEvent::new(0, Edge::Rising, 0.0, 500e-12)];
        let r = sim.simulate(&events).unwrap();
        assert_eq!(r.output_edge, Edge::Falling);
        let d = r.delay_from(0, &th).unwrap();
        assert!(d > 0.0, "delay must be positive, got {d}");
        assert!(d < 2e-9, "delay implausibly large: {d}");
        let t = r.transition_time(&th).unwrap();
        assert!(t > 0.0 && t < 2e-9, "transition time {t}");
    }

    #[test]
    fn negative_start_times_are_shifted() {
        let (cell, tech, th) = setup();
        let sim = Simulator::new(&cell, &tech, th, 100e-15, 0.1);
        let events = vec![
            InputEvent::new(0, Edge::Rising, -1e-9, 300e-12),
            InputEvent::new(1, Edge::Rising, 0.0, 300e-12),
            InputEvent::new(2, Edge::Rising, 0.0, 300e-12),
        ];
        let r = sim.simulate(&events).unwrap();
        assert!(r.events.iter().all(|e| e.ramp.t_start > 0.0));
        // Relative separation is preserved by the common shift.
        let s01 = crate::measure::separation(&r.events[0], &r.events[1], &th);
        assert!((s01 - 1e-9).abs() < 1e-15);
    }

    #[test]
    fn proximity_speeds_up_falling_inputs() {
        // The headline effect (Fig 1-2a): two falling inputs on a NAND in
        // close proximity make the output rise faster than either alone,
        // because both PMOS pull-ups conduct.
        let (cell, tech, th) = setup();
        let sim = Simulator::new(&cell, &tech, th, 100e-15, 0.08);
        let tau = 500e-12;

        // Far separation: b switches long after a, blocked by a.
        let far = sim
            .simulate(&[
                InputEvent::new(0, Edge::Falling, 0.0, tau),
                InputEvent::new(1, Edge::Falling, 5e-9, tau),
            ])
            .unwrap();
        let d_far = far.delay_from(0, &th).unwrap();

        // Close proximity: both together.
        let close = sim
            .simulate(&[
                InputEvent::new(0, Edge::Falling, 0.0, tau),
                InputEvent::new(1, Edge::Falling, 0.0, tau),
            ])
            .unwrap();
        let d_close = close.delay_from(0, &th).unwrap();

        assert!(
            d_close < d_far * 0.9,
            "proximity must accelerate the rising output: close {d_close}, far {d_far}"
        );
    }

    #[test]
    fn proximity_slows_down_rising_inputs() {
        // Fig 1-2(c): rising inputs in proximity slow the falling output,
        // because the series NMOS stack conducts late.
        let (cell, tech, th) = setup();
        let sim = Simulator::new(&cell, &tech, th, 100e-15, 0.08);
        let tau = 500e-12;

        let far = sim
            .simulate(&[
                InputEvent::new(0, Edge::Rising, 2e-9, tau),
                InputEvent::new(1, Edge::Rising, 0.0, tau),
                InputEvent::new(2, Edge::Rising, 0.0, tau),
            ])
            .unwrap();
        // Reference: pin 0 arrives last, causing the transition.
        let d_far = far.delay_from(0, &th).unwrap();

        let close = sim
            .simulate(&[
                InputEvent::new(0, Edge::Rising, 0.0, tau),
                InputEvent::new(1, Edge::Rising, 0.0, tau),
                InputEvent::new(2, Edge::Rising, 0.0, tau),
            ])
            .unwrap();
        let d_close = close.delay_from(0, &th).unwrap();

        assert!(
            d_close > d_far,
            "simultaneous rising inputs must be slower: close {d_close}, far {d_far}"
        );
    }

    #[test]
    fn settle_margin_scales_with_load() {
        let (cell, tech, th) = setup();
        let small = Simulator::new(&cell, &tech, th, 20e-15, 0.1);
        let large = Simulator::new(&cell, &tech, th, 500e-15, 0.1);
        assert!(large.settle_margin() > small.settle_margin());
    }
}
