//! Crash-consistent checkpoint/resume and run control for characterization.
//!
//! A characterization run is thousands of independent, deterministic
//! simulation jobs. [`CheckpointJournal`] journals each *completed* job to
//! an append-only file as it finishes, so a run that dies — `SIGKILL`,
//! power loss, OOM — can be resumed: re-running characterization with the
//! same inputs and the same journal skips every journaled job and replays
//! its recorded outcome instead of simulating. Because outcomes are stored
//! bit-exactly (`f64` as raw bit patterns) and assembly consumes outcomes
//! strictly by job index, a resumed run provably produces the **byte
//! identical** model of an uninterrupted run.
//!
//! # Journal format and crash-consistency invariants
//!
//! The journal is line-oriented ASCII. Every line carries its own FNV-1a-64
//! checksum over the rest of the line:
//!
//! ```text
//! <sum:016x> H v1 key=<run key:016x>
//! <sum:016x> E <phase> <job index> <stimulus hash:016x> R <edge> <delay bits> <trans bits> <wide bits | ->
//! <sum:016x> E <phase> <job index> <stimulus hash:016x> P <peak bits>
//! ```
//!
//! The header binds the journal to one run identity (the characterization
//! cache key: cell + technology + result-affecting options). Entries are
//! appended and periodically fsync'd; nothing is ever rewritten in place.
//! On open, the file is scanned front to back and **truncated at the first
//! invalid line** — a torn final append (missing newline, short write, bad
//! checksum) silently costs that one entry, never the journal. A header
//! that does not match the requested run key discards the whole file and
//! starts fresh.
//!
//! Only *successful* outcomes are journaled. Failed jobs re-run on resume,
//! deterministically reproducing the same typed failures — so degraded
//! slices keep their exact provenance strings and byte-identity holds for
//! degraded models too.
//!
//! [`RunControl`] bundles the journal configuration with the cooperative
//! [`CancelToken`] honored at job, Newton-iteration, and transient-step
//! boundaries (see [`crate::model::ProximityModel::characterize_controlled`]).

use crate::error::ModelError;
use crate::jobs::{JobOutcome, SimJob};
use crate::persist::fnv1a_64;
use proxim_numeric::pwl::Edge;
use proxim_obs as obs;
use proxim_spice::CancelToken;
use std::collections::HashMap;
use std::fs;
use std::io::{Seek, Write};
use std::path::PathBuf;
use std::sync::Mutex;

/// Where and how often to checkpoint a characterization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// The journal file. Created (with its parent directory) on first use;
    /// an existing journal for the same run identity resumes.
    pub path: PathBuf,
    /// fsync the journal after this many recorded jobs (1 = every job).
    /// Larger values trade crash-window size for fewer syncs; the window
    /// only ever costs re-simulating the unsynced tail, never corruption.
    pub sync_every: usize,
}

impl CheckpointConfig {
    /// A config that syncs after every recorded job — the smallest crash
    /// window, suitable for tests and chaos harnesses.
    pub fn every_job(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            sync_every: 1,
        }
    }
}

/// Cancellation and checkpointing knobs for one characterization run.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Cooperative stop/deadline token; polled at job boundaries and, inside
    /// each simulation, at transient-step and Newton-iteration boundaries.
    pub cancel: CancelToken,
    /// Optional checkpoint journal; `None` runs without checkpointing.
    pub checkpoint: Option<CheckpointConfig>,
}

impl RunControl {
    /// No cancellation, no deadline, no checkpointing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Enables checkpointing to `config`.
    #[must_use]
    pub fn with_checkpoint(mut self, config: CheckpointConfig) -> Self {
        self.checkpoint = Some(config);
        self
    }
}

/// The identity hash of one job's stimulus, stored with each journal entry
/// so a resume only replays an outcome onto the *same* job (same phase,
/// same index, same stimulus) it was recorded for.
pub(crate) fn stimulus_hash(job: &SimJob) -> u64 {
    fnv1a_64(format!("{:?}", job.stimulus).as_bytes())
}

/// An entry key within the journal: `(phase, job index within phase)`.
type EntryKey = (String, usize);

struct Inner {
    file: fs::File,
    entries: HashMap<EntryKey, (u64, JobOutcome)>,
    resumed: usize,
    since_sync: usize,
    sync_every: usize,
}

/// An append-only, checksummed journal of completed characterization jobs.
///
/// Shared by reference across worker threads; all access is serialized by
/// an internal lock (journal I/O is negligible next to a transient).
pub struct CheckpointJournal {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for CheckpointJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("CheckpointJournal")
            .field("entries", &inner.entries.len())
            .field("resumed", &inner.resumed)
            .field("sync_every", &inner.sync_every)
            .finish()
    }
}

fn edge_char(edge: Edge) -> char {
    match edge {
        Edge::Rising => 'R',
        Edge::Falling => 'F',
    }
}

fn parse_edge(s: &str) -> Option<Edge> {
    match s {
        "R" => Some(Edge::Rising),
        "F" => Some(Edge::Falling),
        _ => None,
    }
}

fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex(s: &str) -> Option<u64> {
    (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok())?
}

fn parse_bits(s: &str) -> Option<f64> {
    parse_hex(s).map(f64::from_bits)
}

/// Renders the payload (everything after the checksum) of an entry line.
fn entry_payload(phase: &str, idx: usize, stim: u64, outcome: &JobOutcome) -> Option<String> {
    let body = match outcome {
        JobOutcome::Response {
            output_edge,
            delay,
            trans,
            wide,
        } => format!(
            "R {} {} {} {}",
            edge_char(*output_edge),
            bits(*delay),
            bits(*trans),
            wide.map_or_else(|| "-".to_string(), bits),
        ),
        JobOutcome::Peak(v) => format!("P {}", bits(*v)),
        // Failures are never journaled: they re-run on resume so degraded
        // slices reproduce their exact provenance.
        JobOutcome::Failed { .. } => return None,
    };
    Some(format!("E {phase} {idx} {stim:016x} {body}"))
}

/// Parses an entry payload back; `None` for anything malformed.
fn parse_entry_payload(payload: &str) -> Option<(EntryKey, u64, JobOutcome)> {
    let mut parts = payload.split(' ');
    if parts.next()? != "E" {
        return None;
    }
    let phase = parts.next()?.to_string();
    let idx: usize = parts.next()?.parse().ok()?;
    let stim = parse_hex(parts.next()?)?;
    let outcome = match parts.next()? {
        "R" => {
            let output_edge = parse_edge(parts.next()?)?;
            let delay = parse_bits(parts.next()?)?;
            let trans = parse_bits(parts.next()?)?;
            let wide = match parts.next()? {
                "-" => None,
                w => Some(parse_bits(w)?),
            };
            JobOutcome::Response {
                output_edge,
                delay,
                trans,
                wide,
            }
        }
        "P" => JobOutcome::Peak(parse_bits(parts.next()?)?),
        _ => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some(((phase, idx), stim, outcome))
}

/// Prefixes a payload with its checksum, forming one full line (no newline).
fn checksummed(payload: &str) -> String {
    format!("{:016x} {payload}", fnv1a_64(payload.as_bytes()))
}

/// Splits a full line into its verified payload; `None` if the checksum is
/// absent or wrong.
fn verify_line(line: &str) -> Option<&str> {
    let (sum, payload) = line.split_once(' ')?;
    let sum = parse_hex(sum)?;
    (fnv1a_64(payload.as_bytes()) == sum).then_some(payload)
}

impl CheckpointJournal {
    /// Opens (resuming) or creates the journal at `config.path`, bound to
    /// the run identity `run_key`.
    ///
    /// An existing file is scanned front to back; every valid entry becomes
    /// resumable state, and the file is truncated at the first invalid line
    /// (a torn tail from a crash mid-append). A missing or mismatched
    /// header discards the file and starts a fresh journal.
    ///
    /// # Errors
    ///
    /// [`ModelError::Persist`] when the file cannot be created, read,
    /// truncated, or synced.
    pub fn open(config: &CheckpointConfig, run_key: u64) -> Result<Self, ModelError> {
        let persist_err = |e: std::io::Error| ModelError::Persist {
            detail: format!("checkpoint journal {}: {e}", config.path.display()),
        };
        if let Some(parent) = config.path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent).map_err(persist_err)?;
        }
        let existing = fs::read(&config.path).unwrap_or_default();
        let text = String::from_utf8_lossy(&existing);

        let mut entries = HashMap::new();
        let mut valid_bytes = 0usize;
        let mut saw_header = false;
        for line in text.split_inclusive('\n') {
            let Some(body) = line.strip_suffix('\n') else {
                break; // torn final append: no newline made it to disk
            };
            let Some(payload) = verify_line(body) else {
                break;
            };
            if !saw_header {
                if payload != format!("H v1 key={run_key:016x}") {
                    break; // different run (or corrupt header): start over
                }
                saw_header = true;
            } else {
                let Some((key, stim, outcome)) = parse_entry_payload(payload) else {
                    break;
                };
                entries.insert(key, (stim, outcome));
            }
            valid_bytes += line.len();
        }
        if !saw_header {
            valid_bytes = 0;
            entries.clear();
        }

        let mut file = fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&config.path)
            .map_err(persist_err)?;
        file.set_len(valid_bytes as u64).map_err(persist_err)?;
        file.seek(std::io::SeekFrom::End(0)).map_err(persist_err)?;
        if valid_bytes == 0 {
            let line = checksummed(&format!("H v1 key={run_key:016x}"));
            file.write_all(format!("{line}\n").as_bytes())
                .map_err(persist_err)?;
            file.sync_all().map_err(persist_err)?;
        }
        let resumed = entries.len();
        let _ = obs::event("char.checkpoint.open")
            .arg("resumed", resumed)
            .arg("key", format_args!("{run_key:016x}"));
        Ok(Self {
            inner: Mutex::new(Inner {
                file,
                entries,
                resumed,
                since_sync: 0,
                sync_every: config.sync_every.max(1),
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock can only come from journal I/O
        // bookkeeping; the journal is still structurally sound, so recover
        // the guard rather than poisoning every subsequent job.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up a journaled outcome for `(phase, idx)`. The stored stimulus
    /// hash must match `stim` — a journal from a run with different
    /// enumeration never replays onto the wrong job.
    pub fn lookup(&self, phase: &str, idx: usize, stim: u64) -> Option<JobOutcome> {
        let inner = self.lock();
        let (stored_stim, outcome) = inner.entries.get(&(phase.to_string(), idx))?;
        (*stored_stim == stim).then(|| outcome.clone())
    }

    /// Journals one completed job. Failed outcomes are ignored (they re-run
    /// on resume); I/O trouble is booked as a trace event and otherwise
    /// tolerated — a checkpointing hiccup must never fail the run itself.
    pub fn record(&self, phase: &str, idx: usize, stim: u64, outcome: &JobOutcome) {
        let Some(payload) = entry_payload(phase, idx, stim, outcome) else {
            return;
        };
        let line = checksummed(&payload);
        let mut inner = self.lock();
        // The record event lands in the flight ring *before* the append,
        // and the mirror dump below is written *after* it, all under the
        // journal lock. A `SIGKILL` at any instant therefore leaves the
        // on-disk dump within one entry of the journal tail: before the
        // append they agree, between append and dump the journal is
        // exactly one ahead. The chaos suite asserts this invariant.
        let _ = obs::event("char.checkpoint.record")
            .arg("phase", phase)
            .arg("idx", idx);
        let result = inner.file.write_all(format!("{line}\n").as_bytes());
        if let Err(e) = result {
            let _ = obs::event("char.checkpoint.write_failed")
                .arg("error", format_args!("{e}"))
                .arg("phase", phase);
            return;
        }
        inner
            .entries
            .insert((phase.to_string(), idx), (stim, outcome.clone()));
        inner.since_sync += 1;
        if inner.since_sync >= inner.sync_every {
            let _ = inner.file.sync_data();
            inner.since_sync = 0;
        }
        if obs::flight::sync_dump_armed() {
            if let Some(path) = obs::flight::armed_dump_path() {
                let _ = crate::persist::atomic_write(&path, obs::flight::dump().as_bytes());
            }
        }
    }

    /// Forces any buffered entries to disk — the final flush of a graceful
    /// (`SIGTERM`-style) shutdown.
    pub fn flush(&self) {
        let mut inner = self.lock();
        let _ = inner.file.sync_data();
        inner.since_sync = 0;
    }

    /// Entries loaded from disk when the journal was opened (i.e. work a
    /// resumed run can skip).
    pub fn resumed_entries(&self) -> usize {
        self.lock().resumed
    }

    /// Total entries currently journaled (resumed plus newly recorded).
    pub fn entries(&self) -> usize {
        self.lock().entries.len()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("proxim_checkpoint_test");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{name}.journal", std::process::id()))
    }

    fn response(delay: f64) -> JobOutcome {
        JobOutcome::Response {
            output_edge: Edge::Falling,
            delay,
            trans: 2.5e-10,
            wide: Some(3.25e-10),
        }
    }

    #[test]
    fn record_then_reopen_resumes_bit_exactly() {
        let path = tmp("roundtrip");
        fs::remove_file(&path).ok();
        let cfg = CheckpointConfig::every_job(&path);
        let j = CheckpointJournal::open(&cfg, 0xabcd).unwrap();
        // Awkward floats on purpose: bit-pattern storage must be exact.
        let outcomes = [
            response(0.1 + 0.2),
            response(1e-300),
            JobOutcome::Peak(-0.0),
        ];
        for (i, o) in outcomes.iter().enumerate() {
            j.record("singles", i, 7 + i as u64, o);
        }
        drop(j);

        let j = CheckpointJournal::open(&cfg, 0xabcd).unwrap();
        assert_eq!(j.resumed_entries(), 3);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(j.lookup("singles", i, 7 + i as u64).as_ref(), Some(o));
        }
        // Wrong stimulus hash or phase never replays.
        assert_eq!(j.lookup("singles", 0, 99), None);
        assert_eq!(j.lookup("pairs", 0, 7), None);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        fs::remove_file(&path).ok();
        let cfg = CheckpointConfig::every_job(&path);
        let j = CheckpointJournal::open(&cfg, 1);
        let j = j.unwrap();
        j.record("singles", 0, 5, &response(1.0));
        j.record("singles", 1, 6, &response(2.0));
        drop(j);

        // Simulate a crash mid-append: chop the last line in half.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();

        let j = CheckpointJournal::open(&cfg, 1).unwrap();
        assert_eq!(j.resumed_entries(), 1, "only the intact entry survives");
        assert!(j.lookup("singles", 0, 5).is_some());
        assert_eq!(j.lookup("singles", 1, 6), None);
        // The journal is append-consistent again: new records work.
        j.record("singles", 1, 6, &response(2.0));
        drop(j);
        let j = CheckpointJournal::open(&cfg, 1).unwrap();
        assert_eq!(j.resumed_entries(), 2);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_entry_drops_it_and_the_tail() {
        let path = tmp("corrupt");
        fs::remove_file(&path).ok();
        let cfg = CheckpointConfig::every_job(&path);
        let j = CheckpointJournal::open(&cfg, 2).unwrap();
        for i in 0..3 {
            j.record("pairs", i, i as u64, &JobOutcome::Peak(i as f64));
        }
        drop(j);

        // Flip one byte in the middle entry's payload.
        let mut bytes = fs::read(&path).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let second_entry = text.match_indices('\n').nth(1).unwrap().0 + 20;
        bytes[second_entry] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let j = CheckpointJournal::open(&cfg, 2).unwrap();
        assert_eq!(
            j.resumed_entries(),
            1,
            "scan stops at the corrupt line; the valid prefix survives"
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_run_key_starts_fresh() {
        let path = tmp("rekey");
        fs::remove_file(&path).ok();
        let cfg = CheckpointConfig::every_job(&path);
        let j = CheckpointJournal::open(&cfg, 10).unwrap();
        j.record("singles", 0, 1, &response(1.0));
        drop(j);

        let j = CheckpointJournal::open(&cfg, 11).unwrap();
        assert_eq!(j.resumed_entries(), 0, "other run's entries must not leak");
        assert_eq!(j.lookup("singles", 0, 1), None);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_outcomes_are_not_journaled() {
        let path = tmp("failed");
        fs::remove_file(&path).ok();
        let cfg = CheckpointConfig::every_job(&path);
        let j = CheckpointJournal::open(&cfg, 3).unwrap();
        j.record(
            "singles",
            0,
            1,
            &JobOutcome::Failed {
                job: 0,
                reason: ModelError::Table("boom".into()),
            },
        );
        assert_eq!(j.entries(), 0);
        drop(j);
        let j = CheckpointJournal::open(&cfg, 3).unwrap();
        assert_eq!(j.resumed_entries(), 0);
        fs::remove_file(&path).ok();
    }
}
