//! Dominant-input identification (§3).
//!
//! The dominant input is **not** the one that switches first: it is the one
//! whose *single-input output response* would cross the delay-measurement
//! threshold first. For two inputs `a` (arriving first) and `b`, `b`
//! dominates while `s_ab < Δ_az⁽¹⁾ − Δ_bz⁽¹⁾`; equivalently, inputs are
//! ranked by `arrival + Δ⁽¹⁾`. The paper's relabeling step (Fig 4-1, step 1)
//! is exactly a sort on that key.

use crate::measure::InputEvent;

/// An input event annotated with its arrival and single-input response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedEvent {
    /// The underlying event.
    pub event: InputEvent,
    /// Arrival time at the input measurement threshold.
    pub arrival: f64,
    /// Single-input delay `Δ⁽¹⁾` for this pin/edge/τ.
    pub d1: f64,
    /// Single-input output transition time `τ⁽¹⁾`.
    pub t1: f64,
}

impl RankedEvent {
    /// The dominance key: the time the single-input output crossing would
    /// occur (`arrival + Δ⁽¹⁾`). Smaller is more dominant.
    pub fn crossing_time(&self) -> f64 {
        self.arrival + self.d1
    }
}

/// Sorts events by dominance (most dominant first).
///
/// Ties (identical crossing times) keep their original relative order, which
/// mirrors the paper's observation that for identical simultaneous inputs
/// "our algorithm will identify one of the inputs as the dominant one and
/// proceed" — the correction term then absorbs the resulting error.
pub fn rank_by_dominance(mut events: Vec<RankedEvent>) -> Vec<RankedEvent> {
    events.sort_by(|a, b| a.crossing_time().total_cmp(&b.crossing_time()));
    events
}

/// Ranks events for a scenario with causing rank `k` (see
/// [`crate::measure::causing_rank`]).
///
/// The paper derives dominance for parallel (OR-like) conduction, where the
/// *earliest* single-input crossing dominates — that is `k = 1` and this
/// reduces to [`rank_by_dominance`]. For series (AND-like) conduction the
/// output is gated by the *latest* crossing (Fig. 1-2(c): delay decreases
/// with separation for rising NAND inputs), so the dominant input is the
/// latest crossing; generally the dominant is the `k`-th smallest crossing,
/// and the remaining inputs are ordered by temporal closeness to it —
/// closeness is what sets the strength of the proximity perturbation.
///
/// # Panics
///
/// Panics if `k` is not in `1..=events.len()`.
pub fn rank_for_scenario(events: Vec<RankedEvent>, k: usize) -> Vec<RankedEvent> {
    assert!(k >= 1 && k <= events.len(), "causing rank out of range");
    let sorted = rank_by_dominance(events);
    if k == 1 {
        return sorted;
    }
    let dom = sorted[k - 1];
    let dom_cross = dom.crossing_time();
    let mut rest: Vec<RankedEvent> = sorted
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| i != k - 1)
        .map(|(_, e)| e)
        .collect();
    rest.sort_by(|a, b| {
        let da = (a.crossing_time() - dom_cross).abs();
        let db = (b.crossing_time() - dom_cross).abs();
        da.total_cmp(&db)
    });
    let mut out = Vec::with_capacity(rest.len() + 1);
    out.push(dom);
    out.extend(rest);
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use proxim_numeric::pwl::Edge;

    fn ev(pin: usize, arrival: f64, d1: f64) -> RankedEvent {
        RankedEvent {
            event: InputEvent::new(pin, Edge::Rising, arrival, 100e-12),
            arrival,
            d1,
            t1: 100e-12,
        }
    }

    #[test]
    fn later_but_faster_input_dominates() {
        // a arrives first but responds slowly; b arrives 50 ps later with a
        // 200 ps faster response: b dominates (the paper's Figure 3-2).
        let a = ev(0, 0.0, 500e-12);
        let b = ev(1, 50e-12, 250e-12);
        let ranked = rank_by_dominance(vec![a, b]);
        assert_eq!(ranked[0].event.pin, 1);
        assert_eq!(ranked[1].event.pin, 0);
    }

    #[test]
    fn crossover_at_delay_difference() {
        // Dominance flips exactly when s_ab = Δ_a - Δ_b.
        let d_a = 500e-12;
        let d_b = 250e-12;
        let boundary = d_a - d_b;
        let a = ev(0, 0.0, d_a);
        let before = rank_by_dominance(vec![a, ev(1, boundary - 1e-15, d_b)]);
        assert_eq!(before[0].event.pin, 1, "just inside: b still dominates");
        let after = rank_by_dominance(vec![a, ev(1, boundary + 1e-15, d_b)]);
        assert_eq!(after[0].event.pin, 0, "just past: a dominates");
    }

    #[test]
    fn ties_preserve_input_order() {
        let ranked = rank_by_dominance(vec![ev(2, 0.0, 100e-12), ev(7, 0.0, 100e-12)]);
        assert_eq!(ranked[0].event.pin, 2);
        assert_eq!(ranked[1].event.pin, 7);
    }

    #[test]
    fn ranking_is_permutation_invariant() {
        let evs = vec![
            ev(0, 0.0, 300e-12),
            ev(1, 100e-12, 100e-12),
            ev(2, 50e-12, 400e-12),
        ];
        let mut reversed = evs.clone();
        reversed.reverse();
        let r1: Vec<usize> = rank_by_dominance(evs).iter().map(|r| r.event.pin).collect();
        let r2: Vec<usize> = rank_by_dominance(reversed)
            .iter()
            .map(|r| r.event.pin)
            .collect();
        assert_eq!(r1, r2);
    }
}
