//! A parser for ISCAS-style `.bench` netlists.
//!
//! The accepted grammar (case-insensitive keywords, `#` comments):
//!
//! ```text
//! # c17
//! INPUT(1)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! Gate types are resolved to library cells through a caller-provided
//! resolver, so the parser stays independent of which cells were
//! characterized. `NOT`/`INV`, `NAND`, `NOR`, `AOI21`, `OAI21` are the
//! type names the bundled resolver in [`crate::library`] users typically
//! map.

use crate::library::CellId;
use crate::netlist::{GateNetlist, NetId};
use std::fmt;

/// The error returned by [`parse_bench`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchError {
    /// 1-based line number.
    pub line: usize,
    what: String,
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bench parse error at line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ParseBenchError {}

/// The parsed design.
#[derive(Debug, Clone)]
pub struct ParsedBench {
    /// The structural netlist.
    pub netlist: GateNetlist,
    /// Primary inputs, in declaration order.
    pub inputs: Vec<NetId>,
    /// Primary outputs, in declaration order.
    pub outputs: Vec<NetId>,
}

fn err(line: usize, what: impl Into<String>) -> ParseBenchError {
    ParseBenchError {
        line,
        what: what.into(),
    }
}

/// Parses a `.bench` netlist. `resolve(gate_type, fan_in)` maps a gate
/// keyword (upper-cased, e.g. `"NAND"`) and its fan-in to a library cell.
///
/// # Errors
///
/// Returns [`ParseBenchError`] on malformed lines, unknown gate types, or
/// structural problems (validated via [`GateNetlist::topo_order`]).
pub fn parse_bench(
    text: &str,
    mut resolve: impl FnMut(&str, usize) -> Option<CellId>,
) -> Result<ParsedBench, ParseBenchError> {
    let mut netlist = GateNetlist::new();
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut gate_count = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if let Some(rest) = upper.strip_prefix("INPUT") {
            let name = paren_arg(rest, line, line_no)?;
            let net = netlist.net(&name);
            netlist.mark_primary_input(net);
            inputs.push(net);
            continue;
        }
        if let Some(rest) = upper.strip_prefix("OUTPUT") {
            let name = paren_arg(rest, line, line_no)?;
            outputs.push(netlist.net(&name));
            continue;
        }
        // `lhs = TYPE(arg, ...)`
        let Some((lhs, rhs)) = line.split_once('=') else {
            return Err(err(
                line_no,
                format!("expected `net = GATE(...)`, got {line:?}"),
            ));
        };
        let out_name = lhs.trim();
        if out_name.is_empty() {
            return Err(err(line_no, "empty output net name"));
        }
        let rhs = rhs.trim();
        let Some(open) = rhs.find('(') else {
            return Err(err(line_no, "missing `(` in gate expression"));
        };
        if !rhs.ends_with(')') {
            return Err(err(line_no, "missing `)` in gate expression"));
        }
        let gate_type = rhs[..open].trim().to_ascii_uppercase();
        let args: Vec<&str> = rhs[open + 1..rhs.len() - 1]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if args.is_empty() {
            return Err(err(line_no, "gate has no inputs"));
        }
        let Some(cell) = resolve(&gate_type, args.len()) else {
            return Err(err(
                line_no,
                format!("no library cell for {gate_type}/{}", args.len()),
            ));
        };
        let input_nets: Vec<NetId> = args.iter().map(|a| netlist.net(a)).collect();
        let out_net = netlist.net(out_name);
        gate_count += 1;
        netlist.add_gate(
            &format!("g{gate_count}_{out_name}"),
            cell,
            &input_nets,
            out_net,
        );
    }

    netlist.topo_order().map_err(|e| err(0, e.to_string()))?;
    for &po in &outputs {
        if netlist.driver_of(po).is_none() && !netlist.primary_inputs().contains(&po) {
            return Err(err(
                0,
                format!("output {} is undriven", netlist.net_name(po)),
            ));
        }
    }
    Ok(ParsedBench {
        netlist,
        inputs,
        outputs,
    })
}

fn paren_arg(rest: &str, original: &str, line: usize) -> Result<String, ParseBenchError> {
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| err(line, format!("expected `(name)` in {original:?}")))?;
    let name = inner.trim();
    if name.is_empty() {
        return Err(err(line, "empty net name"));
    }
    // Preserve the original casing of the net name.
    let malformed = || err(line, format!("expected `(name)` in {original:?}"));
    let start = original.find('(').ok_or_else(malformed)? + 1;
    let end = original.rfind(')').ok_or_else(malformed)?;
    Ok(original[start..end].trim().to_string())
}

/// The ISCAS-85 C17 benchmark in bench format, for tests and demos.
pub const C17_BENCH: &str = "\
# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn nand_only(ty: &str, fanin: usize) -> Option<CellId> {
        (ty == "NAND" && fanin == 2).then_some(CellId(0))
    }

    #[test]
    fn parses_c17() {
        let p = parse_bench(C17_BENCH, nand_only).unwrap();
        assert_eq!(p.inputs.len(), 5);
        assert_eq!(p.outputs.len(), 2);
        assert_eq!(p.netlist.gates().len(), 6);
        assert!(p.netlist.topo_order().is_ok());
        // Same structure as the programmatic builder.
        let (built, pis, pos) = crate::circuits::c17(CellId(0));
        assert_eq!(p.netlist.gates().len(), built.gates().len());
        assert_eq!(p.inputs.len(), pis.len());
        assert_eq!(p.outputs.len(), pos.len());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "
# a comment
INPUT(a)   # trailing comment

OUTPUT(y)
y = NAND(a, a)
";
        let p = parse_bench(text, nand_only).unwrap();
        assert_eq!(p.inputs.len(), 1);
        assert_eq!(p.netlist.gates().len(), 1);
    }

    #[test]
    fn mixed_case_keywords_accepted() {
        let text = "input(x)\noutput(y)\ny = nand(x, x)\n";
        let p = parse_bench(text, nand_only).unwrap();
        assert_eq!(p.netlist.net_name(p.inputs[0]), "x");
    }

    #[test]
    fn unknown_gate_type_reports_line() {
        let text = "INPUT(a)\ny = XOR(a, a)\n";
        let e = parse_bench(text, nand_only).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("XOR"));
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in [
            "INPUT a",
            "y = NAND(a, b",
            "y NAND(a)",
            "= NAND(a)",
            "y = NAND()",
        ] {
            let text = format!("INPUT(a)\nINPUT(b)\n{bad}\n");
            assert!(parse_bench(&text, nand_only).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn undriven_output_rejected() {
        let text = "INPUT(a)\nOUTPUT(ghost)\ny = NAND(a, a)\n";
        assert!(parse_bench(text, nand_only).is_err());
    }

    #[test]
    fn cyclic_bench_rejected() {
        let text = "INPUT(a)\nx = NAND(y, a)\ny = NAND(x, a)\n";
        assert!(parse_bench(text, nand_only).is_err());
    }
}
