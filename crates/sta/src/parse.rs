//! A parser for ISCAS-style `.bench` netlists.
//!
//! The accepted grammar (case-insensitive keywords, `#` comments):
//!
//! ```text
//! # c17
//! INPUT(1)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! Gate types are resolved to library cells through a caller-provided
//! resolver, so the parser stays independent of which cells were
//! characterized. `NOT`/`INV`, `NAND`, `NOR`, `AOI21`, `OAI21` are the
//! type names the bundled resolver in [`crate::library`] users typically
//! map.

use crate::library::CellId;
use crate::netlist::{GateNetlist, NetId};
use std::fmt;

/// The error returned by [`parse_bench`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchError {
    /// 1-based line number; `0` for whole-design problems (cycles,
    /// undriven outputs, an input over the size limit) with no single
    /// offending line.
    pub line: usize,
    /// 1-based column (in characters) of the offending token within its
    /// line; `1` when the error has no sharper position.
    pub column: usize,
    what: String,
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "bench parse error: {}", self.what)
        } else {
            write!(
                f,
                "bench parse error at line {}, column {}: {}",
                self.line, self.column, self.what
            )
        }
    }
}

impl std::error::Error for ParseBenchError {}

/// Upper bound on accepted `.bench` text. The largest ISCAS/ITC designs
/// are well under a megabyte; bounding the input keeps an adversarial file
/// from committing the parser to gigabytes of net-name allocations.
pub const MAX_BENCH_BYTES: usize = 4 * 1024 * 1024;

/// Upper bound on a single net-name or gate-type identifier.
pub const MAX_NAME_LEN: usize = 256;

/// The parsed design.
#[derive(Debug, Clone)]
pub struct ParsedBench {
    /// The structural netlist.
    pub netlist: GateNetlist,
    /// Primary inputs, in declaration order.
    pub inputs: Vec<NetId>,
    /// Primary outputs, in declaration order.
    pub outputs: Vec<NetId>,
}

fn err(line: usize, what: impl Into<String>) -> ParseBenchError {
    ParseBenchError {
        line,
        column: 1,
        what: what.into(),
    }
}

fn err_at(line: usize, column: usize, what: impl Into<String>) -> ParseBenchError {
    ParseBenchError {
        line,
        column,
        what: what.into(),
    }
}

/// 1-based character column of `token` within `raw`, for tokens that are
/// subslices of `raw` (plain pointer arithmetic on the slice bounds — no
/// `unsafe`). Falls back to column 1 when `token` is not a subslice.
fn col_in(raw: &str, token: &str) -> usize {
    let off = (token.as_ptr() as usize).wrapping_sub(raw.as_ptr() as usize);
    if off <= raw.len() && raw.is_char_boundary(off) {
        raw[..off].chars().count() + 1
    } else {
        1
    }
}

/// Enforces [`MAX_NAME_LEN`] on one identifier, pointing at its column.
fn check_name(name: &str, raw: &str, line: usize) -> Result<(), ParseBenchError> {
    if name.len() > MAX_NAME_LEN {
        return Err(err_at(
            line,
            col_in(raw, name),
            format!(
                "identifier of {} bytes exceeds the {MAX_NAME_LEN}-byte limit",
                name.len()
            ),
        ));
    }
    Ok(())
}

/// Parses a `.bench` netlist. `resolve(gate_type, fan_in)` maps a gate
/// keyword (upper-cased, e.g. `"NAND"`) and its fan-in to a library cell.
///
/// # Errors
///
/// Returns [`ParseBenchError`] on malformed lines, unknown gate types, or
/// structural problems (validated via [`GateNetlist::topo_order`]).
pub fn parse_bench(
    text: &str,
    mut resolve: impl FnMut(&str, usize) -> Option<CellId>,
) -> Result<ParsedBench, ParseBenchError> {
    if text.len() > MAX_BENCH_BYTES {
        return Err(err(
            0,
            format!(
                "input is {} bytes, over the {MAX_BENCH_BYTES}-byte limit",
                text.len()
            ),
        ));
    }
    let mut netlist = GateNetlist::new();
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut gate_count = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if upper.starts_with("INPUT") {
            let name = paren_arg(&line["INPUT".len()..], line, raw, line_no)?;
            check_name(name, raw, line_no)?;
            let net = netlist.net(name);
            netlist.mark_primary_input(net);
            inputs.push(net);
            continue;
        }
        if upper.starts_with("OUTPUT") {
            let name = paren_arg(&line["OUTPUT".len()..], line, raw, line_no)?;
            check_name(name, raw, line_no)?;
            outputs.push(netlist.net(name));
            continue;
        }
        // `lhs = TYPE(arg, ...)`
        let Some((lhs, rhs)) = line.split_once('=') else {
            return Err(err_at(
                line_no,
                col_in(raw, line),
                format!("expected `net = GATE(...)`, got {line:?}"),
            ));
        };
        let out_name = lhs.trim();
        if out_name.is_empty() {
            return Err(err_at(line_no, col_in(raw, line), "empty output net name"));
        }
        check_name(out_name, raw, line_no)?;
        let rhs = rhs.trim();
        let Some(open) = rhs.find('(') else {
            return Err(err_at(
                line_no,
                col_in(raw, rhs),
                "missing `(` in gate expression",
            ));
        };
        if !rhs.ends_with(')') {
            return Err(err_at(
                line_no,
                col_in(raw, rhs) + rhs.chars().count().saturating_sub(1),
                "missing `)` in gate expression",
            ));
        }
        let type_token = rhs[..open].trim();
        check_name(type_token, raw, line_no)?;
        let gate_type = type_token.to_ascii_uppercase();
        let args: Vec<&str> = rhs[open + 1..rhs.len() - 1]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if args.is_empty() {
            return Err(err_at(
                line_no,
                col_in(raw, &rhs[open..]),
                "gate has no inputs",
            ));
        }
        let Some(cell) = resolve(&gate_type, args.len()) else {
            return Err(err_at(
                line_no,
                col_in(raw, type_token),
                format!("no library cell for {gate_type}/{}", args.len()),
            ));
        };
        let mut input_nets = Vec::with_capacity(args.len());
        for a in &args {
            check_name(a, raw, line_no)?;
            input_nets.push(netlist.net(a));
        }
        let out_net = netlist.net(out_name);
        gate_count += 1;
        netlist.add_gate(
            &format!("g{gate_count}_{out_name}"),
            cell,
            &input_nets,
            out_net,
        );
    }

    netlist.topo_order().map_err(|e| err(0, e.to_string()))?;
    for &po in &outputs {
        if netlist.driver_of(po).is_none() && !netlist.primary_inputs().contains(&po) {
            return Err(err(
                0,
                format!("output {} is undriven", netlist.net_name(po)),
            ));
        }
    }
    Ok(ParsedBench {
        netlist,
        inputs,
        outputs,
    })
}

fn paren_arg<'a>(
    rest: &'a str,
    original: &str,
    raw: &str,
    line: usize,
) -> Result<&'a str, ParseBenchError> {
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| {
            err_at(
                line,
                col_in(raw, rest),
                format!("expected `(name)` in {original:?}"),
            )
        })?;
    let name = inner.trim();
    if name.is_empty() {
        return Err(err_at(line, col_in(raw, inner), "empty net name"));
    }
    Ok(name)
}

/// The ISCAS-85 C17 benchmark in bench format, for tests and demos.
pub const C17_BENCH: &str = "\
# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn nand_only(ty: &str, fanin: usize) -> Option<CellId> {
        (ty == "NAND" && fanin == 2).then_some(CellId(0))
    }

    #[test]
    fn parses_c17() {
        let p = parse_bench(C17_BENCH, nand_only).unwrap();
        assert_eq!(p.inputs.len(), 5);
        assert_eq!(p.outputs.len(), 2);
        assert_eq!(p.netlist.gates().len(), 6);
        assert!(p.netlist.topo_order().is_ok());
        // Same structure as the programmatic builder.
        let (built, pis, pos) = crate::circuits::c17(CellId(0));
        assert_eq!(p.netlist.gates().len(), built.gates().len());
        assert_eq!(p.inputs.len(), pis.len());
        assert_eq!(p.outputs.len(), pos.len());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "
# a comment
INPUT(a)   # trailing comment

OUTPUT(y)
y = NAND(a, a)
";
        let p = parse_bench(text, nand_only).unwrap();
        assert_eq!(p.inputs.len(), 1);
        assert_eq!(p.netlist.gates().len(), 1);
    }

    #[test]
    fn mixed_case_keywords_accepted() {
        let text = "input(x)\noutput(y)\ny = nand(x, x)\n";
        let p = parse_bench(text, nand_only).unwrap();
        assert_eq!(p.netlist.net_name(p.inputs[0]), "x");
    }

    #[test]
    fn unknown_gate_type_reports_line() {
        let text = "INPUT(a)\ny = XOR(a, a)\n";
        let e = parse_bench(text, nand_only).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("XOR"));
    }

    #[test]
    fn errors_carry_column_of_offending_token() {
        // The unknown gate type starts at column 5 of `y = XOR(a, a)`.
        let e = parse_bench("INPUT(a)\ny = XOR(a, a)\n", nand_only).unwrap_err();
        assert_eq!((e.line, e.column), (2, 5), "{e}");
        assert!(e.to_string().contains("line 2, column 5"), "{e}");

        // A missing `)` points at the last character of the expression.
        let e = parse_bench("INPUT(a)\ny = NAND(a, a\n", nand_only).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.column > 1, "{e}");

        // Indentation shifts the reported column accordingly.
        let e = parse_bench("INPUT(a)\n   y = XOR(a, a)\n", nand_only).unwrap_err();
        assert_eq!((e.line, e.column), (2, 8), "{e}");
    }

    #[test]
    fn oversized_input_rejected_without_parsing() {
        let text = "#".repeat(MAX_BENCH_BYTES + 1);
        let e = parse_bench(&text, nand_only).unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.to_string().contains("limit"), "{e}");
    }

    #[test]
    fn overlong_identifier_rejected() {
        let long = "n".repeat(MAX_NAME_LEN + 1);
        for text in [
            format!("INPUT({long})\n"),
            format!("INPUT(a)\n{long} = NAND(a, a)\n"),
            format!("INPUT(a)\ny = NAND(a, {long})\n"),
        ] {
            let e = parse_bench(&text, nand_only).unwrap_err();
            assert!(e.to_string().contains("limit"), "{e}");
        }
        // Exactly at the limit is fine.
        let ok = "o".repeat(MAX_NAME_LEN);
        let text = format!("INPUT({ok})\ny = NAND({ok}, {ok})\n");
        parse_bench(&text, nand_only).unwrap();
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in [
            "INPUT a",
            "y = NAND(a, b",
            "y NAND(a)",
            "= NAND(a)",
            "y = NAND()",
        ] {
            let text = format!("INPUT(a)\nINPUT(b)\n{bad}\n");
            assert!(parse_bench(&text, nand_only).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn undriven_output_rejected() {
        let text = "INPUT(a)\nOUTPUT(ghost)\ny = NAND(a, a)\n";
        assert!(parse_bench(text, nand_only).is_err());
    }

    #[test]
    fn cyclic_bench_rejected() {
        let text = "INPUT(a)\nx = NAND(y, a)\ny = NAND(x, a)\n";
        assert!(parse_bench(text, nand_only).is_err());
    }
}
