//! Proximity-aware static timing analysis.
//!
//! Conventional gate-level timing assumes one switching input per gate. The
//! paper's motivation is that multi-input proximity changes gate delay
//! substantially; this crate demonstrates the downstream effect: a small
//! event-style timing engine over combinational [`netlist::GateNetlist`]s
//! where every multi-input gate is evaluated with the characterized
//! [`proxim_model::ProximityModel`] on the *actual* arrival times and
//! transition times of its input pins. The classic single-switching-input
//! model is available as a [`timing::DelayMode`] for comparison.
//!
//! # Example
//!
//! ```no_run
//! use proxim_cells::{Cell, Technology};
//! use proxim_model::characterize::CharacterizeOptions;
//! use proxim_model::ProximityModel;
//! use proxim_sta::circuits::ripple_carry_adder;
//! use proxim_sta::library::TimingLibrary;
//! use proxim_sta::timing::{DelayMode, PiAssignment, Sta};
//! use proxim_numeric::pwl::Edge;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::demo_5v();
//! let model = ProximityModel::characterize(
//!     &Cell::nand(2), &tech, &CharacterizeOptions::default())?;
//! let mut library = TimingLibrary::new();
//! let nand2 = library.add(model);
//!
//! let (netlist, inputs, outputs) = ripple_carry_adder(nand2, 4);
//! let sta = Sta::new(&library, &netlist);
//! let assignments: Vec<PiAssignment> = inputs
//!     .iter()
//!     .map(|&net| PiAssignment::switching(net, Edge::Rising, 0.0, 200e-12))
//!     .collect();
//! let report = sta.run(&assignments, DelayMode::Proximity)?;
//! for &po in &outputs {
//!     if let Some(ev) = report.net_event(po) {
//!         println!("{po:?} arrives at {:.1} ps", ev.arrival * 1e12);
//!     }
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod circuits;
pub mod elaborate;
pub mod library;
pub mod netlist;
pub mod parse;
pub mod timing;

pub use elaborate::{elaborate_flat, FlatCircuit};
pub use library::{CellId, TimingLibrary};
pub use netlist::{GateNetlist, NetId};
pub use parse::{parse_bench, ParsedBench};
pub use timing::{DelayMode, PiAssignment, Sta, TimingReport};
