//! The timing library: characterized models shared by gate instances.

use proxim_model::ProximityModel;

/// A handle to a library cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub(crate) usize);

impl CellId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A collection of characterized proximity models, one per cell type.
///
/// Characterization is expensive, so the library is built once and shared by
/// every gate instance of the same type.
#[derive(Debug, Clone, Default)]
pub struct TimingLibrary {
    models: Vec<ProximityModel>,
}

impl TimingLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a characterized model, returning its handle.
    pub fn add(&mut self, model: ProximityModel) -> CellId {
        self.models.push(model);
        CellId(self.models.len() - 1)
    }

    /// The model for a cell.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this library.
    pub fn model(&self, id: CellId) -> &ProximityModel {
        &self.models[id.0]
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_library() {
        let lib = TimingLibrary::new();
        assert!(lib.is_empty());
        assert_eq!(lib.len(), 0);
    }
}
