//! Flat transistor-level elaboration of gate netlists.
//!
//! Timing models are only as good as their composition across a path. This
//! module expands an entire [`GateNetlist`] into one transistor-level
//! [`Circuit`] — every gate instantiated from its library cell, every net a
//! real node carrying the gate capacitance of its fanout — so a whole-path
//! golden simulation can judge the gate-by-gate timing engine.

use crate::library::TimingLibrary;
use crate::netlist::{GateNetlist, NetId, NetlistError};
use crate::timing::PiAssignment;
use proxim_cells::Technology;
use proxim_spice::circuit::{Circuit, NodeId, Waveform};

/// A flattened netlist: the transistor circuit plus the net→node map.
#[derive(Debug, Clone)]
pub struct FlatCircuit {
    /// The elaborated transistor-level circuit.
    pub circuit: Circuit,
    /// The circuit node of each net (indexed by [`NetId`]).
    pub net_nodes: Vec<NodeId>,
    /// The names of the primary-input voltage sources, as `(net, source)`.
    pub pi_sources: Vec<(NetId, String)>,
    /// The supply node.
    pub vdd: NodeId,
    /// The supply voltage.
    pub vdd_volts: f64,
}

impl FlatCircuit {
    /// Applies primary-input assignments as source waveforms: stable levels
    /// become DC values, switching assignments become rail-to-rail ramps.
    ///
    /// # Panics
    ///
    /// Panics if an assignment refers to a net that is not a primary input.
    pub fn apply_assignments(&mut self, assignments: &[PiAssignment]) {
        for a in assignments {
            let src = &self
                .pi_sources
                .iter()
                .find(|(net, _)| *net == a.net)
                .unwrap_or_else(|| panic!("net {:?} is not a primary input", a.net))
                .1;
            let wave = match a.event {
                None => Waveform::Dc(if a.initial { self.vdd_volts } else { 0.0 }),
                Some((edge, t_start, tt)) => {
                    let (v0, v1) = match edge {
                        proxim_numeric::pwl::Edge::Rising => (0.0, self.vdd_volts),
                        proxim_numeric::pwl::Edge::Falling => (self.vdd_volts, 0.0),
                    };
                    Waveform::ramp(t_start.max(1e-12), tt, v0, v1)
                }
            };
            self.circuit.set_vsource(src, wave);
        }
    }
}

/// Flattens a gate netlist into one transistor-level circuit.
///
/// Primary inputs are driven by voltage sources named `V_<net name>`
/// (initialized to 0 V — use [`FlatCircuit::apply_assignments`]); sink nets
/// carry `po_load` farads in addition to the gate capacitance of any
/// fanout.
///
/// # Errors
///
/// Returns [`NetlistError`] if the netlist fails validation.
pub fn elaborate_flat(
    netlist: &GateNetlist,
    library: &TimingLibrary,
    tech: &Technology,
    po_load: f64,
) -> Result<FlatCircuit, NetlistError> {
    netlist.topo_order()?; // structural validation

    let mut circuit = Circuit::new();
    let vdd = circuit.node("vdd");
    circuit.vsource("VDD", vdd, Circuit::GND, Waveform::Dc(tech.vdd));

    // One node per net, named after the net.
    let net_nodes: Vec<NodeId> = (0..netlist.net_count())
        .map(|i| {
            let id = NetId(i);
            circuit.node(&format!("n_{}", netlist.net_name(id)))
        })
        .collect();

    // Primary-input drivers.
    let mut pi_sources = Vec::new();
    for &pi in netlist.primary_inputs() {
        let src = format!("V_{}", netlist.net_name(pi));
        circuit.vsource(&src, net_nodes[pi.index()], Circuit::GND, Waveform::Dc(0.0));
        pi_sources.push((pi, src));
    }

    // Gate instances.
    for (gi, gate) in netlist.gates().iter().enumerate() {
        let cell = library.model(gate.cell).cell();
        let inputs: Vec<NodeId> = gate.inputs.iter().map(|&n| net_nodes[n.index()]).collect();
        cell.elaborate_into(
            &mut circuit,
            tech,
            &format!("g{gi}"),
            vdd,
            &inputs,
            net_nodes[gate.output.index()],
        );
    }

    // Primary-output loads.
    for po in netlist.sink_nets() {
        circuit.capacitor(
            &format!("CL_{}", netlist.net_name(po)),
            net_nodes[po.index()],
            Circuit::GND,
            po_load,
        );
    }

    Ok(FlatCircuit {
        circuit,
        net_nodes,
        pi_sources,
        vdd,
        vdd_volts: tech.vdd,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::circuits::full_adder;
    use crate::library::CellId;
    use proxim_cells::Cell;
    use proxim_model::characterize::CharacterizeOptions;
    use proxim_model::ProximityModel;
    use proxim_numeric::pwl::Edge;
    use proxim_spice::tran::TranOptions;
    use std::sync::OnceLock;

    fn library() -> &'static TimingLibrary {
        static LIB: OnceLock<TimingLibrary> = OnceLock::new();
        LIB.get_or_init(|| {
            let tech = Technology::demo_5v();
            let model =
                ProximityModel::characterize(&Cell::nand(2), &tech, &CharacterizeOptions::fast())
                    .expect("characterization succeeds");
            let mut lib = TimingLibrary::new();
            lib.add(model);
            lib
        })
    }

    #[test]
    fn flat_full_adder_has_expected_size() {
        let lib = library();
        let tech = Technology::demo_5v();
        let (nl, _, _) = full_adder(CellId(0));
        let flat = elaborate_flat(&nl, lib, &tech, 50e-15).unwrap();
        // 9 NAND2 gates x 4 transistors each, plus VDD + 3 PI sources.
        assert_eq!(flat.circuit.vsource_count(), 4);
        // Nodes: 12 nets + vdd + gnd + 9 internal stack nodes.
        assert!(
            flat.circuit.node_count() >= 12 + 2 + 9,
            "{}",
            flat.circuit.node_count()
        );
    }

    #[test]
    fn flat_full_adder_computes_logic_in_dc() {
        let lib = library();
        let tech = Technology::demo_5v();
        let (nl, ins, outs) = full_adder(CellId(0));
        // a=1, b=0, cin=1 -> sum=0, cout=1.
        let mut flat = elaborate_flat(&nl, lib, &tech, 50e-15).unwrap();
        flat.apply_assignments(&[
            PiAssignment::stable(ins[0], true),
            PiAssignment::stable(ins[1], false),
            PiAssignment::stable(ins[2], true),
        ]);
        let op = flat.circuit.dc_op().expect("dc converges");
        let v_sum = op.voltage(flat.net_nodes[outs[0].index()]);
        let v_cout = op.voltage(flat.net_nodes[outs[1].index()]);
        assert!(v_sum < 0.1 * tech.vdd, "sum = {v_sum}");
        assert!(v_cout > 0.9 * tech.vdd, "cout = {v_cout}");
    }

    #[test]
    fn flat_transient_propagates_a_transition() {
        let lib = library();
        let tech = Technology::demo_5v();
        let (nl, ins, outs) = full_adder(CellId(0));
        let mut flat = elaborate_flat(&nl, lib, &tech, 50e-15).unwrap();
        // a rises with b=0, cin=1: sum falls (1 -> 0).
        flat.apply_assignments(&[
            PiAssignment::switching(ins[0], Edge::Rising, 0.3e-9, 300e-12),
            PiAssignment::stable(ins[1], false),
            PiAssignment::stable(ins[2], true),
        ]);
        let r = flat
            .circuit
            .tran(&TranOptions::to(15e-9))
            .expect("transient runs");
        let w = r.waveform(flat.net_nodes[outs[0].index()]);
        assert!(w.eval(0.1e-9) > 4.5, "sum starts high");
        assert!(w.eval(14e-9) < 0.5, "sum ends low");
        assert!(w.first_falling_crossing(2.5).is_some());
    }
}
