//! Gate-level combinational netlists.

use crate::library::CellId;
use std::collections::HashMap;
use std::fmt;

/// A handle to a net (a wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Instance name.
    pub name: String,
    /// Library cell.
    pub cell: CellId,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
}

/// The error returned by netlist validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistError {
    what: String,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid netlist: {}", self.what)
    }
}

impl std::error::Error for NetlistError {}

/// A combinational gate-level netlist.
#[derive(Debug, Clone, Default)]
pub struct GateNetlist {
    net_names: Vec<String>,
    net_index: HashMap<String, NetId>,
    gates: Vec<Gate>,
    primary_inputs: Vec<NetId>,
}

impl GateNetlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the net with the given name, creating it if absent.
    pub fn net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.net_index.get(name) {
            return id;
        }
        let id = NetId(self.net_names.len());
        self.net_names.push(name.to_string());
        self.net_index.insert(name.to_string(), id);
        id
    }

    /// The name of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net does not belong to this netlist.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.0]
    }

    /// Marks a net as a primary input.
    pub fn mark_primary_input(&mut self, net: NetId) {
        if !self.primary_inputs.contains(&net) {
            self.primary_inputs.push(net);
        }
    }

    /// Adds a gate instance.
    pub fn add_gate(&mut self, name: &str, cell: CellId, inputs: &[NetId], output: NetId) {
        self.gates.push(Gate {
            name: name.to_string(),
            cell,
            inputs: inputs.to_vec(),
            output,
        });
    }

    /// The gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The primary inputs.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Nets not driving any gate input (candidate primary outputs).
    pub fn sink_nets(&self) -> Vec<NetId> {
        let mut used = vec![false; self.net_count()];
        for g in &self.gates {
            for &i in &g.inputs {
                used[i.0] = true;
            }
        }
        (0..self.net_count())
            .map(NetId)
            .filter(|n| !used[n.0] && self.gates.iter().any(|g| g.output == *n))
            .collect()
    }

    /// Validates structure and returns the gates in topological order
    /// (indices into [`GateNetlist::gates`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] on multiply-driven nets, undriven non-PI
    /// gate inputs, or combinational cycles.
    pub fn topo_order(&self) -> Result<Vec<usize>, NetlistError> {
        let mut driver: Vec<Option<usize>> = vec![None; self.net_count()];
        for (gi, g) in self.gates.iter().enumerate() {
            if driver[g.output.0].is_some() {
                return Err(NetlistError {
                    what: format!("net {} driven more than once", self.net_name(g.output)),
                });
            }
            if self.primary_inputs.contains(&g.output) {
                return Err(NetlistError {
                    what: format!(
                        "primary input {} is driven by a gate",
                        self.net_name(g.output)
                    ),
                });
            }
            driver[g.output.0] = Some(gi);
        }
        for g in &self.gates {
            for &i in &g.inputs {
                if driver[i.0].is_none() && !self.primary_inputs.contains(&i) {
                    return Err(NetlistError {
                        what: format!(
                            "gate {} input {} is neither driven nor a primary input",
                            g.name,
                            self.net_name(i)
                        ),
                    });
                }
            }
        }

        // Kahn's algorithm over gate dependencies.
        let mut indegree = vec![0usize; self.gates.len()];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); self.gates.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            for &i in &g.inputs {
                if let Some(src) = driver[i.0] {
                    indegree[gi] += 1;
                    fanout[src].push(gi);
                }
            }
        }
        let mut queue: Vec<usize> = (0..self.gates.len())
            .filter(|&g| indegree[g] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        while let Some(g) = queue.pop() {
            order.push(g);
            for &f in &fanout[g] {
                indegree[f] -= 1;
                if indegree[f] == 0 {
                    queue.push(f);
                }
            }
        }
        if order.len() != self.gates.len() {
            return Err(NetlistError {
                what: "combinational cycle detected".into(),
            });
        }
        Ok(order)
    }

    /// The gate driving `net`, if any.
    pub fn driver_of(&self, net: NetId) -> Option<&Gate> {
        self.gates.iter().find(|g| g.output == net)
    }

    /// The gates with `net` on an input pin, as `(gate index, pin)` pairs.
    pub fn fanout_of(&self, net: NetId) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (gi, g) in self.gates.iter().enumerate() {
            for (pin, &i) in g.inputs.iter().enumerate() {
                if i == net {
                    out.push((gi, pin));
                }
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn two_gate_chain() -> (GateNetlist, NetId, NetId, NetId) {
        let mut nl = GateNetlist::new();
        let a = nl.net("a");
        let b = nl.net("b");
        let mid = nl.net("mid");
        let out = nl.net("out");
        nl.mark_primary_input(a);
        nl.mark_primary_input(b);
        nl.add_gate("g1", CellId(0), &[a, b], mid);
        nl.add_gate("g2", CellId(0), &[mid, b], out);
        (nl, a, mid, out)
    }

    #[test]
    fn nets_deduplicate() {
        let mut nl = GateNetlist::new();
        let a = nl.net("a");
        assert_eq!(nl.net("a"), a);
        assert_eq!(nl.net_name(a), "a");
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let (nl, _, _, _) = two_gate_chain();
        let order = nl.topo_order().unwrap();
        let pos1 = order.iter().position(|&g| g == 0).unwrap();
        let pos2 = order.iter().position(|&g| g == 1).unwrap();
        assert!(pos1 < pos2, "g1 must precede g2");
    }

    #[test]
    fn sink_nets_are_primary_outputs() {
        let (nl, _, _, out) = two_gate_chain();
        assert_eq!(nl.sink_nets(), vec![out]);
    }

    #[test]
    fn fanout_and_driver() {
        let (nl, a, mid, _) = two_gate_chain();
        assert_eq!(nl.fanout_of(a), vec![(0, 0)]);
        assert_eq!(nl.driver_of(mid).unwrap().name, "g1");
        assert!(nl.driver_of(a).is_none());
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut nl = GateNetlist::new();
        let a = nl.net("a");
        let out = nl.net("out");
        nl.mark_primary_input(a);
        nl.add_gate("g1", CellId(0), &[a], out);
        nl.add_gate("g2", CellId(0), &[a], out);
        assert!(nl.topo_order().is_err());
    }

    #[test]
    fn undriven_input_rejected() {
        let mut nl = GateNetlist::new();
        let ghost = nl.net("ghost");
        let out = nl.net("out");
        nl.add_gate("g1", CellId(0), &[ghost], out);
        assert!(nl.topo_order().is_err());
    }

    #[test]
    fn cycle_rejected() {
        let mut nl = GateNetlist::new();
        let a = nl.net("a");
        let b = nl.net("b");
        nl.add_gate("g1", CellId(0), &[b], a);
        nl.add_gate("g2", CellId(0), &[a], b);
        assert!(nl.topo_order().is_err());
    }
}
