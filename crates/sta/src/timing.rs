//! The timing engine: topological propagation of transitions with
//! proximity-aware gate evaluation.

use crate::library::TimingLibrary;
use crate::netlist::{GateNetlist, NetId, NetlistError};
use proxim_model::baseline::single_switching_timing_at_load;
use proxim_model::measure::InputEvent;
use proxim_model::{GateTiming, ModelError, ProximityModel};
use proxim_numeric::pwl::Edge;
use std::fmt;

/// Which delay model evaluates multi-input gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DelayMode {
    /// The paper's proximity composition (default).
    Proximity,
    /// Classic STA: only the causing input's single-input model.
    SingleInput,
}

/// A primary-input assignment: a stable level or one controlled transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiAssignment {
    /// The assigned net.
    pub net: NetId,
    /// Logic level before any transition.
    pub initial: bool,
    /// The transition, if the input switches.
    pub event: Option<(Edge, f64, f64)>,
}

impl PiAssignment {
    /// A stable primary input.
    pub fn stable(net: NetId, level: bool) -> Self {
        Self {
            net,
            initial: level,
            event: None,
        }
    }

    /// A switching primary input: a full-swing ramp starting at `t_start`
    /// with the given transition time. The initial level is implied by the
    /// edge.
    ///
    /// # Panics
    ///
    /// Panics if `transition_time` is not strictly positive.
    pub fn switching(net: NetId, edge: Edge, t_start: f64, transition_time: f64) -> Self {
        assert!(transition_time > 0.0, "transition time must be positive");
        Self {
            net,
            initial: edge == Edge::Falling,
            event: Some((edge, t_start, transition_time)),
        }
    }
}

/// One propagated transition on a net: a full-swing ramp description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetEvent {
    /// Transition direction.
    pub edge: Edge,
    /// Ramp start time, in seconds.
    pub t_start: f64,
    /// Full-swing transition time, in seconds.
    pub transition: f64,
    /// Threshold-crossing (arrival) time as measured by the driving gate's
    /// model, in seconds.
    pub arrival: f64,
}

impl NetEvent {
    fn to_input_event(self, pin: usize) -> InputEvent {
        InputEvent::new(pin, self.edge, self.t_start, self.transition)
    }
}

/// The error returned by a timing run.
#[derive(Debug, Clone, PartialEq)]
pub enum StaError {
    /// The netlist failed validation.
    Netlist(NetlistError),
    /// A gate evaluation failed.
    Model {
        /// The gate instance name.
        gate: String,
        /// The underlying model error.
        source: ModelError,
    },
    /// A gate input was never assigned a logic state.
    Unassigned {
        /// The net missing a state.
        net: String,
    },
    /// A gate's pin count does not match its library cell.
    PinMismatch {
        /// The gate instance name.
        gate: String,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Netlist(e) => write!(f, "{e}"),
            Self::Model { gate, source } => write!(f, "gate {gate}: {source}"),
            Self::Unassigned { net } => write!(f, "net {net} has no assigned state"),
            Self::PinMismatch { gate } => write!(f, "gate {gate} pin count mismatch"),
        }
    }
}

impl std::error::Error for StaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Netlist(e) => Some(e),
            Self::Model { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<NetlistError> for StaError {
    fn from(e: NetlistError) -> Self {
        Self::Netlist(e)
    }
}

/// The result of a timing run.
#[derive(Debug, Clone)]
pub struct TimingReport {
    events: Vec<Option<NetEvent>>,
    levels: Vec<Option<(bool, bool)>>,
    /// Per-net: the input net of the driving gate whose event the output
    /// delay was referenced to (the dominant/causing pin's net).
    cause: Vec<Option<NetId>>,
    mode: DelayMode,
    sink_nets: Vec<NetId>,
}

impl TimingReport {
    /// The transition on a net, if it switches.
    pub fn net_event(&self, net: NetId) -> Option<NetEvent> {
        self.events.get(net.index()).copied().flatten()
    }

    /// The `(initial, final)` logic levels of a net.
    pub fn net_levels(&self, net: NetId) -> Option<(bool, bool)> {
        self.levels.get(net.index()).copied().flatten()
    }

    /// The delay mode that produced this report.
    pub fn mode(&self) -> DelayMode {
        self.mode
    }

    /// The latest arrival over the sink (primary output) nets, with the net,
    /// or `None` if no output switches.
    pub fn critical_arrival(&self) -> Option<(NetId, f64)> {
        self.sink_nets
            .iter()
            .filter_map(|&n| self.net_event(n).map(|e| (n, e.arrival)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The critical path: the chain of nets from a primary input to the
    /// latest-arriving output, following each gate's *reference* input (the
    /// dominant pin under the proximity model, the causing pin under the
    /// single-input model). Returned source-first.
    pub fn critical_path(&self) -> Vec<NetId> {
        let Some((end, _)) = self.critical_arrival() else {
            return Vec::new();
        };
        let mut path = vec![end];
        let mut cur = end;
        while let Some(prev) = self.cause.get(cur.index()).copied().flatten() {
            if path.contains(&prev) {
                break; // defensive: combinational netlists cannot loop
            }
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        path
    }

    /// Slack of every switching sink net against a required arrival time
    /// (positive = meets timing).
    pub fn sink_slacks(&self, required: f64) -> Vec<(NetId, f64)> {
        self.sink_nets
            .iter()
            .filter_map(|&n| self.net_event(n).map(|e| (n, required - e.arrival)))
            .collect()
    }

    /// The worst (smallest) sink slack, if any output switches.
    pub fn worst_slack(&self, required: f64) -> Option<f64> {
        self.sink_slacks(required)
            .into_iter()
            .map(|(_, s)| s)
            .min_by(|a, b| a.total_cmp(b))
    }
}

/// The static timing analyzer.
#[derive(Debug, Clone)]
pub struct Sta<'a> {
    library: &'a TimingLibrary,
    netlist: &'a GateNetlist,
}

impl<'a> Sta<'a> {
    /// Creates an analyzer over a library and netlist.
    pub fn new(library: &'a TimingLibrary, netlist: &'a GateNetlist) -> Self {
        Self { library, netlist }
    }

    /// The capacitive load on a net: the summed input capacitance of its
    /// fanout pins, or (for a sink net) the reference load of its driver's
    /// model.
    pub fn net_load(&self, net: NetId) -> f64 {
        let fanout = self.netlist.fanout_of(net);
        if fanout.is_empty() {
            return self
                .netlist
                .driver_of(net)
                .map(|g| self.library.model(g.cell).reference_load())
                .unwrap_or(0.0);
        }
        fanout
            .iter()
            .map(|&(gi, _)| {
                let m = self.library.model(self.netlist.gates()[gi].cell);
                m.cell().input_cap(m.tech())
            })
            .sum()
    }

    /// Runs timing propagation.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] on an invalid netlist, unassigned inputs, or a
    /// gate whose evaluation the model rejects.
    pub fn run(
        &self,
        assignments: &[PiAssignment],
        mode: DelayMode,
    ) -> Result<TimingReport, StaError> {
        let order = self.netlist.topo_order()?;
        let n_nets = self.netlist.net_count();
        let mut levels: Vec<Option<(bool, bool)>> = vec![None; n_nets];
        let mut events: Vec<Option<NetEvent>> = vec![None; n_nets];
        let mut cause: Vec<Option<NetId>> = vec![None; n_nets];

        for a in assignments {
            match a.event {
                None => levels[a.net.index()] = Some((a.initial, a.initial)),
                Some((edge, t_start, tt)) => {
                    let fin = edge == Edge::Rising;
                    levels[a.net.index()] = Some((!fin, fin));
                    // Arrival uses mid-swing until a driving model refines
                    // it; for PIs the first consuming gate re-measures from
                    // the ramp anyway.
                    events[a.net.index()] = Some(NetEvent {
                        edge,
                        t_start,
                        transition: tt,
                        arrival: t_start + 0.5 * tt,
                    });
                }
            }
        }

        for gi in order {
            let gate = &self.netlist.gates()[gi];
            let model = self.library.model(gate.cell);
            let cell = model.cell();
            if gate.inputs.len() != cell.input_count() {
                return Err(StaError::PinMismatch {
                    gate: gate.name.clone(),
                });
            }

            let mut initial = Vec::with_capacity(gate.inputs.len());
            let mut fin = Vec::with_capacity(gate.inputs.len());
            for &net in &gate.inputs {
                let Some((i0, i1)) = levels[net.index()] else {
                    return Err(StaError::Unassigned {
                        net: self.netlist.net_name(net).to_string(),
                    });
                };
                initial.push(i0);
                fin.push(i1);
            }
            let out0 = cell.output_for(&initial);
            let out1 = cell.output_for(&fin);
            levels[gate.output.index()] = Some((out0, out1));
            if out0 == out1 {
                continue;
            }

            // Collect switching pins. For inverting cells only one input
            // edge can produce the observed output edge; opposing events are
            // treated as stable at their final level (their own transition
            // belongs to a glitch the single-transition abstraction drops).
            let output_edge = if out0 { Edge::Falling } else { Edge::Rising };
            let relevant_edge = output_edge.opposite();
            let mut pin_events = Vec::new();
            let mut stable_levels: Vec<Option<bool>> = fin.iter().map(|&l| Some(l)).collect();
            for (pin, &net) in gate.inputs.iter().enumerate() {
                if initial[pin] == fin[pin] {
                    continue;
                }
                let ev = events[net.index()].ok_or_else(|| StaError::Unassigned {
                    net: self.netlist.net_name(net).to_string(),
                })?;
                if ev.edge == relevant_edge {
                    pin_events.push(ev.to_input_event(pin));
                    stable_levels[pin] = None;
                }
            }
            if pin_events.is_empty() {
                // Output flip attributable only to opposing-edge inputs:
                // outside the single-transition abstraction; leave unswitched.
                levels[gate.output.index()] = Some((out0, out0));
                continue;
            }

            let c_load = self.net_load(gate.output);
            let timing = self
                .evaluate(model, &pin_events, &stable_levels, c_load, mode)
                .map_err(|source| StaError::Model {
                    gate: gate.name.clone(),
                    source,
                })?;

            events[gate.output.index()] = Some(self.output_event(model, &timing));
            cause[gate.output.index()] = Some(gate.inputs[timing.reference_pin]);
        }

        Ok(TimingReport {
            events,
            levels,
            cause,
            mode,
            sink_nets: self.netlist.sink_nets(),
        })
    }

    fn evaluate(
        &self,
        model: &ProximityModel,
        pin_events: &[InputEvent],
        stable_levels: &[Option<bool>],
        c_load: f64,
        mode: DelayMode,
    ) -> Result<GateTiming, ModelError> {
        match mode {
            DelayMode::Proximity => {
                model.gate_timing_with_levels(pin_events, stable_levels, c_load)
            }
            DelayMode::SingleInput => single_switching_timing_at_load(model, pin_events, c_load),
        }
    }

    /// Converts a gate's timing answer into the output net's ramp event.
    fn output_event(&self, model: &ProximityModel, t: &GateTiming) -> NetEvent {
        let th = model.thresholds();
        let vdd = th.vdd;
        let tt_measured = t.output_transition;
        // The model measures transition time between V_il and V_ih; scale to
        // the full-swing ramp the downstream gate consumes. Real edges have
        // slow tails near the rails that keep the complementary network of
        // the next stage conducting longer than a linear ramp implies; the
        // characterized tail factor stretches the reconstruction to match
        // the real 5-95 % edge (DESIGN.md §7).
        let frac_span = (th.v_ih - th.v_il) / vdd;
        let tt_full = (tt_measured / frac_span * model.tail_factor(t.output_edge)).max(1e-15);
        // Place the ramp so it crosses the measurement threshold at the
        // model-reported arrival.
        let threshold = th.threshold_for(t.output_edge);
        let frac_to_threshold = match t.output_edge {
            Edge::Rising => threshold / vdd,
            Edge::Falling => (vdd - threshold) / vdd,
        };
        NetEvent {
            edge: t.output_edge,
            t_start: t.output_arrival - frac_to_threshold * tt_full,
            transition: tt_full,
            arrival: t.output_arrival,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::circuits::{c17, full_adder, ripple_carry_adder};
    use proxim_cells::{Cell, Technology};
    use proxim_model::characterize::CharacterizeOptions;
    use std::sync::OnceLock;

    fn shared_library() -> &'static TimingLibrary {
        static LIB: OnceLock<TimingLibrary> = OnceLock::new();
        LIB.get_or_init(|| {
            let tech = Technology::demo_5v();
            let model =
                ProximityModel::characterize(&Cell::nand(2), &tech, &CharacterizeOptions::fast())
                    .expect("characterization succeeds");
            let mut lib = TimingLibrary::new();
            lib.add(model);
            lib
        })
    }

    #[test]
    fn c17_propagates_and_times() {
        let lib = shared_library();
        let nand2 = crate::library::CellId(0);
        let (nl, pis, pos) = c17(nand2);
        let sta = Sta::new(lib, &nl);

        // One rising input; the other inputs sensitize N1 -> N10 -> N22
        // (N3 = N6 = 1 makes N11 = 0, hence N16 = 1, opening G22).
        let assignments = vec![
            PiAssignment::switching(pis[0], Edge::Rising, 0.0, 300e-12),
            PiAssignment::stable(pis[1], true),
            PiAssignment::stable(pis[2], true),
            PiAssignment::stable(pis[3], true),
            PiAssignment::stable(pis[4], true),
        ];
        let report = sta.run(&assignments, DelayMode::Proximity).unwrap();
        // The transition reaches output 22 through g10 -> g22.
        let ev = report.net_event(pos[0]).expect("first PO switches");
        assert!(ev.arrival > 0.0 && ev.arrival < 10e-9);
        assert!(report.critical_arrival().is_some());
    }

    #[test]
    fn proximity_and_single_input_modes_differ_on_convergent_paths() {
        let lib = shared_library();
        let nand2 = crate::library::CellId(0);
        let (nl, ins, outs) = full_adder(nand2);
        let sta = Sta::new(lib, &nl);
        // a switches; its reconvergent fanout inside the XOR structure makes
        // internal gates see multiple switching pins in proximity.
        let assignments = vec![
            PiAssignment::switching(ins[0], Edge::Rising, 0.0, 400e-12),
            PiAssignment::stable(ins[1], false),
            PiAssignment::stable(ins[2], true),
        ];
        let prox = sta.run(&assignments, DelayMode::Proximity).unwrap();
        let single = sta.run(&assignments, DelayMode::SingleInput).unwrap();
        // Both produce sum-output events; arrivals generally differ.
        let ps = prox.net_event(outs[0]);
        let ss = single.net_event(outs[0]);
        assert!(ps.is_some() && ss.is_some());
    }

    #[test]
    fn adder_critical_path_grows_with_width() {
        let lib = shared_library();
        let nand2 = crate::library::CellId(0);
        let mut last = 0.0;
        for bits in [1usize, 2, 4] {
            let (nl, ins, _outs) = ripple_carry_adder(nand2, bits);
            let sta = Sta::new(lib, &nl);
            // Ripple stimulus: bit 0 generates a carry when a0 rises
            // (b0 = 1); higher bits propagate it (a_i = 1, b_i = 0).
            let mut assignments = Vec::new();
            for (k, &net) in ins.iter().enumerate() {
                // ins layout: a0..a_{n-1}, b0..b_{n-1}, cin.
                if k == 0 {
                    assignments.push(PiAssignment::switching(net, Edge::Rising, 0.0, 300e-12));
                } else if k <= bits {
                    assignments.push(PiAssignment::stable(net, true));
                } else {
                    assignments.push(PiAssignment::stable(net, false));
                }
            }
            let report = sta.run(&assignments, DelayMode::Proximity).unwrap();
            let (_, arrival) = report
                .critical_arrival()
                .expect("the carry chain must switch");
            assert!(
                arrival > last,
                "critical arrival must grow with width: {arrival} vs {last}"
            );
            last = arrival;
        }
    }

    #[test]
    fn stable_inputs_produce_no_events() {
        let lib = shared_library();
        let nand2 = crate::library::CellId(0);
        let (nl, ins, outs) = full_adder(nand2);
        let sta = Sta::new(lib, &nl);
        let assignments: Vec<PiAssignment> =
            ins.iter().map(|&n| PiAssignment::stable(n, true)).collect();
        let report = sta.run(&assignments, DelayMode::Proximity).unwrap();
        assert!(report.net_event(outs[0]).is_none());
        assert!(report.critical_arrival().is_none());
    }

    #[test]
    fn unassigned_input_is_an_error() {
        let lib = shared_library();
        let nand2 = crate::library::CellId(0);
        let (nl, ins, _) = full_adder(nand2);
        let sta = Sta::new(lib, &nl);
        let assignments = vec![PiAssignment::stable(ins[0], true)];
        assert!(matches!(
            sta.run(&assignments, DelayMode::Proximity),
            Err(StaError::Unassigned { .. })
        ));
    }

    /// Generate-then-propagate stimulus for the ripple-carry adder: a0
    /// rises (with b0 = 1 this generates a carry), higher bits propagate.
    fn ripple_assignments(ins: &[crate::netlist::NetId], bits: usize) -> Vec<PiAssignment> {
        let mut assignments = Vec::new();
        for (k, &net) in ins.iter().enumerate() {
            if k == 0 {
                assignments.push(PiAssignment::switching(net, Edge::Rising, 0.0, 300e-12));
            } else if k <= bits {
                assignments.push(PiAssignment::stable(net, true));
            } else {
                assignments.push(PiAssignment::stable(net, false));
            }
        }
        assignments
    }

    #[test]
    fn critical_path_traces_back_to_a_primary_input() {
        let lib = shared_library();
        let nand2 = crate::library::CellId(0);
        let bits = 3;
        let (nl, ins, _) = ripple_carry_adder(nand2, bits);
        let sta = Sta::new(lib, &nl);
        let assignments = ripple_assignments(&ins, bits);
        let report = sta.run(&assignments, DelayMode::Proximity).unwrap();
        let path = report.critical_path();
        assert!(path.len() >= 3, "path {path:?}");
        // The path starts at the switching primary input a0.
        assert_eq!(path[0], ins[0], "path must start at the switching PI");
        // And ends at the critical sink.
        let (end, _) = report.critical_arrival().unwrap();
        assert_eq!(*path.last().unwrap(), end);
        // Arrivals are non-decreasing along the path (skipping the PI).
        let arrivals: Vec<f64> = path
            .iter()
            .filter_map(|&n| report.net_event(n).map(|e| e.arrival))
            .collect();
        for w in arrivals.windows(2) {
            assert!(w[1] >= w[0] - 1e-15, "arrivals not monotone: {arrivals:?}");
        }
    }

    #[test]
    fn slacks_against_required_time() {
        let lib = shared_library();
        let nand2 = crate::library::CellId(0);
        let (nl, ins, _) = ripple_carry_adder(nand2, 2);
        let sta = Sta::new(lib, &nl);
        let assignments = ripple_assignments(&ins, 2);
        let report = sta.run(&assignments, DelayMode::Proximity).unwrap();
        let (_, critical) = report.critical_arrival().unwrap();
        // Required exactly at the critical arrival: worst slack is zero.
        let worst = report.worst_slack(critical).unwrap();
        assert!(worst.abs() < 1e-15);
        // A looser requirement gives positive slack everywhere.
        for (_, s) in report.sink_slacks(critical + 1e-9) {
            assert!(s > 0.0);
        }
    }

    #[test]
    fn net_load_sums_fanout_caps() {
        let lib = shared_library();
        let nand2 = crate::library::CellId(0);
        let (nl, ins, _) = full_adder(nand2);
        let sta = Sta::new(lib, &nl);
        // Input a fans out to two NAND gates in the XOR half-structure.
        let load = sta.net_load(ins[0]);
        let single_pin = {
            let m = lib.model(nand2);
            m.cell().input_cap(m.tech())
        };
        assert!(load >= 2.0 * single_pin - 1e-20, "load {load}");
    }
}
