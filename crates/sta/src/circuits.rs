//! Benchmark circuit generators, all built from 2-input NAND gates so a
//! single characterized model covers every instance.

use crate::library::CellId;
use crate::netlist::{GateNetlist, NetId};

/// The ISCAS-85 C17 benchmark: 6 NAND2 gates, 5 inputs, 2 outputs.
///
/// Returns `(netlist, primary inputs [n1, n2, n3, n6, n7], outputs
/// [n22, n23])`.
pub fn c17(nand2: CellId) -> (GateNetlist, Vec<NetId>, Vec<NetId>) {
    let mut nl = GateNetlist::new();
    let n1 = nl.net("N1");
    let n2 = nl.net("N2");
    let n3 = nl.net("N3");
    let n6 = nl.net("N6");
    let n7 = nl.net("N7");
    let n10 = nl.net("N10");
    let n11 = nl.net("N11");
    let n16 = nl.net("N16");
    let n19 = nl.net("N19");
    let n22 = nl.net("N22");
    let n23 = nl.net("N23");
    for pi in [n1, n2, n3, n6, n7] {
        nl.mark_primary_input(pi);
    }
    nl.add_gate("G10", nand2, &[n1, n3], n10);
    nl.add_gate("G11", nand2, &[n3, n6], n11);
    nl.add_gate("G16", nand2, &[n2, n11], n16);
    nl.add_gate("G19", nand2, &[n11, n7], n19);
    nl.add_gate("G22", nand2, &[n10, n16], n22);
    nl.add_gate("G23", nand2, &[n16, n19], n23);
    (nl, vec![n1, n2, n3, n6, n7], vec![n22, n23])
}

/// A 9-NAND full adder.
///
/// Returns `(netlist, inputs [a, b, cin], outputs [sum, cout])`.
pub fn full_adder(nand2: CellId) -> (GateNetlist, Vec<NetId>, Vec<NetId>) {
    let mut nl = GateNetlist::new();
    let a = nl.net("a");
    let b = nl.net("b");
    let cin = nl.net("cin");
    for pi in [a, b, cin] {
        nl.mark_primary_input(pi);
    }
    let (ins, outs) = add_full_adder(&mut nl, nand2, a, b, cin, "fa");
    debug_assert_eq!(ins, (a, b, cin));
    (nl, vec![a, b, cin], vec![outs.0, outs.1])
}

/// Appends one 9-NAND full adder to `nl`; returns the echoed inputs and
/// `(sum, cout)`.
fn add_full_adder(
    nl: &mut GateNetlist,
    nand2: CellId,
    a: NetId,
    b: NetId,
    cin: NetId,
    prefix: &str,
) -> ((NetId, NetId, NetId), (NetId, NetId)) {
    let n1 = nl.net(&format!("{prefix}_n1"));
    let n2 = nl.net(&format!("{prefix}_n2"));
    let n3 = nl.net(&format!("{prefix}_n3"));
    let n4 = nl.net(&format!("{prefix}_n4"));
    let n5 = nl.net(&format!("{prefix}_n5"));
    let n6 = nl.net(&format!("{prefix}_n6"));
    let n7 = nl.net(&format!("{prefix}_n7"));
    let sum = nl.net(&format!("{prefix}_sum"));
    let cout = nl.net(&format!("{prefix}_cout"));

    nl.add_gate(&format!("{prefix}_g1"), nand2, &[a, b], n1);
    nl.add_gate(&format!("{prefix}_g2"), nand2, &[a, n1], n2);
    nl.add_gate(&format!("{prefix}_g3"), nand2, &[b, n1], n3);
    nl.add_gate(&format!("{prefix}_g4"), nand2, &[n2, n3], n4); // a xor b
    nl.add_gate(&format!("{prefix}_g5"), nand2, &[n4, cin], n5);
    nl.add_gate(&format!("{prefix}_g6"), nand2, &[n4, n5], n6);
    nl.add_gate(&format!("{prefix}_g7"), nand2, &[cin, n5], n7);
    nl.add_gate(&format!("{prefix}_g8"), nand2, &[n6, n7], sum);
    nl.add_gate(&format!("{prefix}_g9"), nand2, &[n5, n1], cout);
    ((a, b, cin), (sum, cout))
}

/// A `bits`-wide ripple-carry adder of 9-NAND full adders.
///
/// Returns `(netlist, inputs [a0.., b0.., cin], outputs [s0.., cout])`.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_carry_adder(nand2: CellId, bits: usize) -> (GateNetlist, Vec<NetId>, Vec<NetId>) {
    assert!(bits > 0, "adder needs at least one bit");
    let mut nl = GateNetlist::new();
    let a_nets: Vec<NetId> = (0..bits).map(|i| nl.net(&format!("a{i}"))).collect();
    let b_nets: Vec<NetId> = (0..bits).map(|i| nl.net(&format!("b{i}"))).collect();
    let cin = nl.net("cin");
    for &pi in a_nets.iter().chain(&b_nets).chain(std::iter::once(&cin)) {
        nl.mark_primary_input(pi);
    }
    let mut carry = cin;
    let mut sums = Vec::with_capacity(bits);
    for i in 0..bits {
        let (_, (sum, cout)) = add_full_adder(
            &mut nl,
            nand2,
            a_nets[i],
            b_nets[i],
            carry,
            &format!("fa{i}"),
        );
        sums.push(sum);
        carry = cout;
    }
    let mut inputs = a_nets;
    inputs.extend(b_nets);
    inputs.push(cin);
    let mut outputs = sums;
    outputs.push(carry);
    (nl, inputs, outputs)
}

/// A parity (XOR) chain over `width` inputs, each XOR built from 4 NAND2.
///
/// Returns `(netlist, inputs, output)`.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn parity_chain(nand2: CellId, width: usize) -> (GateNetlist, Vec<NetId>, NetId) {
    assert!(width >= 2, "parity needs at least two inputs");
    let mut nl = GateNetlist::new();
    let ins: Vec<NetId> = (0..width).map(|i| nl.net(&format!("x{i}"))).collect();
    for &pi in &ins {
        nl.mark_primary_input(pi);
    }
    let mut acc = ins[0];
    for (k, &x) in ins.iter().enumerate().skip(1) {
        let p = format!("xor{k}");
        let n1 = nl.net(&format!("{p}_n1"));
        let n2 = nl.net(&format!("{p}_n2"));
        let n3 = nl.net(&format!("{p}_n3"));
        let out = nl.net(&format!("{p}_out"));
        nl.add_gate(&format!("{p}_g1"), nand2, &[acc, x], n1);
        nl.add_gate(&format!("{p}_g2"), nand2, &[acc, n1], n2);
        nl.add_gate(&format!("{p}_g3"), nand2, &[x, n1], n3);
        nl.add_gate(&format!("{p}_g4"), nand2, &[n2, n3], out);
        acc = out;
    }
    (nl, ins, acc)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    const NAND2: CellId = CellId(0);

    #[test]
    fn c17_structure() {
        let (nl, pis, pos) = c17(NAND2);
        assert_eq!(nl.gates().len(), 6);
        assert_eq!(pis.len(), 5);
        assert_eq!(pos.len(), 2);
        assert!(nl.topo_order().is_ok());
        assert_eq!(nl.sink_nets().len(), 2);
    }

    #[test]
    fn full_adder_structure() {
        let (nl, ins, outs) = full_adder(NAND2);
        assert_eq!(nl.gates().len(), 9);
        assert_eq!(ins.len(), 3);
        assert_eq!(outs.len(), 2);
        assert!(nl.topo_order().is_ok());
    }

    #[test]
    fn ripple_carry_scales() {
        let (nl, ins, outs) = ripple_carry_adder(NAND2, 4);
        assert_eq!(nl.gates().len(), 36);
        assert_eq!(ins.len(), 9);
        assert_eq!(outs.len(), 5);
        assert!(nl.topo_order().is_ok());
    }

    #[test]
    fn parity_chain_structure() {
        let (nl, ins, _out) = parity_chain(NAND2, 5);
        assert_eq!(nl.gates().len(), 16);
        assert_eq!(ins.len(), 5);
        assert!(nl.topo_order().is_ok());
    }

    /// Logic simulation of a NAND2-only netlist for functional checks.
    fn eval_netlist(nl: &GateNetlist, pi_values: &[(NetId, bool)]) -> Vec<Option<bool>> {
        let mut values: Vec<Option<bool>> = vec![None; nl.net_count()];
        for &(n, v) in pi_values {
            values[n.index()] = Some(v);
        }
        for gi in nl.topo_order().unwrap() {
            let g = &nl.gates()[gi];
            let a = values[g.inputs[0].index()].expect("input assigned");
            let b = values[g.inputs[1].index()].expect("input assigned");
            values[g.output.index()] = Some(!(a && b));
        }
        values
    }

    #[test]
    fn full_adder_truth_table() {
        let (nl, ins, outs) = full_adder(NAND2);
        for mask in 0..8u32 {
            let a = mask & 1 != 0;
            let b = mask & 2 != 0;
            let c = mask & 4 != 0;
            let values = eval_netlist(&nl, &[(ins[0], a), (ins[1], b), (ins[2], c)]);
            let sum = values[outs[0].index()].unwrap();
            let cout = values[outs[1].index()].unwrap();
            let total = a as u32 + b as u32 + c as u32;
            assert_eq!(sum, total % 2 == 1, "sum for {mask:03b}");
            assert_eq!(cout, total >= 2, "cout for {mask:03b}");
        }
    }

    #[test]
    fn ripple_carry_adds_correctly() {
        let bits = 4;
        let (nl, ins, outs) = ripple_carry_adder(NAND2, bits);
        for (a_val, b_val, cin) in [
            (3u32, 5u32, false),
            (15, 1, false),
            (9, 9, true),
            (0, 0, false),
        ] {
            let mut pi_values = Vec::new();
            for i in 0..bits {
                pi_values.push((ins[i], a_val & (1 << i) != 0));
                pi_values.push((ins[bits + i], b_val & (1 << i) != 0));
            }
            pi_values.push((ins[2 * bits], cin));
            let values = eval_netlist(&nl, &pi_values);
            let mut result = 0u32;
            for i in 0..bits {
                if values[outs[i].index()].unwrap() {
                    result |= 1 << i;
                }
            }
            if values[outs[bits].index()].unwrap() {
                result |= 1 << bits;
            }
            assert_eq!(
                result,
                a_val + b_val + cin as u32,
                "{a_val} + {b_val} + {cin}"
            );
        }
    }

    #[test]
    fn parity_chain_is_xor() {
        let (nl, ins, out) = parity_chain(NAND2, 4);
        for mask in 0..16u32 {
            let pi_values: Vec<(NetId, bool)> = ins
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, mask & (1 << i) != 0))
                .collect();
            let values = eval_netlist(&nl, &pi_values);
            assert_eq!(
                values[out.index()].unwrap(),
                mask.count_ones() % 2 == 1,
                "parity of {mask:04b}"
            );
        }
    }
}
