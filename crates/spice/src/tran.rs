//! Transient analysis.
//!
//! Time integration uses the trapezoidal rule by default (backward Euler is
//! available for ablation), with a Newton solve at every step. The step size
//! adapts to limit the largest node-voltage change per step, and steps land
//! exactly on every PWL-source breakpoint so ramp corners are never
//! straddled.
//!
//! A failed Newton solve does not immediately fail the run: the bounded
//! recovery ladder of [`crate::recover`] first retries the step with heavier
//! damping, then with gmin continuation, then cuts the step, and finally
//! restarts the whole run with halved `dt_init`/`dv_max`. Everything the
//! ladder did is reported in [`TranResult::recovery`].

use crate::cancel::CancelToken;
use crate::circuit::{Circuit, Element, NodeId};
use crate::faultpoint::{run_entropy, FaultStream};
use crate::op::GMIN;
use crate::recover::{RecoveryPolicy, RecoveryStage, RecoveryTrace};
use crate::solver::{
    newton_solve, AnalysisError, CapMode, NewtonOptions, NewtonOutcome, NewtonWorkspace, System,
};
use proxim_numeric::pwl::Pwl;
use proxim_obs as obs;
use std::time::Instant;

/// Global-registry handles for transient-solver telemetry, resolved once
/// per run so the per-solve path never touches the registry mutex. `None`
/// when the observability level is [`obs::Level::Off`].
pub(crate) struct TranMetrics {
    pub(crate) runs: obs::Counter,
    pub(crate) recoveries: obs::Counter,
    pub(crate) recovery_seconds: obs::Gauge,
    pub(crate) lu_seconds: obs::Gauge,
    /// Factorizations that took the shared static-order (symbolic) path.
    pub(crate) lu_static_solves: obs::Counter,
    /// Factorizations where the static order declined and dense partial
    /// pivoting ran instead.
    pub(crate) lu_static_fallbacks: obs::Counter,
    /// Newton iterations per converged solve.
    pub(crate) newton_iters: obs::Histogram,
    /// Recovery-ladder attempts per transient run.
    pub(crate) recovery_depth: obs::Histogram,
}

impl TranMetrics {
    pub(crate) fn new() -> Option<Self> {
        if !obs::metrics_enabled() {
            return None;
        }
        let reg = obs::Registry::global();
        Some(Self {
            runs: reg.counter("spice.tran.runs"),
            recoveries: reg.counter("spice.tran.recoveries"),
            recovery_seconds: reg.gauge("spice.tran.recovery_seconds"),
            lu_seconds: reg.gauge("spice.tran.lu_seconds"),
            lu_static_solves: reg.counter("spice.lu.static_solves"),
            lu_static_fallbacks: reg.counter("spice.lu.static_fallbacks"),
            newton_iters: reg.histogram(
                "spice.tran.newton_iters_per_solve",
                &[2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0, 128.0],
            ),
            recovery_depth: reg.histogram(
                "spice.tran.recovery_depth",
                &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            ),
        })
    }

    /// Books a run's static-vs-fallback factorization counts from the
    /// workspace counters (which the caller resets per run).
    pub(crate) fn record_lu_dispatch(&self, ws: &NewtonWorkspace) {
        self.lu_static_solves.add(ws.static_solves);
        self.lu_static_fallbacks.add(ws.static_fallbacks);
    }
}

/// Per-thread reusable transient state: the Newton workspace (Jacobian, LU
/// factors, residuals, iterate) plus the capacitor-history and breakpoint
/// buffers, and high-water capacity hints for the sample buffers (which move
/// out into each [`TranResult`] and so can only be pre-sized, not reused).
///
/// A characterization worker runs hundreds of transients back to back; the
/// arena makes every run after the first allocation-free on the solver path.
pub(crate) struct TranArena {
    pub(crate) ws: NewtonWorkspace,
    pub(crate) hist: Vec<(f64, f64)>,
    pub(crate) breakpoints: Vec<f64>,
    times_hint: usize,
    samples_hint: usize,
    branch_hint: usize,
}

impl TranArena {
    pub(crate) fn new() -> Self {
        Self {
            ws: NewtonWorkspace::new(),
            hist: Vec::new(),
            breakpoints: Vec::new(),
            times_hint: 0,
            samples_hint: 0,
            branch_hint: 0,
        }
    }
}

thread_local! {
    /// One arena per worker thread, reused across every scalar transient
    /// run the thread executes.
    static ARENA: std::cell::RefCell<TranArena> = std::cell::RefCell::new(TranArena::new());
}

/// Runs `f` with the thread's arena. Falls back to a fresh arena if the
/// thread-local one is already borrowed (re-entrant `tran` under the same
/// thread — not a path the code takes today, but cheap to keep sound).
fn with_arena<R>(f: impl FnOnce(&mut TranArena) -> R) -> R {
    ARENA.with(|cell| match cell.try_borrow_mut() {
        Ok(mut arena) => f(&mut arena),
        Err(_) => f(&mut TranArena::new()),
    })
}

/// The time-integration method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Integrator {
    /// Second-order trapezoidal rule (default).
    #[default]
    Trapezoidal,
    /// First-order backward Euler; more damped, used for ablation.
    BackwardEuler,
}

/// Options controlling a transient run.
#[derive(Debug, Clone, Copy)]
pub struct TranOptions {
    /// End time of the analysis, in seconds.
    pub t_stop: f64,
    /// Smallest allowed step; the run fails below this.
    pub dt_min: f64,
    /// Largest allowed step.
    pub dt_max: f64,
    /// Initial step.
    pub dt_init: f64,
    /// Target bound on the largest node-voltage change per step, in volts.
    /// Smaller values give smoother waveforms at higher cost.
    pub dv_max: f64,
    /// Integration method.
    pub integrator: Integrator,
    /// Recovery ladder applied on Newton failures (see [`crate::recover`]).
    pub recovery: RecoveryPolicy,
}

impl TranOptions {
    /// Reasonable defaults for an analysis ending at `t_stop`:
    /// `dt_max = t_stop / 100`, `dt_init = t_stop / 10_000`,
    /// `dv_max = 0.05 V`, trapezoidal integration.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` is not strictly positive.
    pub fn to(t_stop: f64) -> Self {
        assert!(
            t_stop > 0.0 && t_stop.is_finite(),
            "t_stop must be positive"
        );
        Self {
            t_stop,
            dt_min: t_stop * 1e-9,
            dt_max: t_stop / 100.0,
            dt_init: t_stop / 10_000.0,
            dv_max: 0.05,
            integrator: Integrator::Trapezoidal,
            recovery: RecoveryPolicy::default(),
        }
    }

    /// Returns the options with a different integrator.
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Returns the options with a different per-step voltage-change bound.
    ///
    /// # Panics
    ///
    /// Panics if `dv_max` is not strictly positive.
    pub fn with_dv_max(mut self, dv_max: f64) -> Self {
        assert!(dv_max > 0.0, "dv_max must be positive");
        self.dv_max = dv_max;
        self
    }

    /// Returns the options with a different recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Returns the options with the accuracy-governing knobs (`dv_max` and
    /// `dt_init`) scaled by `scale`. Values below one tighten the solve —
    /// the model-audit repair pass uses this to re-run suspect grid points
    /// at higher accuracy without re-deriving every option. A scale of
    /// exactly `1.0` is a bit-identical no-op, so callers can thread one
    /// scale variable through both the original and the tightened path.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive and finite.
    pub fn with_tolerance_scale(mut self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "tolerance scale must be positive"
        );
        if scale != 1.0 {
            self.dv_max *= scale;
            self.dt_init = (self.dt_init * scale).max(self.dt_min);
        }
        self
    }
}

/// The sampled result of a transient run.
///
/// Node and branch samples are stored as single contiguous buffers (one
/// stride per accepted step) rather than per-step vectors: a characterization
/// run records millions of samples, and one flat allocation amortizes to
/// zero per step while keeping waveform extraction cache-friendly.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    /// Stride of `samples`: node voltages per step, ground included.
    node_count: usize,
    /// Stride of `branch_samples`: voltage-source branch currents per step.
    branch_count: usize,
    /// Flattened node voltages; step `k` occupies
    /// `samples[k * node_count .. (k + 1) * node_count]`.
    samples: Vec<f64>,
    /// Flattened branch currents, laid out like `samples`.
    branch_samples: Vec<f64>,
    /// Total Newton iterations across the run (performance telemetry).
    pub newton_iterations: usize,
    /// Total accepted time steps.
    pub accepted_steps: usize,
    /// Wall time spent in LU factorization and triangular solves, in
    /// seconds. Only measured at [`obs::Level::Trace`] (per-iteration
    /// timing is too hot for lower levels); 0 otherwise.
    pub lu_seconds: f64,
    /// Everything the recovery ladder did during the run (empty for a
    /// healthy run).
    pub recovery: RecoveryTrace,
}

impl TranResult {
    /// Assembles a result from raw sample buffers — used by the batched
    /// transient kernel, which records lanes outside `tran_attempt`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        times: Vec<f64>,
        node_count: usize,
        branch_count: usize,
        samples: Vec<f64>,
        branch_samples: Vec<f64>,
        newton_iterations: usize,
        accepted_steps: usize,
        lu_seconds: f64,
        recovery: RecoveryTrace,
    ) -> Self {
        Self {
            times,
            node_count,
            branch_count,
            samples,
            branch_samples,
            newton_iterations,
            accepted_steps,
            lu_seconds,
            recovery,
        }
    }

    /// The accepted time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The waveform of `node` as a piecewise-linear function of time.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the simulated circuit.
    // Accepted times are strictly increasing by construction, so the Pwl
    // invariant cannot fail here.
    #[allow(clippy::expect_used)]
    pub fn waveform(&self, node: NodeId) -> Pwl {
        let j = node.index();
        assert!(j < self.node_count, "node {j} out of range");
        Pwl::new(
            self.times
                .iter()
                .enumerate()
                .map(|(k, &t)| (t, self.samples[k * self.node_count + j]))
                .collect(),
        )
        .expect("transient sampling produces a valid waveform")
    }

    /// The node voltage at sample index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` or the node index is out of range.
    pub fn voltage_at(&self, k: usize, node: NodeId) -> f64 {
        assert!(k < self.times.len(), "sample {k} out of range");
        assert!(node.index() < self.node_count, "node out of range");
        self.samples[k * self.node_count + node.index()]
    }

    /// The branch current of the `k`-th voltage source as a waveform over
    /// time (positive current flows into the source's `plus` terminal, so a
    /// supply sourcing current reads negative — as in SPICE).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    // Accepted times are strictly increasing by construction, so the Pwl
    // invariant cannot fail here.
    #[allow(clippy::expect_used)]
    pub fn branch_current_waveform(&self, k: usize) -> Pwl {
        assert!(k < self.branch_count, "branch {k} out of range");
        Pwl::new(
            self.times
                .iter()
                .enumerate()
                .map(|(s, &t)| (t, self.branch_samples[s * self.branch_count + k]))
                .collect(),
        )
        .expect("transient sampling produces a valid waveform")
    }

    /// The peak magnitude of the `k`-th voltage source's branch current —
    /// e.g. the peak supply current during a switching event, the quantity
    /// the collapse-to-inverter literature (Nabavi-Lishi & Rumin) targets.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn peak_branch_current(&self, k: usize) -> f64 {
        assert!(k < self.branch_count, "branch {k} out of range");
        self.branch_samples
            .iter()
            .skip(k)
            .step_by(self.branch_count)
            .map(|i| i.abs())
            .fold(0.0, f64::max)
    }
}

/// One Newton solve under the run watchdog, cancellation token, and fault
/// injection: counts the attempt against the solve budget, polls the token,
/// and lets the fault stream veto it.
#[allow(clippy::too_many_arguments)]
fn checked_solve(
    sys: &System<'_>,
    x: &[f64],
    t_new: f64,
    gmin: f64,
    caps: CapMode<'_>,
    nopts: &NewtonOptions,
    ws: &mut NewtonWorkspace,
    policy: &RecoveryPolicy,
    faults: &mut FaultStream,
    solves: &mut usize,
    metrics: &Option<TranMetrics>,
    cancel: &CancelToken,
) -> Result<NewtonOutcome, AnalysisError> {
    *solves += 1;
    cancel.check("transient")?;
    if policy.step_budget > 0 && *solves > policy.step_budget {
        return Err(AnalysisError::Aborted {
            analysis: "transient".into(),
            detail: format!(
                "newton solve budget of {} exhausted at t = {t_new:.4e} s",
                policy.step_budget
            ),
        });
    }
    if faults.newton_fault() {
        return Ok(NewtonOutcome::Failed);
    }
    let out = newton_solve(sys, x, t_new, 1.0, gmin, caps, nopts, ws, cancel)?;
    if let (Some(m), NewtonOutcome::Converged(iters)) = (metrics.as_ref(), &out) {
        m.newton_iters.observe(*iters as f64);
    }
    Ok(out)
}

pub(crate) fn tran(
    ckt: &Circuit,
    options: &TranOptions,
    cancel: &CancelToken,
) -> Result<TranResult, AnalysisError> {
    with_arena(|arena| tran_in_arena(ckt, options, cancel, arena))
}

fn tran_in_arena(
    ckt: &Circuit,
    options: &TranOptions,
    cancel: &CancelToken,
    arena: &mut TranArena,
) -> Result<TranResult, AnalysisError> {
    let sys = System::new(ckt);
    let policy = options.recovery;
    // Per-run entropy comes only from the run's own parameters, so fault
    // decisions replay identically regardless of worker scheduling.
    let mut faults = FaultStream::for_run(run_entropy(
        options.t_stop,
        options.dv_max,
        sys.n,
        ckt.elements.len(),
    ));
    let metrics = TranMetrics::new();
    let mut span = obs::span("spice.tran").arg("t_stop", format_args!("{:.3e}", options.t_stop));
    let mut trace = RecoveryTrace::default();
    let mut solves = 0usize;
    let mut attempt_opts = *options;
    // The shared symbolic factorization is a pure function of topology,
    // computed once per run and used by every solve (DC init included).
    arena.ws.symbolic = sys.symbolic_lu();
    arena.ws.static_solves = 0;
    arena.ws.static_fallbacks = 0;
    // Per-iteration LU timing is only worth its two clock reads when the
    // fine-grained trace level is armed.
    arena.ws.time_lu = obs::level() == obs::Level::Trace;
    loop {
        let attempt_start = Instant::now();
        match tran_attempt(
            ckt,
            &sys,
            &attempt_opts,
            &policy,
            &mut trace,
            &mut faults,
            &mut solves,
            &metrics,
            cancel,
            arena,
        ) {
            Ok(mut result) => {
                result.recovery = trace;
                if let Some(m) = &metrics {
                    m.runs.incr();
                    m.recoveries.add(result.recovery.total() as u64);
                    m.recovery_seconds.add(result.recovery.total_seconds());
                    m.lu_seconds.add(result.lu_seconds);
                    m.recovery_depth.observe(result.recovery.total() as f64);
                    m.record_lu_dispatch(&arena.ws);
                }
                if span.is_active() {
                    span.add_arg("steps", result.accepted_steps);
                    span.add_arg("newton_iters", result.newton_iterations);
                    span.add_arg("recoveries", result.recovery.total());
                }
                return Ok(result);
            }
            // The final rung: restart the whole run gentler. Only
            // NoConvergence is worth retrying — Aborted (watchdog) and
            // Singular are terminal. The rung's recorded cost is the whole
            // failed attempt being thrown away.
            Err(AnalysisError::NoConvergence { .. })
                if trace.restarts < policy.max_restarts as usize =>
            {
                attempt_opts.dt_init = (attempt_opts.dt_init * 0.5).max(attempt_opts.dt_min);
                attempt_opts.dv_max *= 0.5;
                trace.record(
                    RecoveryStage::RunRestart,
                    0.0,
                    attempt_opts.dt_init,
                    attempt_start.elapsed().as_secs_f64(),
                    false,
                );
                let _ = obs::event("spice.recover")
                    .arg("stage", RecoveryStage::RunRestart)
                    .arg("restarts", trace.restarts);
            }
            Err(mut e) => {
                // A deadline that expired while the ladder was climbing
                // reports where the time went: the accumulated trace of this
                // run (all attempts so far) rides along on the error.
                if let AnalysisError::DeadlineExceeded { recovery, .. } = &mut e {
                    **recovery = std::mem::take(&mut trace);
                }
                if span.is_active() {
                    span.add_arg("error", &e);
                }
                return Err(e);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn tran_attempt(
    ckt: &Circuit,
    sys: &System<'_>,
    options: &TranOptions,
    policy: &RecoveryPolicy,
    trace: &mut RecoveryTrace,
    faults: &mut FaultStream,
    solves: &mut usize,
    metrics: &Option<TranMetrics>,
    cancel: &CancelToken,
    arena: &mut TranArena,
) -> Result<TranResult, AnalysisError> {
    let opts = NewtonOptions::default();
    // Disjoint borrows of the arena's pieces for the rest of the attempt.
    let TranArena {
        ws,
        hist,
        breakpoints,
        times_hint,
        samples_hint,
        branch_hint,
    } = arena;
    ws.lu_seconds = 0.0;

    // Initial condition: DC operating point with sources at t = 0.
    let op = crate::op::dc_solve_with(ckt, sys, 0.0, None, cancel, ws)?;
    let mut x = op.x;

    // Per-element capacitor history (v_prev across the cap, i_prev through
    // it). Entries for non-capacitor elements are unused.
    hist.clear();
    hist.extend(ckt.elements.iter().map(|e| match e {
        Element::Capacitor { a, b, .. } => (sys.v(&x, *a) - sys.v(&x, *b), 0.0),
        _ => (0.0, 0.0),
    }));

    // Breakpoints: the PWL corners of all sources inside (0, t_stop).
    breakpoints.clear();
    breakpoints.extend(
        ckt.source_breakpoints()
            .into_iter()
            .filter(|&t| t > 0.0 && t < options.t_stop),
    );
    breakpoints.push(options.t_stop);

    let node_count = ckt.node_count();
    let branch_count = sys.n - sys.nv;
    // Flat sample storage: appending a step is two extends into contiguous
    // buffers, no per-step allocation once capacity has grown. These move
    // out into the result, so the arena can only contribute high-water
    // capacity hints from earlier runs.
    let mut times = Vec::with_capacity(*times_hint);
    let mut samples: Vec<f64> = Vec::with_capacity(*samples_hint);
    let mut branch_samples: Vec<f64> = Vec::with_capacity(*branch_hint);
    let record = |t: f64, x: &[f64], times: &mut Vec<f64>, s: &mut Vec<f64>, b: &mut Vec<f64>| {
        times.push(t);
        s.push(0.0); // ground
        s.extend_from_slice(&x[..sys.nv]);
        b.extend_from_slice(&x[sys.nv..]);
    };
    record(0.0, &x, &mut times, &mut samples, &mut branch_samples);

    let mut t = 0.0;
    let mut h = options.dt_init.min(options.dt_max);
    let mut newton_iterations = 0usize;
    let mut accepted_steps = 0usize;
    let mut bp_idx = 0usize;

    while t < options.t_stop - options.dt_min * 0.5 {
        // Step boundary: a cancellation point even when every solve is
        // converging on the first try.
        cancel.check("transient")?;
        while bp_idx < breakpoints.len() && breakpoints[bp_idx] <= t + options.dt_min * 0.5 {
            bp_idx += 1;
        }
        let next_bp = breakpoints.get(bp_idx).copied().unwrap_or(options.t_stop);
        let h_eff = h.min(options.dt_max).min(next_bp - t).max(options.dt_min);
        let t_new = (t + h_eff).min(options.t_stop);
        let h_eff = t_new - t;

        let (geq_per_farad, trap_coeff) = match options.integrator {
            Integrator::Trapezoidal => (2.0 / h_eff, -1.0),
            Integrator::BackwardEuler => (1.0 / h_eff, 0.0),
        };
        let caps = CapMode::Tran {
            geq_per_farad,
            trap_coeff,
            hist,
        };

        let solved = match checked_solve(
            sys, &x, t_new, GMIN, caps, &opts, ws, policy, faults, solves, metrics, cancel,
        )? {
            NewtonOutcome::Converged(iters) => {
                newton_iterations += iters;
                true
            }
            NewtonOutcome::Failed => {
                // Rung 1: re-solve the same step with a tight update clamp
                // and a much larger iteration budget.
                let mut rescued = false;
                if policy.damped_retry {
                    let rung_start = Instant::now();
                    let dopts = NewtonOptions {
                        vstep_limit: 0.15,
                        max_iter: 600,
                        ..opts
                    };
                    if let NewtonOutcome::Converged(iters) = checked_solve(
                        sys, &x, t_new, GMIN, caps, &dopts, ws, policy, faults, solves, metrics,
                        cancel,
                    )? {
                        newton_iterations += iters;
                        rescued = true;
                    }
                    trace.record(
                        RecoveryStage::DampedRetry,
                        t_new,
                        h_eff,
                        rung_start.elapsed().as_secs_f64(),
                        rescued,
                    );
                    let _ = obs::event("spice.recover")
                        .arg("stage", RecoveryStage::DampedRetry)
                        .arg("t", format_args!("{t_new:.4e}"))
                        .arg("rescued", rescued);
                }
                // Rung 2: gmin continuation — solve a heavily shunted (and
                // therefore easier) system, then walk the shunt back down to
                // the nominal GMIN, warm-starting each stage.
                if !rescued && policy.gmin_stepping {
                    let rung_start = Instant::now();
                    let mut warm = x.clone();
                    let mut ok = true;
                    for &g in &[1e-6, 1e-8, 1e-10, GMIN] {
                        match checked_solve(
                            sys, &warm, t_new, g, caps, &opts, ws, policy, faults, solves, metrics,
                            cancel,
                        )? {
                            NewtonOutcome::Converged(iters) => {
                                newton_iterations += iters;
                                warm.copy_from_slice(&ws.x);
                            }
                            NewtonOutcome::Failed => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    trace.record(
                        RecoveryStage::GminStepping,
                        t_new,
                        h_eff,
                        rung_start.elapsed().as_secs_f64(),
                        ok,
                    );
                    let _ = obs::event("spice.recover")
                        .arg("stage", RecoveryStage::GminStepping)
                        .arg("t", format_args!("{t_new:.4e}"))
                        .arg("rescued", ok);
                    rescued = ok;
                }
                rescued
            }
        };

        if !solved {
            // Rung 3: cut the step; at dt_min the attempt is out of rungs
            // and the caller decides whether a run restart is left. A cut's
            // cost is the re-walked steps (already inside the run), so its
            // recorded duration is zero.
            if h_eff <= options.dt_min * 1.01 {
                return Err(AnalysisError::NoConvergence {
                    analysis: "transient step".into(),
                    detail: format!("at t = {t_new:.4e} s with minimum step"),
                });
            }
            trace.record(RecoveryStage::StepCut, t_new, h_eff, 0.0, false);
            h = (h_eff * 0.25).max(options.dt_min);
            continue;
        }

        // Converged: the candidate solution is in ws.x.
        let max_dv = x
            .iter()
            .zip(&ws.x)
            .take(sys.nv)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        if max_dv > options.dv_max && h_eff > options.dt_min * 1.01 {
            // Too coarse: retry with a smaller step sized to hit the
            // voltage-change target.
            h = (h_eff * (0.8 * options.dv_max / max_dv).max(0.1)).max(options.dt_min);
            continue;
        }
        if faults.accept_fault() && h_eff > options.dt_min * 1.01 {
            // Injected rejection of an otherwise-acceptable step; behaves
            // like a step cut (and is recorded as one).
            trace.record(RecoveryStage::StepCut, t_new, h_eff, 0.0, false);
            h = (h_eff * 0.25).max(options.dt_min);
            continue;
        }
        // Accept. Update capacitor history with companion currents.
        for (ei, e) in ckt.elements.iter().enumerate() {
            if let Element::Capacitor { a, b, farads } = e {
                let dv = sys.v(&ws.x, *a) - sys.v(&ws.x, *b);
                let (v_prev, i_prev) = hist[ei];
                let i_new = geq_per_farad * farads * (dv - v_prev) + trap_coeff * i_prev;
                hist[ei] = (dv, i_new);
            }
        }
        // The old iterate becomes the workspace's scratch buffer for the
        // next step — no allocation on accept.
        std::mem::swap(&mut x, &mut ws.x);
        t = t_new;
        accepted_steps += 1;
        record(t, &x, &mut times, &mut samples, &mut branch_samples);
        // Grow the step when comfortably inside the accuracy target.
        h = if max_dv < 0.5 * options.dv_max {
            h_eff * 1.6
        } else {
            h_eff
        };
    }

    // Remember how big the sample buffers got so the next run on this
    // thread pre-sizes instead of growing.
    *times_hint = (*times_hint).max(times.len());
    *samples_hint = (*samples_hint).max(samples.len());
    *branch_hint = (*branch_hint).max(branch_samples.len());

    Ok(TranResult {
        times,
        node_count,
        branch_count,
        samples,
        branch_samples,
        newton_iterations,
        accepted_steps,
        lu_seconds: ws.lu_seconds,
        recovery: RecoveryTrace::default(),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::circuit::Waveform;
    use crate::device::{MosParams, MosType};

    #[test]
    fn rc_step_response_matches_analytic() {
        // R = 1k, C = 1p: tau = 1 ns. Step at t = 0+.
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VIN", inp, Circuit::GND, Waveform::step(0.0, 1e-12, 1.0));
        ckt.resistor("R1", inp, out, 1e3);
        ckt.capacitor("C1", out, Circuit::GND, 1e-12);
        let r = ckt.tran(&TranOptions::to(5e-9).with_dv_max(0.01)).unwrap();
        let w = r.waveform(out);
        for &t in &[0.5e-9, 1e-9, 2e-9, 4e-9] {
            let expect = 1.0 - (-t / 1e-9f64).exp();
            assert!(
                (w.eval(t) - expect).abs() < 5e-3,
                "t = {t}: got {}, expected {expect}",
                w.eval(t)
            );
        }
    }

    #[test]
    fn rc_ramp_response_tracks_input_with_lag() {
        // For a slow ramp (much slower than tau), the output lags the input
        // by about tau.
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            "VIN",
            inp,
            Circuit::GND,
            Waveform::ramp(1e-9, 20e-9, 0.0, 1.0),
        );
        ckt.resistor("R1", inp, out, 1e3);
        ckt.capacitor("C1", out, Circuit::GND, 1e-12);
        let r = ckt.tran(&TranOptions::to(30e-9)).unwrap();
        let w = r.waveform(out);
        // In the middle of the ramp the lag is tau = 1 ns, i.e. the output
        // is below the input by (tau/ramp)*swing = 0.05.
        let v_in_mid = 0.5;
        let v_out_mid = w.eval(11e-9);
        assert!(
            (v_in_mid - v_out_mid - 0.05).abs() < 5e-3,
            "lag wrong: {v_out_mid}"
        );
    }

    #[test]
    fn richardson_consistency_on_halved_dv() {
        // Tightening the accuracy knob must not change the settled value and
        // must keep mid-transient values close.
        let build = || {
            let mut ckt = Circuit::new();
            let inp = ckt.node("in");
            let out = ckt.node("out");
            ckt.vsource("VIN", inp, Circuit::GND, Waveform::step(0.0, 0.1e-9, 2.0));
            ckt.resistor("R1", inp, out, 2e3);
            ckt.capacitor("C1", out, Circuit::GND, 0.5e-12);
            (ckt, out)
        };
        let (ckt, out) = build();
        let coarse = ckt.tran(&TranOptions::to(5e-9).with_dv_max(0.1)).unwrap();
        let fine = ckt.tran(&TranOptions::to(5e-9).with_dv_max(0.02)).unwrap();
        for &t in &[0.5e-9, 1.5e-9, 3e-9] {
            let a = coarse.waveform(out).eval(t);
            let b = fine.waveform(out).eval(t);
            assert!((a - b).abs() < 0.02, "divergence at t = {t}: {a} vs {b}");
        }
    }

    #[test]
    fn tolerance_scale_unity_is_identity_and_fractions_tighten() {
        let base = TranOptions::to(5e-9).with_dv_max(0.04);
        let same = base.with_tolerance_scale(1.0);
        assert_eq!(base.dv_max.to_bits(), same.dv_max.to_bits());
        assert_eq!(base.dt_init.to_bits(), same.dt_init.to_bits());
        let tight = base.with_tolerance_scale(0.5);
        assert_eq!(tight.dv_max, 0.02);
        assert!(tight.dt_init < base.dt_init);
        assert!(tight.dt_init >= tight.dt_min);
    }

    #[test]
    fn backward_euler_also_settles() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VIN", inp, Circuit::GND, Waveform::step(0.0, 1e-12, 1.0));
        ckt.resistor("R1", inp, out, 1e3);
        ckt.capacitor("C1", out, Circuit::GND, 1e-12);
        let r = ckt
            .tran(&TranOptions::to(8e-9).with_integrator(Integrator::BackwardEuler))
            .unwrap();
        assert!((r.waveform(out).eval(8e-9) - 1.0).abs() < 2e-3);
    }

    #[test]
    fn inverter_transient_switches_output() {
        let p = MosParams {
            vt0: 0.85,
            kp: 17e-6,
            gamma: 0.5,
            phi: 0.6,
            lambda: 0.04,
        };
        let n = MosParams {
            vt0: 0.75,
            kp: 50e-6,
            gamma: 0.4,
            phi: 0.6,
            lambda: 0.03,
        };
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::Dc(5.0));
        ckt.vsource(
            "VIN",
            inp,
            Circuit::GND,
            Waveform::ramp(1e-9, 0.5e-9, 0.0, 5.0),
        );
        ckt.mosfet("MP", MosType::Pmos, out, inp, vdd, vdd, p, 8e-6, 0.8e-6);
        ckt.mosfet(
            "MN",
            MosType::Nmos,
            out,
            inp,
            Circuit::GND,
            Circuit::GND,
            n,
            4e-6,
            0.8e-6,
        );
        ckt.capacitor("CL", out, Circuit::GND, 100e-15);

        let r = ckt.tran(&TranOptions::to(10e-9)).unwrap();
        let w = r.waveform(out);
        assert!(w.eval(0.5e-9) > 4.9, "output starts high");
        assert!(w.eval(9e-9) < 0.1, "output ends low");
        let t_cross = w
            .first_falling_crossing(2.5)
            .expect("output falls through mid-rail");
        assert!(t_cross > 1e-9 && t_cross < 3e-9, "crossing at {t_cross}");
    }

    #[test]
    fn breakpoints_are_sampled_exactly() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        ckt.vsource(
            "VIN",
            inp,
            Circuit::GND,
            Waveform::ramp(2e-9, 1e-9, 0.0, 1.0),
        );
        ckt.resistor("R1", inp, Circuit::GND, 1e3);
        let r = ckt.tran(&TranOptions::to(5e-9)).unwrap();
        for bp in [2e-9, 3e-9] {
            assert!(
                r.times().iter().any(|&t| (t - bp).abs() < 1e-15),
                "breakpoint {bp} not sampled"
            );
        }
    }

    #[test]
    fn supply_current_peaks_during_switching() {
        // An inverter driving a load: the VDD branch current spikes while
        // the output charges and returns to (near) zero at rest.
        let p = MosParams {
            vt0: 0.85,
            kp: 17e-6,
            gamma: 0.5,
            phi: 0.6,
            lambda: 0.04,
        };
        let n = MosParams {
            vt0: 0.75,
            kp: 50e-6,
            gamma: 0.4,
            phi: 0.6,
            lambda: 0.03,
        };
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::Dc(5.0));
        ckt.vsource(
            "VIN",
            inp,
            Circuit::GND,
            Waveform::ramp(1e-9, 0.5e-9, 5.0, 0.0),
        );
        ckt.mosfet("MP", MosType::Pmos, out, inp, vdd, vdd, p, 8e-6, 0.8e-6);
        ckt.mosfet(
            "MN",
            MosType::Nmos,
            out,
            inp,
            Circuit::GND,
            Circuit::GND,
            n,
            4e-6,
            0.8e-6,
        );
        ckt.capacitor("CL", out, Circuit::GND, 100e-15);

        let r = ckt.tran(&TranOptions::to(10e-9)).unwrap();
        let i_vdd = r.branch_current_waveform(0);
        // Quiescent before the edge.
        assert!(
            i_vdd.eval(0.5e-9).abs() < 1e-6,
            "quiescent {}",
            i_vdd.eval(0.5e-9)
        );
        // Peak magnitude is a real charging current (mA scale).
        let peak = r.peak_branch_current(0);
        assert!(peak > 1e-4, "peak supply current {peak}");
        // Settled again at the end.
        assert!(i_vdd.eval(9.5e-9).abs() < 1e-6);
        // Supply sources current: the branch current is negative while the
        // PMOS charges the load.
        let (_, min_i) = i_vdd.min();
        assert!(min_i < -1e-4, "supply current sign {min_i}");
    }

    #[test]
    fn telemetry_is_populated() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        ckt.vsource("VIN", inp, Circuit::GND, Waveform::Dc(1.0));
        ckt.resistor("R1", inp, Circuit::GND, 1e3);
        let r = ckt.tran(&TranOptions::to(1e-9)).unwrap();
        assert!(r.accepted_steps > 0);
        assert!(r.newton_iterations >= r.accepted_steps);
    }

    #[test]
    #[should_panic(expected = "t_stop must be positive")]
    fn options_reject_zero_duration() {
        let _ = TranOptions::to(0.0);
    }

    #[test]
    fn healthy_run_reports_empty_recovery() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VIN", inp, Circuit::GND, Waveform::step(0.0, 1e-12, 1.0));
        ckt.resistor("R1", inp, out, 1e3);
        ckt.capacitor("C1", out, Circuit::GND, 1e-12);
        let r = ckt.tran(&TranOptions::to(5e-9)).unwrap();
        assert!(r.recovery.is_empty(), "got {:?}", r.recovery);
    }

    #[test]
    fn recovery_policy_does_not_change_a_healthy_run() {
        // With no Newton failures the ladder never fires, so enabling or
        // disabling it must be bit-identical.
        let build = || {
            let mut ckt = Circuit::new();
            let inp = ckt.node("in");
            let out = ckt.node("out");
            ckt.vsource("VIN", inp, Circuit::GND, Waveform::step(0.0, 0.1e-9, 2.0));
            ckt.resistor("R1", inp, out, 2e3);
            ckt.capacitor("C1", out, Circuit::GND, 0.5e-12);
            (ckt, out)
        };
        let (ckt, out) = build();
        let with = ckt.tran(&TranOptions::to(5e-9)).unwrap();
        let without = ckt
            .tran(&TranOptions::to(5e-9).with_recovery(RecoveryPolicy::disabled()))
            .unwrap();
        assert_eq!(with.times(), without.times());
        assert_eq!(with.waveform(out).points(), without.waveform(out).points());
    }

    #[test]
    fn tiny_solve_budget_aborts_with_a_typed_error() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VIN", inp, Circuit::GND, Waveform::step(0.0, 1e-12, 1.0));
        ckt.resistor("R1", inp, out, 1e3);
        ckt.capacitor("C1", out, Circuit::GND, 1e-12);
        let strangled = RecoveryPolicy {
            step_budget: 3,
            ..RecoveryPolicy::default()
        };
        match ckt.tran(&TranOptions::to(5e-9).with_recovery(strangled)) {
            Err(AnalysisError::Aborted { analysis, .. }) => assert_eq!(analysis, "transient"),
            other => panic!("expected an aborted run, got {other:?}"),
        }
    }
}
