//! DC sweep analysis with solution continuation.
//!
//! Sweeps one voltage source over a range, warm-starting each point from the
//! previous solution. This is how voltage-transfer curves (VTCs) are
//! extracted for the threshold-selection analysis of §2 of the paper.

use crate::cancel::CancelToken;
use crate::circuit::{Circuit, NodeId, Waveform};
use crate::op::{dc_solve_at, OpResult};
use crate::solver::AnalysisError;
use proxim_numeric::grid::linspace;
use proxim_numeric::pwl::Pwl;

/// The result of a DC sweep: one solved operating point per sweep value.
#[derive(Debug, Clone)]
pub struct DcSweepResult {
    sweep: Vec<f64>,
    points: Vec<OpResult>,
}

impl DcSweepResult {
    /// The swept source values.
    pub fn sweep_values(&self) -> &[f64] {
        &self.sweep
    }

    /// The solved operating point at sweep index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn point(&self, i: usize) -> &OpResult {
        &self.points[i]
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.sweep.len()
    }

    /// Whether the sweep is empty (never true for a valid result).
    pub fn is_empty(&self) -> bool {
        self.sweep.is_empty()
    }

    /// The transfer curve of `node` as a piecewise-linear function of the
    /// swept value.
    ///
    /// # Panics
    ///
    /// Panics if the sweep was run in descending order (reverse it first) —
    /// [`Pwl`] requires non-decreasing abscissae.
    // The panic is part of the documented contract above.
    #[allow(clippy::expect_used)]
    pub fn transfer_curve(&self, node: NodeId) -> Pwl {
        Pwl::new(
            self.sweep
                .iter()
                .zip(&self.points)
                .map(|(&x, op)| (x, op.voltage(node)))
                .collect(),
        )
        .expect("sweep produces a valid curve")
    }
}

pub(crate) fn dc_sweep(
    ckt: &Circuit,
    source: &str,
    from: f64,
    to: f64,
    points: usize,
    cancel: &CancelToken,
) -> Result<DcSweepResult, AnalysisError> {
    assert!(points >= 2, "a sweep needs at least two points");
    let mut work = ckt.clone();
    let sweep = linspace(from, to, points);
    let mut results = Vec::with_capacity(points);
    let mut prev_x: Option<Vec<f64>> = None;

    for (i, &v) in sweep.iter().enumerate() {
        work.set_vsource(source, Waveform::Dc(v));
        let op = match (
            dc_solve_at(&work, 0.0, prev_x.as_deref(), cancel),
            prev_x.as_deref(),
        ) {
            (Ok(op), _) => op,
            // A cooperative stop must surface as such — never be retried as
            // if it were a convergence failure.
            (Err(e), _) if e.is_cancellation() => return Err(e),
            (Err(_), Some(x0)) if i > 0 => {
                // Continuation refinement: approach the troublesome point
                // through intermediate sub-steps from the last solution.
                refine_to(&mut work, source, sweep[i - 1], v, x0, cancel)?
            }
            (Err(e), _) => return Err(e),
        };
        prev_x = Some(op.x.clone());
        results.push(op);
    }
    Ok(DcSweepResult {
        sweep,
        points: results,
    })
}

/// Walks from `from` (solved, warm start `x0`) to `to` through successively
/// finer sub-steps until the endpoint converges.
fn refine_to(
    work: &mut Circuit,
    source: &str,
    from: f64,
    to: f64,
    x0: &[f64],
    cancel: &CancelToken,
) -> Result<OpResult, AnalysisError> {
    let mut x = x0.to_vec();
    for depth in 1..=8u32 {
        let steps = 1usize << depth;
        let mut ok = true;
        let mut xi = x.clone();
        for k in 1..=steps {
            let v = from + (to - from) * k as f64 / steps as f64;
            work.set_vsource(source, Waveform::Dc(v));
            match dc_solve_at(work, 0.0, Some(&xi), cancel) {
                Ok(op) => xi = op.x,
                Err(e) if e.is_cancellation() => return Err(e),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            work.set_vsource(source, Waveform::Dc(to));
            return dc_solve_at(work, 0.0, Some(&xi), cancel);
        }
        x = x0.to_vec();
    }
    Err(AnalysisError::NoConvergence {
        analysis: "dc sweep".into(),
        detail: format!("continuation refinement failed between {from} and {to}"),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::circuit::Waveform;
    use crate::device::{MosParams, MosType};

    #[test]
    fn linear_sweep_tracks_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("VIN", a, Circuit::GND, Waveform::Dc(0.0));
        ckt.resistor("R1", a, b, 1e3);
        ckt.resistor("R2", b, Circuit::GND, 1e3);
        let sw = ckt.dc_sweep("VIN", 0.0, 4.0, 5).unwrap();
        assert_eq!(sw.len(), 5);
        for i in 0..5 {
            let vin = sw.sweep_values()[i];
            assert!((sw.point(i).voltage(b) - vin / 2.0).abs() < 1e-6);
        }
        let curve = sw.transfer_curve(b);
        assert!((curve.eval(3.0) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn inverter_vtc_is_monotone_decreasing() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::Dc(5.0));
        ckt.vsource("VIN", inp, Circuit::GND, Waveform::Dc(0.0));
        let p = MosParams {
            vt0: 0.85,
            kp: 17e-6,
            gamma: 0.5,
            phi: 0.6,
            lambda: 0.04,
        };
        let n = MosParams {
            vt0: 0.75,
            kp: 50e-6,
            gamma: 0.4,
            phi: 0.6,
            lambda: 0.03,
        };
        ckt.mosfet("MP", MosType::Pmos, out, inp, vdd, vdd, p, 8e-6, 0.8e-6);
        ckt.mosfet(
            "MN",
            MosType::Nmos,
            out,
            inp,
            Circuit::GND,
            Circuit::GND,
            n,
            4e-6,
            0.8e-6,
        );

        let sw = ckt.dc_sweep("VIN", 0.0, 5.0, 101).unwrap();
        let curve = sw.transfer_curve(out);
        // Endpoints at the rails.
        assert!(curve.eval(0.0) > 4.99);
        assert!(curve.eval(5.0) < 0.01);
        // Monotone non-increasing.
        for w in curve.points().windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6, "VTC not monotone at {:?}", w);
        }
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn sweep_rejects_single_point() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("VIN", a, Circuit::GND, Waveform::Dc(0.0));
        ckt.resistor("R", a, Circuit::GND, 1.0);
        let _ = ckt.dc_sweep("VIN", 0.0, 1.0, 1);
    }
}
