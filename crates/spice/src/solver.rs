//! Shared Newton–Raphson machinery: residual/Jacobian assembly over the MNA
//! unknown vector, and the damped Newton iteration used by every analysis.
//!
//! The unknown vector is `x = [v_1 .. v_{N-1}, i_1 .. i_M]`: the non-ground
//! node voltages followed by the branch currents of the `M` voltage sources.
//! Assembly builds the KCL residual `f(x)` (net current leaving each node,
//! plus one voltage-constraint row per source) and its Jacobian, and Newton
//! iterates `x += clamp(-J^{-1} f)`.

use crate::cancel::CancelToken;
use crate::circuit::{Circuit, Element};
use crate::device::eval_mosfet;
use crate::recover::RecoveryTrace;
use proxim_numeric::linalg::{LuFactors, Matrix, SparsityPattern, SymbolicLu};
use std::fmt;
use std::sync::Arc;

/// The error returned when an analysis fails.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// Newton–Raphson did not converge.
    NoConvergence {
        /// Which analysis failed ("dc operating point", "transient step", ...).
        analysis: String,
        /// Additional context (time point, sweep value, ...).
        detail: String,
    },
    /// The linearized system was singular.
    Singular {
        /// Which analysis failed.
        analysis: String,
    },
    /// The analysis was deliberately stopped before completing — e.g. the
    /// transient watchdog exhausted its solve budget, or a characterization
    /// worker died and its jobs were abandoned. Unlike [`Self::NoConvergence`]
    /// this is terminal: retrying with gentler settings is pointless.
    Aborted {
        /// Which analysis was stopped.
        analysis: String,
        /// Why it was stopped.
        detail: String,
    },
    /// The analysis was cancelled through a [`CancelToken`] — e.g. by a
    /// signal handler or a supervising process. Cooperative and clean: the
    /// solver unwinds at the next step or iteration boundary, so no partial
    /// artifact is ever produced. Terminal by design; the work was not
    /// wanted, so nothing retries it.
    Cancelled {
        /// Which analysis was cancelled.
        analysis: String,
        /// Context on where the cancellation was observed.
        detail: String,
    },
    /// The analysis ran past the wall-clock deadline on its [`CancelToken`].
    /// Unlike [`Self::Aborted`] (solve-count watchdog) this is a real-time
    /// bound, and it carries the recovery ladder's trace so a run that
    /// burned its budget inside recovery rungs reports *where* the time
    /// went instead of a bare timeout.
    DeadlineExceeded {
        /// Which analysis timed out.
        analysis: String,
        /// Context: by how much the deadline was missed.
        detail: String,
        /// Everything the recovery ladder did before time ran out. Boxed to
        /// keep the error small on the happy path.
        recovery: Box<RecoveryTrace>,
    },
}

impl AnalysisError {
    /// Whether this error is a cooperative stop ([`Self::Cancelled`] or
    /// [`Self::DeadlineExceeded`]) rather than a solver failure. Callers
    /// that degrade gracefully on solver failures must *not* degrade on
    /// cancellation — the run was stopped on purpose and its absence is not
    /// a property of the circuit.
    pub fn is_cancellation(&self) -> bool {
        matches!(self, Self::Cancelled { .. } | Self::DeadlineExceeded { .. })
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoConvergence { analysis, detail } => {
                write!(f, "{analysis} failed to converge ({detail})")
            }
            Self::Singular { analysis } => {
                write!(f, "{analysis} produced a singular system")
            }
            Self::Aborted { analysis, detail } => {
                write!(f, "{analysis} was aborted ({detail})")
            }
            Self::Cancelled { analysis, detail } => {
                write!(f, "{analysis} was cancelled ({detail})")
            }
            Self::DeadlineExceeded {
                analysis,
                detail,
                recovery,
            } => {
                write!(
                    f,
                    "{analysis} exceeded its deadline ({detail}; {} recovery attempts first)",
                    recovery.total()
                )
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// How capacitors contribute to the residual.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CapMode<'a> {
    /// DC: capacitors are open circuits.
    Dc,
    /// Transient with a companion model: `i = geq * (v - v_prev) + i_hist`.
    ///
    /// `hist` holds per-capacitor `(v_prev, i_prev)` in element order
    /// (entries for non-capacitor elements are unused).
    Tran {
        /// `geq` multiplier: `C / h` for backward Euler, `2C / h` for
        /// trapezoidal.
        geq_per_farad: f64,
        /// Weight of the previous capacitor current in the new current:
        /// 0 for backward Euler, -1 for trapezoidal... stored as the
        /// additive term coefficient: `i = geq dv + trap_coeff * i_prev`.
        trap_coeff: f64,
        /// Per-element `(v_prev, i_prev)` history.
        hist: &'a [(f64, f64)],
    },
}

/// Analysis context shared by assembly and the Newton driver.
pub(crate) struct System<'a> {
    pub ckt: &'a Circuit,
    /// Number of non-ground nodes.
    pub nv: usize,
    /// Total unknowns (`nv + n_vsources`).
    pub n: usize,
}

impl<'a> System<'a> {
    pub fn new(ckt: &'a Circuit) -> Self {
        let nv = ckt.node_count() - 1;
        Self {
            ckt,
            nv,
            n: nv + ckt.vsource_count(),
        }
    }

    /// Voltage of `node` under unknown vector `x` (ground = 0).
    #[inline]
    pub fn v(&self, x: &[f64], node: crate::circuit::NodeId) -> f64 {
        if node.index() == 0 {
            0.0
        } else {
            x[node.index() - 1]
        }
    }

    /// Row/column index for a node, or `None` for ground.
    #[inline]
    fn ni(&self, node: crate::circuit::NodeId) -> Option<usize> {
        if node.index() == 0 {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Assembles the residual `f` and Jacobian `jac` at `x`.
    ///
    /// `t` is the source evaluation time; `src_scale` scales all source
    /// values (used by source stepping); `gmin` is the conductance tied from
    /// every node to ground; `caps` selects the capacitor companion model.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        &self,
        x: &[f64],
        t: f64,
        src_scale: f64,
        gmin: f64,
        caps: CapMode<'_>,
        f: &mut [f64],
        jac: &mut Matrix,
    ) {
        self.assemble_prelude(x, gmin, f, jac);
        for (ei, e) in self.ckt.elements.iter().enumerate() {
            self.stamp_element(ei, e, x, t, src_scale, caps, f, jac);
        }
    }

    /// Zeroes `f`/`jac` and stamps the gmin tie from every non-ground node
    /// to ground. The first half of [`Self::assemble`], split out so the
    /// batched transient kernel can run the element loop lane-innermost
    /// while each lane still sees the exact scalar stamping sequence.
    pub fn assemble_prelude(&self, x: &[f64], gmin: f64, f: &mut [f64], jac: &mut Matrix) {
        f.fill(0.0);
        jac.clear();
        for i in 0..self.nv {
            f[i] += gmin * x[i];
            jac.add(i, i, gmin);
        }
    }

    /// Stamps one element — the body of [`Self::assemble`]'s element loop.
    /// `ei` is the element's index (capacitor history lookups are by element
    /// index).
    #[allow(clippy::too_many_arguments)]
    pub fn stamp_element(
        &self,
        ei: usize,
        e: &Element,
        x: &[f64],
        t: f64,
        src_scale: f64,
        caps: CapMode<'_>,
        f: &mut [f64],
        jac: &mut Matrix,
    ) {
        {
            match e {
                Element::Resistor { a, b, ohms } => {
                    let g = 1.0 / ohms;
                    let i = g * (self.v(x, *a) - self.v(x, *b));
                    self.stamp_conductance_pair(*a, *b, g, i, f, jac);
                }
                Element::Capacitor { a, b, farads } => match caps {
                    CapMode::Dc => {}
                    CapMode::Tran {
                        geq_per_farad,
                        trap_coeff,
                        hist,
                    } => {
                        let geq = geq_per_farad * farads;
                        let (v_prev, i_prev) = hist[ei];
                        let dv = self.v(x, *a) - self.v(x, *b);
                        let i = geq * (dv - v_prev) + trap_coeff * i_prev;
                        self.stamp_conductance_pair(*a, *b, geq, i, f, jac);
                    }
                },
                Element::ISource { plus, minus, wave } => {
                    let i = src_scale * wave.value_at(t);
                    if let Some(p) = self.ni(*plus) {
                        f[p] += i;
                    }
                    if let Some(m) = self.ni(*minus) {
                        f[m] -= i;
                    }
                }
                Element::VSource {
                    plus,
                    minus,
                    wave,
                    branch,
                } => {
                    let row = self.nv + branch;
                    let i_branch = x[row];
                    // Branch current leaves `plus`, enters `minus`.
                    if let Some(p) = self.ni(*plus) {
                        f[p] += i_branch;
                        jac.add(p, row, 1.0);
                        jac.add(row, p, 1.0);
                    }
                    if let Some(m) = self.ni(*minus) {
                        f[m] -= i_branch;
                        jac.add(m, row, -1.0);
                        jac.add(row, m, -1.0);
                    }
                    f[row] = self.v(x, *plus) - self.v(x, *minus) - src_scale * wave.value_at(t);
                }
                Element::Mosfet {
                    mos_type,
                    d,
                    g,
                    s,
                    b,
                    params,
                    beta,
                } => {
                    let st = eval_mosfet(
                        *mos_type,
                        params,
                        *beta,
                        self.v(x, *d),
                        self.v(x, *g),
                        self.v(x, *s),
                        self.v(x, *b),
                    );
                    // Current i_d enters the drain, leaves the source.
                    if let Some(di) = self.ni(*d) {
                        f[di] += st.i_d;
                        for (node, gg) in [(*d, st.g_d), (*g, st.g_g), (*s, st.g_s), (*b, st.g_b)] {
                            if let Some(ci) = self.ni(node) {
                                jac.add(di, ci, gg);
                            }
                        }
                    }
                    if let Some(si) = self.ni(*s) {
                        f[si] -= st.i_d;
                        for (node, gg) in [(*d, st.g_d), (*g, st.g_g), (*s, st.g_s), (*b, st.g_b)] {
                            if let Some(ci) = self.ni(node) {
                                jac.add(si, ci, -gg);
                            }
                        }
                    }
                }
            }
        }
    }

    /// The Jacobian's structural occupancy: exactly the `(row, col)` slots
    /// touched by [`Self::assemble`], independent of operating point. Input
    /// to the once-per-run symbolic LU analysis.
    pub fn sparsity_pattern(&self) -> SparsityPattern {
        let mut p = SparsityPattern::new(self.n);
        for i in 0..self.nv {
            p.mark(i, i);
        }
        let mark_pair = |p: &mut SparsityPattern, a: Option<usize>, b: Option<usize>| {
            if let Some(ai) = a {
                p.mark(ai, ai);
                if let Some(bi) = b {
                    p.mark(ai, bi);
                    p.mark(bi, ai);
                }
            }
            if let Some(bi) = b {
                p.mark(bi, bi);
            }
        };
        for e in self.ckt.elements.iter() {
            match e {
                Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => {
                    mark_pair(&mut p, self.ni(*a), self.ni(*b));
                }
                Element::ISource { .. } => {}
                Element::VSource {
                    plus,
                    minus,
                    branch,
                    ..
                } => {
                    let row = self.nv + branch;
                    for node in [self.ni(*plus), self.ni(*minus)].into_iter().flatten() {
                        p.mark(node, row);
                        p.mark(row, node);
                    }
                }
                Element::Mosfet { d, g, s, b, .. } => {
                    for ri in [self.ni(*d), self.ni(*s)].into_iter().flatten() {
                        for ci in [self.ni(*d), self.ni(*g), self.ni(*s), self.ni(*b)]
                            .into_iter()
                            .flatten()
                        {
                            p.mark(ri, ci);
                        }
                    }
                }
            }
        }
        p
    }

    /// A static pivot order for this system's Jacobians: the classic MNA
    /// row exchange. Node rows whose diagonal is only the gmin tie (a node
    /// held by a voltage source) would be hopeless natural pivots against
    /// the source's unit constraint entries, so each source's branch row is
    /// swapped with its plus (or minus) node row — putting the `±1`
    /// constraint coefficient on the diagonal for the node column and the
    /// `±1` branch-current coefficient on the diagonal for the branch
    /// column. A pure function of topology, shared by every lane of a
    /// batch.
    pub fn static_pivot_order(&self) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..self.n).collect();
        let mut used = vec![false; self.n];
        for e in self.ckt.elements.iter() {
            if let Element::VSource {
                plus,
                minus,
                branch,
                ..
            } = e
            {
                let row = self.nv + branch;
                let node = self.ni(*plus).or_else(|| self.ni(*minus));
                if let Some(nd) = node {
                    if !used[nd] && !used[row] {
                        perm.swap(nd, row);
                        used[nd] = true;
                        used[row] = true;
                    }
                }
            }
        }
        perm
    }

    /// Builds the shared symbolic factorization for this system, or `None`
    /// when the static order is structurally impossible (every solve then
    /// uses dense partial pivoting, as before the split).
    pub fn symbolic_lu(&self) -> Option<Arc<SymbolicLu>> {
        let sym = SymbolicLu::analyze(&self.sparsity_pattern(), self.static_pivot_order());
        sym.is_viable().then(|| Arc::new(sym))
    }

    /// Stamps a two-terminal branch with current `i` (from `a` to `b`) and
    /// small-signal conductance `g`.
    fn stamp_conductance_pair(
        &self,
        a: crate::circuit::NodeId,
        b: crate::circuit::NodeId,
        g: f64,
        i: f64,
        f: &mut [f64],
        jac: &mut Matrix,
    ) {
        if let Some(ai) = self.ni(a) {
            f[ai] += i;
            jac.add(ai, ai, g);
            if let Some(bi) = self.ni(b) {
                jac.add(ai, bi, -g);
            }
        }
        if let Some(bi) = self.ni(b) {
            f[bi] -= i;
            jac.add(bi, bi, g);
            if let Some(ai) = self.ni(a) {
                jac.add(bi, ai, -g);
            }
        }
    }
}

/// Newton iteration options.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NewtonOptions {
    /// Convergence tolerance on the voltage update, in volts.
    pub vtol: f64,
    /// Convergence tolerance on the KCL residual, in amperes.
    pub itol: f64,
    /// Per-iteration clamp on each voltage update, in volts.
    pub vstep_limit: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            vtol: 1e-9,
            itol: 1e-9,
            vstep_limit: 1.0,
            max_iter: 120,
        }
    }
}

/// Outcome of a Newton solve. On convergence the solution is left in the
/// workspace's `x` buffer (see [`NewtonWorkspace`]).
pub(crate) enum NewtonOutcome {
    /// Converged; holds the iteration count.
    Converged(usize),
    /// Did not converge within the iteration budget.
    Failed,
}

impl NewtonOutcome {
    /// Converts the outcome into a `Result`, building a
    /// [`AnalysisError::NoConvergence`] on failure — so even "cannot happen"
    /// failures (e.g. a linear circuit) surface as recoverable errors
    /// instead of panics.
    pub fn into_converged(
        self,
        analysis: &str,
        detail: impl FnOnce() -> String,
    ) -> Result<usize, AnalysisError> {
        match self {
            Self::Converged(iters) => Ok(iters),
            Self::Failed => Err(AnalysisError::NoConvergence {
                analysis: analysis.into(),
                detail: detail(),
            }),
        }
    }
}

/// Reusable buffers for [`newton_solve`]: the iterate, residual, negated
/// residual, Newton update, Jacobian, and its LU factors.
///
/// A transient run performs thousands of Newton solves on a system of fixed
/// size; allocating these per call (let alone per iteration) dominated the
/// solver's profile. One workspace lives for the whole analysis, and every
/// buffer is recycled across iterations, steps, and continuation stages.
pub(crate) struct NewtonWorkspace {
    /// Current iterate; the solution when the solve converges.
    pub x: Vec<f64>,
    /// When set, wall time spent in LU factorization + triangular solves is
    /// accumulated into `lu_seconds`. Off by default: two `Instant` reads
    /// per iteration are a measurable fraction of a small-system iteration,
    /// so this profiling is only armed at the trace observability level.
    pub time_lu: bool,
    /// Accumulated LU factor/solve wall time (see `time_lu`), in seconds.
    pub lu_seconds: f64,
    /// When present, factorizations first try the shared static-order
    /// symbolic path ([`SymbolicLu::factor_into`]); a declined factorization
    /// falls back to dense partial pivoting. `None` → always dense.
    pub symbolic: Option<Arc<SymbolicLu>>,
    /// Factorizations that took the static-order path.
    pub static_solves: u64,
    /// Factorizations where the static order declined (threshold pivot
    /// failure) and dense partial pivoting ran instead.
    pub static_fallbacks: u64,
    pub(crate) f: Vec<f64>,
    neg_f: Vec<f64>,
    pub(crate) dx: Vec<f64>,
    pub(crate) jac: Matrix,
    lu: LuFactors,
}

impl NewtonWorkspace {
    pub fn new() -> Self {
        Self {
            x: Vec::new(),
            time_lu: false,
            lu_seconds: 0.0,
            symbolic: None,
            static_solves: 0,
            static_fallbacks: 0,
            f: Vec::new(),
            neg_f: Vec::new(),
            dx: Vec::new(),
            jac: Matrix::zeros(0, 0),
            lu: LuFactors::empty(),
        }
    }

    /// Sizes every buffer for an `n`-unknown system and seeds the iterate.
    pub(crate) fn prepare(&mut self, x0: &[f64]) {
        let n = x0.len();
        self.x.clear();
        self.x.extend_from_slice(x0);
        self.f.clear();
        self.f.resize(n, 0.0);
        self.neg_f.clear();
        self.neg_f.resize(n, 0.0);
        if self.jac.rows() != n {
            self.jac = Matrix::zeros(n, n);
        }
    }

    /// Factors the assembled Jacobian and solves for the Newton update
    /// `dx = -J⁻¹ f`, leaving it in `self.dx`. Returns `false` when the
    /// system is singular.
    ///
    /// Dispatch: the static-order symbolic path when installed and its
    /// stability threshold holds, else dense partial pivoting — a pure
    /// function of the Jacobian's values, so identical matrices take
    /// identical paths regardless of which kernel (scalar or batched)
    /// issued the solve. That is the linchpin of the byte-identity
    /// guarantee across `jobs`/`batch` configurations.
    pub(crate) fn factor_and_solve(&mut self) -> bool {
        let lu_start = self.time_lu.then(std::time::Instant::now);
        let mut static_ok = false;
        let factored = match &self.symbolic {
            Some(sym) => {
                if sym.factor_into(&self.jac, &mut self.lu) {
                    static_ok = true;
                    true
                } else {
                    self.static_fallbacks += 1;
                    self.jac.lu_into(&mut self.lu).is_ok()
                }
            }
            None => self.jac.lu_into(&mut self.lu).is_ok(),
        };
        if factored {
            self.neg_f.clear();
            self.neg_f.extend(self.f.iter().map(|v| -v));
            if static_ok {
                self.static_solves += 1;
                if let Some(sym) = &self.symbolic {
                    sym.solve_into(&self.lu, &self.neg_f, &mut self.dx);
                }
            } else {
                self.lu.solve_into(&self.neg_f, &mut self.dx);
            }
        }
        if let Some(t0) = lu_start {
            self.lu_seconds += t0.elapsed().as_secs_f64();
        }
        factored
    }

    /// Applies the Newton update in `self.dx` to the iterate with the
    /// voltage clamp, returning `(max_dv, max_res)` — the unclamped maximum
    /// voltage update and the maximum KCL residual, the two convergence
    /// measures.
    pub(crate) fn apply_update(&mut self, sys: &System<'_>, opts: &NewtonOptions) -> (f64, f64) {
        let mut max_dv = 0.0f64;
        for i in 0..sys.n {
            // Clamp voltage updates; branch currents are left unclamped.
            let step = if i < sys.nv {
                self.dx[i].clamp(-opts.vstep_limit, opts.vstep_limit)
            } else {
                self.dx[i]
            };
            self.x[i] += step;
            if i < sys.nv {
                max_dv = max_dv.max(self.dx[i].abs());
            }
        }
        let max_res = self
            .f
            .iter()
            .take(sys.nv)
            .fold(0.0f64, |m, v| m.max(v.abs()));
        (max_dv, max_res)
    }
}

/// Runs damped Newton–Raphson from `x0`, reusing `ws` for every buffer.
/// On [`NewtonOutcome::Converged`] the solution is in `ws.x`.
///
/// The iteration boundary is a cancellation point: `cancel` is polled before
/// every assemble/factor/solve cycle, so even a single pathological solve
/// (damped retries run up to 1200 iterations) honors a stop request or
/// deadline promptly.
///
/// # Errors
///
/// Returns [`AnalysisError::Cancelled`] / [`AnalysisError::DeadlineExceeded`]
/// when `cancel` trips; convergence failures are reported through
/// [`NewtonOutcome`], not as errors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn newton_solve(
    sys: &System<'_>,
    x0: &[f64],
    t: f64,
    src_scale: f64,
    gmin: f64,
    caps: CapMode<'_>,
    opts: &NewtonOptions,
    ws: &mut NewtonWorkspace,
    cancel: &CancelToken,
) -> Result<NewtonOutcome, AnalysisError> {
    let n = sys.n;
    debug_assert_eq!(n, x0.len(), "x0 must match the system size");
    ws.prepare(x0);

    for iter in 0..opts.max_iter {
        cancel.check("newton iteration")?;
        sys.assemble(&ws.x, t, src_scale, gmin, caps, &mut ws.f, &mut ws.jac);
        if !ws.factor_and_solve() {
            return Ok(NewtonOutcome::Failed);
        }
        let (max_dv, max_res) = ws.apply_update(sys, opts);
        if max_dv < opts.vtol && max_res < opts.itol {
            return Ok(NewtonOutcome::Converged(iter + 1));
        }
    }
    Ok(NewtonOutcome::Failed)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::circuit::Waveform;

    #[test]
    fn resistor_divider_assembly_is_consistent() -> Result<(), AnalysisError> {
        // Vdd -- R1 -- mid -- R2 -- gnd, solved by hand: v_mid = 2.5.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let mid = ckt.node("mid");
        ckt.vsource("V1", vdd, Circuit::GND, Waveform::Dc(5.0));
        ckt.resistor("R1", vdd, mid, 1e3);
        ckt.resistor("R2", mid, Circuit::GND, 1e3);

        let sys = System::new(&ckt);
        let x0 = vec![0.0; sys.n];
        let mut ws = NewtonWorkspace::new();
        newton_solve(
            &sys,
            &x0,
            0.0,
            1.0,
            1e-12,
            CapMode::Dc,
            &NewtonOptions::default(),
            &mut ws,
            &CancelToken::new(),
        )?
        .into_converged("dc solve", || "linear circuit must converge".into())?;
        assert!((sys.v(&ws.x, vdd) - 5.0).abs() < 1e-8);
        assert!((sys.v(&ws.x, mid) - 2.5).abs() < 1e-6);
        // Source branch current = -5/2k (current flows out of +).
        assert!((ws.x[sys.nv] + 2.5e-3).abs() < 1e-8);
        Ok(())
    }

    #[test]
    fn kcl_residual_vanishes_at_solution() -> Result<(), AnalysisError> {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::Dc(2.0));
        ckt.resistor("R1", a, b, 100.0);
        ckt.resistor("R2", b, Circuit::GND, 300.0);

        let sys = System::new(&ckt);
        let x0 = vec![0.0; sys.n];
        let mut ws = NewtonWorkspace::new();
        newton_solve(
            &sys,
            &x0,
            0.0,
            1.0,
            1e-12,
            CapMode::Dc,
            &NewtonOptions::default(),
            &mut ws,
            &CancelToken::new(),
        )?
        .into_converged("dc solve", || "must converge".into())?;
        let x = ws.x.clone();
        let mut f = vec![0.0; sys.n];
        let mut jac = Matrix::zeros(sys.n, sys.n);
        sys.assemble(&x, 0.0, 1.0, 1e-12, CapMode::Dc, &mut f, &mut jac);
        for (i, v) in f.iter().enumerate().take(sys.nv) {
            assert!(v.abs() < 1e-9, "residual row {i} = {v}");
        }
        Ok(())
    }

    #[test]
    fn source_scale_scales_the_solution() -> Result<(), AnalysisError> {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GND, Waveform::Dc(4.0));
        ckt.resistor("R1", a, Circuit::GND, 1e3);
        let sys = System::new(&ckt);
        let x0 = vec![0.0; sys.n];
        let mut ws = NewtonWorkspace::new();
        newton_solve(
            &sys,
            &x0,
            0.0,
            0.5,
            1e-12,
            CapMode::Dc,
            &NewtonOptions::default(),
            &mut ws,
            &CancelToken::new(),
        )?
        .into_converged("dc solve", || "must converge".into())?;
        assert!((sys.v(&ws.x, a) - 2.0).abs() < 1e-8);
        Ok(())
    }

    #[test]
    fn failed_outcome_converts_to_a_typed_error() {
        let err = NewtonOutcome::Failed
            .into_converged("linear solve", || "did not converge".into())
            .expect_err("Failed must map to an error");
        assert_eq!(
            err,
            AnalysisError::NoConvergence {
                analysis: "linear solve".into(),
                detail: "did not converge".into(),
            }
        );
        let ok = NewtonOutcome::Converged(3).into_converged("x", || unreachable!());
        assert_eq!(ok, Ok(3));
    }

    #[test]
    fn static_order_factors_mna_systems_and_matches_dense() {
        use crate::device::{MosParams, MosType};
        // A CMOS inverter mid-transition: gmin-weak gate-node rows, vsource
        // constraint rows with structurally-zero diagonals — the shapes the
        // static MNA row exchange exists for.
        let p = MosParams {
            vt0: 0.85,
            kp: 17e-6,
            gamma: 0.5,
            phi: 0.6,
            lambda: 0.04,
        };
        let n = MosParams {
            vt0: 0.75,
            kp: 50e-6,
            gamma: 0.4,
            phi: 0.6,
            lambda: 0.03,
        };
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::Dc(5.0));
        ckt.vsource("VIN", inp, Circuit::GND, Waveform::Dc(2.5));
        ckt.mosfet("MP", MosType::Pmos, out, inp, vdd, vdd, p, 8e-6, 0.8e-6);
        ckt.mosfet(
            "MN",
            MosType::Nmos,
            out,
            inp,
            Circuit::GND,
            Circuit::GND,
            n,
            4e-6,
            0.8e-6,
        );
        ckt.capacitor("CL", out, Circuit::GND, 100e-15);

        let sys = System::new(&ckt);
        let sym = sys.symbolic_lu().expect("MNA static order must be viable");
        // Assemble at a mid-transition operating point and compare solves.
        let x = vec![5.0, 2.5, 2.0, -1e-4, 0.0];
        let mut f = vec![0.0; sys.n];
        let mut jac = Matrix::zeros(sys.n, sys.n);
        sys.assemble(&x, 0.0, 1.0, 1e-12, CapMode::Dc, &mut f, &mut jac);

        let mut stat = LuFactors::empty();
        assert!(
            sym.factor_into(&jac, &mut stat),
            "static order declined on a healthy inverter Jacobian"
        );
        let rhs: Vec<f64> = f.iter().map(|v| -v).collect();
        let mut x_static = Vec::new();
        sym.solve_into(&stat, &rhs, &mut x_static);
        let x_dense = jac.lu().unwrap().solve(&rhs);
        for (a, b) in x_static.iter().zip(&x_dense) {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "static {a} vs dense {b}"
            );
        }
    }

    #[test]
    fn error_display() {
        let e = AnalysisError::NoConvergence {
            analysis: "dc operating point".into(),
            detail: "gmin exhausted".into(),
        };
        assert!(e.to_string().contains("failed to converge"));
        let s = AnalysisError::Singular {
            analysis: "transient".into(),
        };
        assert!(s.to_string().contains("singular"));
        let a = AnalysisError::Aborted {
            analysis: "transient".into(),
            detail: "solve budget exhausted".into(),
        };
        assert!(a.to_string().contains("aborted"));
    }
}
