//! DC operating-point analysis.
//!
//! Solves the nonlinear DC system with Newton–Raphson. When the direct solve
//! fails (common for high-gain circuits started from a zero guess), the
//! solver falls back to gmin stepping and then source stepping — the same
//! continuation strategies SPICE uses.

use crate::cancel::CancelToken;
use crate::circuit::{Circuit, NodeId};
use crate::solver::{
    newton_solve, AnalysisError, CapMode, NewtonOptions, NewtonOutcome, NewtonWorkspace, System,
};

/// The gmin tied from every node to ground in a converged solution.
pub(crate) const GMIN: f64 = 1e-12;

/// The solved DC state of a circuit.
#[derive(Debug, Clone)]
pub struct OpResult {
    /// Node voltages indexed by `NodeId` (ground included as entry 0).
    voltages: Vec<f64>,
    /// Branch currents of the voltage sources, in source order.
    branch_currents: Vec<f64>,
    /// The raw unknown vector, used to warm-start follow-up analyses.
    pub(crate) x: Vec<f64>,
}

impl OpResult {
    pub(crate) fn from_x(ckt: &Circuit, x: Vec<f64>) -> Self {
        let nv = ckt.node_count() - 1;
        let mut voltages = Vec::with_capacity(nv + 1);
        voltages.push(0.0);
        voltages.extend_from_slice(&x[..nv]);
        let branch_currents = x[nv..].to_vec();
        Self {
            voltages,
            branch_currents,
            x,
        }
    }

    /// The solved voltage of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the solved circuit.
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.index()]
    }

    /// The branch current of the `k`-th voltage source (positive current
    /// flows into the `plus` terminal and out of the source's `minus`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn branch_current(&self, k: usize) -> f64 {
        self.branch_currents[k]
    }

    /// All node voltages (entry 0 is ground).
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// The raw MNA unknown vector (node voltages then branch currents),
    /// suitable for warm-starting [`dc_solve_warm`].
    pub fn raw(&self) -> &[f64] {
        &self.x
    }
}

/// Computes the DC operating point with continuation fallbacks.
pub(crate) fn dc_op(ckt: &Circuit) -> Result<OpResult, AnalysisError> {
    let op = dc_solve_at(ckt, 0.0, None, &CancelToken::new())?;
    Ok(op)
}

/// Computes the DC operating point, optionally warm-starting Newton from a
/// previous solution's raw unknown vector (see [`OpResult::raw`]).
///
/// This is the building block for custom continuation loops (e.g. sweeping
/// several sources simultaneously, which [`Circuit::dc_sweep`] does not
/// cover).
///
/// # Errors
///
/// Returns [`AnalysisError`] if Newton–Raphson fails to converge even with
/// gmin and source stepping.
pub fn dc_solve_warm(ckt: &Circuit, x0: Option<&[f64]>) -> Result<OpResult, AnalysisError> {
    dc_solve_at(ckt, 0.0, x0, &CancelToken::new())
}

/// Like [`dc_solve_warm`], honoring a cancellation token at every Newton
/// iteration — the building block for interruptible DC sweep loops (e.g.
/// VTC-family extraction).
///
/// # Errors
///
/// [`AnalysisError`] on convergence failure, or the token's
/// `Cancelled`/`DeadlineExceeded` when `cancel` trips mid-solve.
pub fn dc_solve_warm_cancellable(
    ckt: &Circuit,
    x0: Option<&[f64]>,
    cancel: &CancelToken,
) -> Result<OpResult, AnalysisError> {
    dc_solve_at(ckt, 0.0, x0, cancel)
}

/// Solves the DC system with sources evaluated at time `t`, optionally warm
/// starting from `x0`. Used directly by the operating point (`t = 0`) and by
/// the DC sweep.
pub(crate) fn dc_solve_at(
    ckt: &Circuit,
    t: f64,
    x0: Option<&[f64]>,
    cancel: &CancelToken,
) -> Result<OpResult, AnalysisError> {
    let sys = System::new(ckt);
    let mut ws = NewtonWorkspace::new();
    dc_solve_with(ckt, &sys, t, x0, cancel, &mut ws)
}

/// The body of [`dc_solve_at`] over a caller-provided system and workspace,
/// so the transient path (scalar and batched alike) can run the DC init
/// through its reusable arena — symbolic factorization included. Every
/// configuration funnels through the same solve sequence, which keeps the
/// initial condition bit-identical across them.
pub(crate) fn dc_solve_with(
    ckt: &Circuit,
    sys: &System<'_>,
    t: f64,
    x0: Option<&[f64]>,
    cancel: &CancelToken,
    ws: &mut NewtonWorkspace,
) -> Result<OpResult, AnalysisError> {
    let opts = NewtonOptions::default();
    // Heavy damping for deep logic: small clamped steps cannot oscillate
    // across a chain of high-gain stages, at the cost of many iterations.
    let damped = NewtonOptions {
        vstep_limit: 0.15,
        max_iter: 1200,
        ..opts
    };
    let zero = vec![0.0; sys.n];
    let start = x0.unwrap_or(&zero);

    // 1. Direct attempt, then a damped retry.
    if let NewtonOutcome::Converged(_) =
        newton_solve(sys, start, t, 1.0, GMIN, CapMode::Dc, &opts, ws, cancel)?
    {
        return Ok(OpResult::from_x(ckt, std::mem::take(&mut ws.x)));
    }
    if let NewtonOutcome::Converged(_) =
        newton_solve(sys, start, t, 1.0, GMIN, CapMode::Dc, &damped, ws, cancel)?
    {
        return Ok(OpResult::from_x(ckt, std::mem::take(&mut ws.x)));
    }

    // 2. gmin stepping: solve with a large gmin (heavily damped circuit) and
    //    relax it down to the target, warm-starting each stage.
    let mut x = start.to_vec();
    let mut gmin = 1e-3;
    let mut ok = true;
    while gmin >= GMIN * 0.99 {
        match newton_solve(sys, &x, t, 1.0, gmin, CapMode::Dc, &damped, ws, cancel)? {
            NewtonOutcome::Converged(_) => std::mem::swap(&mut x, &mut ws.x),
            NewtonOutcome::Failed => {
                ok = false;
                break;
            }
        }
        gmin /= 10.0;
    }
    if ok {
        return Ok(OpResult::from_x(ckt, x));
    }

    // 3. Source stepping: ramp all sources from 0 to full value.
    let mut x = zero;
    let steps = 40;
    for k in 0..=steps {
        let scale = k as f64 / steps as f64;
        newton_solve(sys, &x, t, scale, GMIN, CapMode::Dc, &damped, ws, cancel)?
            .into_converged("dc operating point", || {
                format!("source stepping stalled at scale {scale:.2}")
            })?;
        std::mem::swap(&mut x, &mut ws.x);
    }
    Ok(OpResult::from_x(ckt, x))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::circuit::Waveform;
    use crate::device::{MosParams, MosType};

    fn nmos_params() -> MosParams {
        MosParams {
            vt0: 0.75,
            kp: 50e-6,
            gamma: 0.4,
            phi: 0.6,
            lambda: 0.03,
        }
    }

    fn pmos_params() -> MosParams {
        MosParams {
            vt0: 0.85,
            kp: 17e-6,
            gamma: 0.5,
            phi: 0.6,
            lambda: 0.04,
        }
    }

    /// A CMOS inverter: Vdd = 5 V, input from a DC source.
    fn inverter(vin: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::Dc(5.0));
        ckt.vsource("VIN", inp, Circuit::GND, Waveform::Dc(vin));
        ckt.mosfet(
            "MP",
            MosType::Pmos,
            out,
            inp,
            vdd,
            vdd,
            pmos_params(),
            8e-6,
            0.8e-6,
        );
        ckt.mosfet(
            "MN",
            MosType::Nmos,
            out,
            inp,
            Circuit::GND,
            Circuit::GND,
            nmos_params(),
            4e-6,
            0.8e-6,
        );
        (ckt, out)
    }

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::Dc(9.0));
        ckt.resistor("R1", a, b, 2e3);
        ckt.resistor("R2", b, Circuit::GND, 1e3);
        let op = ckt.dc_op().unwrap();
        assert!((op.voltage(b) - 3.0).abs() < 1e-6);
        assert!((op.branch_current(0) + 3e-3).abs() < 1e-8);
    }

    #[test]
    fn inverter_input_low_output_high() {
        let (ckt, out) = inverter(0.0);
        let op = ckt.dc_op().unwrap();
        assert!(op.voltage(out) > 4.99, "vout = {}", op.voltage(out));
    }

    #[test]
    fn inverter_input_high_output_low() {
        let (ckt, out) = inverter(5.0);
        let op = ckt.dc_op().unwrap();
        assert!(op.voltage(out) < 0.01, "vout = {}", op.voltage(out));
    }

    #[test]
    fn inverter_midpoint_is_interior() {
        // Near the switching threshold both devices conduct and the output
        // sits between the rails.
        let (ckt, out) = inverter(2.2);
        let op = ckt.dc_op().unwrap();
        let v = op.voltage(out);
        assert!(v > 0.5 && v < 4.5, "vout = {v}");
    }

    #[test]
    fn ground_voltage_is_zero() {
        let (ckt, _) = inverter(1.0);
        let op = ckt.dc_op().unwrap();
        assert_eq!(op.voltage(Circuit::GND), 0.0);
    }

    #[test]
    fn floating_node_settles_via_gmin() {
        // A node connected only through an OFF transistor: gmin defines it.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let float = ckt.node("float");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::Dc(5.0));
        ckt.vsource("VG", g, Circuit::GND, Waveform::Dc(0.0));
        ckt.mosfet(
            "MN",
            MosType::Nmos,
            float,
            g,
            Circuit::GND,
            Circuit::GND,
            nmos_params(),
            4e-6,
            0.8e-6,
        );
        let op = ckt.dc_op().unwrap();
        assert!(op.voltage(float).abs() < 1e-3);
    }

    #[test]
    fn cmos_nand2_truth_table() {
        let p = pmos_params();
        let n = nmos_params();
        let cases = [
            (0.0, 0.0, true),
            (0.0, 5.0, true),
            (5.0, 0.0, true),
            (5.0, 5.0, false),
        ];
        for (va, vb, high) in cases {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let a = ckt.node("a");
            let b = ckt.node("b");
            let out = ckt.node("out");
            let mid = ckt.node("mid");
            ckt.vsource("VDD", vdd, Circuit::GND, Waveform::Dc(5.0));
            ckt.vsource("VA", a, Circuit::GND, Waveform::Dc(va));
            ckt.vsource("VB", b, Circuit::GND, Waveform::Dc(vb));
            ckt.mosfet("MPA", MosType::Pmos, out, a, vdd, vdd, p, 8e-6, 0.8e-6);
            ckt.mosfet("MPB", MosType::Pmos, out, b, vdd, vdd, p, 8e-6, 0.8e-6);
            ckt.mosfet(
                "MNA",
                MosType::Nmos,
                out,
                a,
                mid,
                Circuit::GND,
                n,
                4e-6,
                0.8e-6,
            );
            ckt.mosfet(
                "MNB",
                MosType::Nmos,
                mid,
                b,
                Circuit::GND,
                Circuit::GND,
                n,
                4e-6,
                0.8e-6,
            );
            let op = ckt.dc_op().unwrap();
            let v = op.voltage(out);
            if high {
                assert!(v > 4.9, "NAND({va},{vb}) = {v}");
            } else {
                assert!(v < 0.1, "NAND({va},{vb}) = {v}");
            }
        }
    }
}
