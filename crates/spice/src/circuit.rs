//! Circuit representation: nodes, elements, and stimulus waveforms.

use crate::cancel::CancelToken;
use crate::device::{MosParams, MosType};
use crate::op::OpResult;
use crate::solver::AnalysisError;
use crate::sweep::DcSweepResult;
use crate::tran::{TranOptions, TranResult};
use proxim_numeric::pwl::Pwl;
use std::collections::HashMap;
use std::fmt;

/// A handle to a circuit node. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index (0 is ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A voltage-source stimulus.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// A constant voltage.
    Dc(f64),
    /// A piecewise-linear voltage over time.
    Pwl(Pwl),
}

impl Waveform {
    /// A step from `v0` to `v1` with a very fast (1 fs) linear edge starting
    /// at `t_step`.
    // The two knots are strictly increasing by construction.
    #[allow(clippy::expect_used)]
    pub fn step(v0: f64, t_step: f64, v1: f64) -> Self {
        Self::Pwl(Pwl::new(vec![(t_step, v0), (t_step + 1e-15, v1)]).expect("step knots are valid"))
    }

    /// A single ramp from `v0` to `v1` starting at `t_start` and lasting
    /// `transition_time`.
    ///
    /// # Panics
    ///
    /// Panics if `transition_time` is not strictly positive.
    pub fn ramp(t_start: f64, transition_time: f64, v0: f64, v1: f64) -> Self {
        Self::Pwl(Pwl::ramp(t_start, transition_time, v0, v1))
    }

    /// The source value at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Self::Dc(v) => *v,
            Self::Pwl(p) => p.eval(t),
        }
    }

    /// Time points at which the waveform changes slope (transient
    /// breakpoints). Empty for DC sources.
    pub fn breakpoints(&self) -> Vec<f64> {
        match self {
            Self::Dc(_) => Vec::new(),
            Self::Pwl(p) => p.points().iter().map(|&(t, _)| t).collect(),
        }
    }
}

/// One circuit element.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Element {
    Resistor {
        a: NodeId,
        b: NodeId,
        ohms: f64,
    },
    Capacitor {
        a: NodeId,
        b: NodeId,
        farads: f64,
    },
    VSource {
        plus: NodeId,
        minus: NodeId,
        wave: Waveform,
        /// Index among voltage sources (its MNA branch-current unknown).
        branch: usize,
    },
    ISource {
        plus: NodeId,
        minus: NodeId,
        wave: Waveform,
    },
    Mosfet {
        mos_type: MosType,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        params: MosParams,
        /// Precomputed `kp * w / l`.
        beta: f64,
    },
}

/// A flat netlist of elements over named nodes.
///
/// Build the circuit with [`Circuit::node`] and the element constructors,
/// then run analyses via [`Circuit::dc_op`], [`Circuit::dc_sweep`], and
/// [`Circuit::tran`].
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_index: HashMap<String, NodeId>,
    pub(crate) elements: Vec<Element>,
    element_names: Vec<String>,
    element_index: HashMap<String, usize>,
    pub(crate) n_vsources: usize,
}

impl Circuit {
    /// The ground node, present in every circuit.
    pub const GND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Self {
            node_names: vec!["0".to_string()],
            ..Self::default()
        };
        c.node_index.insert("0".to_string(), NodeId(0));
        c
    }

    /// Returns the node with the given name, creating it if absent.
    /// The names `"0"` and `"gnd"` refer to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        let key = if name == "gnd" { "0" } else { name };
        if let Some(&id) = self.node_index.get(key) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(key.to_string());
        self.node_index.insert(key.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        let key = if name == "gnd" { "0" } else { name };
        self.node_index.get(key).copied()
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total number of nodes, including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of voltage sources.
    pub fn vsource_count(&self) -> usize {
        self.n_vsources
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    fn register(&mut self, name: &str, element: Element) -> usize {
        assert!(
            !self.element_index.contains_key(name),
            "duplicate element name {name:?}"
        );
        let idx = self.elements.len();
        self.elements.push(element);
        self.element_names.push(name.to_string());
        self.element_index.insert(name.to_string(), idx);
        idx
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive or the name is duplicated.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) {
        assert!(
            ohms > 0.0 && ohms.is_finite(),
            "resistance must be positive"
        );
        self.register(name, Element::Resistor { a, b, ohms });
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is negative or the name is duplicated.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) {
        assert!(
            farads >= 0.0 && farads.is_finite(),
            "capacitance must be non-negative"
        );
        self.register(name, Element::Capacitor { a, b, farads });
    }

    /// Adds an independent voltage source with `plus` at the waveform
    /// potential relative to `minus`.
    ///
    /// # Panics
    ///
    /// Panics on a duplicated name.
    pub fn vsource(&mut self, name: &str, plus: NodeId, minus: NodeId, wave: Waveform) {
        let branch = self.n_vsources;
        self.n_vsources += 1;
        self.register(
            name,
            Element::VSource {
                plus,
                minus,
                wave,
                branch,
            },
        );
    }

    /// Adds an independent current source driving `wave` amperes from
    /// `plus`, through the source, into `minus` (SPICE convention: positive
    /// current is pulled out of the `plus` node).
    ///
    /// # Panics
    ///
    /// Panics on a duplicated name.
    pub fn isource(&mut self, name: &str, plus: NodeId, minus: NodeId, wave: Waveform) {
        self.register(name, Element::ISource { plus, minus, wave });
    }

    /// Adds a MOSFET with explicit geometry (`w`, `l` in meters).
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters or geometry, or a duplicated name.
    #[allow(clippy::too_many_arguments)]
    pub fn mosfet(
        &mut self,
        name: &str,
        mos_type: MosType,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        params: MosParams,
        w: f64,
        l: f64,
    ) {
        params.validate();
        assert!(w > 0.0 && l > 0.0, "transistor geometry must be positive");
        let beta = params.kp * w / l;
        self.register(
            name,
            Element::Mosfet {
                mos_type,
                d,
                g,
                s,
                b,
                params,
                beta,
            },
        );
    }

    /// Replaces the waveform of the named voltage source.
    ///
    /// # Panics
    ///
    /// Panics if no voltage source with that name exists.
    pub fn set_vsource(&mut self, name: &str, wave: Waveform) {
        let idx = *self
            .element_index
            .get(name)
            .unwrap_or_else(|| panic!("no element named {name:?}"));
        match &mut self.elements[idx] {
            Element::VSource { wave: w, .. } => *w = wave,
            other => panic!("element {name:?} is not a voltage source: {other:?}"),
        }
    }

    /// The waveform of the named voltage source.
    ///
    /// # Panics
    ///
    /// Panics if no voltage source with that name exists.
    pub fn vsource_waveform(&self, name: &str) -> &Waveform {
        let idx = *self
            .element_index
            .get(name)
            .unwrap_or_else(|| panic!("no element named {name:?}"));
        match &self.elements[idx] {
            Element::VSource { wave, .. } => wave,
            other => panic!("element {name:?} is not a voltage source: {other:?}"),
        }
    }

    /// All transient breakpoints contributed by source waveforms.
    pub(crate) fn source_breakpoints(&self) -> Vec<f64> {
        let mut bps: Vec<f64> = self
            .elements
            .iter()
            .filter_map(|e| match e {
                Element::VSource { wave, .. } | Element::ISource { wave, .. } => {
                    Some(wave.breakpoints())
                }
                _ => None,
            })
            .flatten()
            .collect();
        bps.sort_by(f64::total_cmp);
        bps.dedup();
        bps
    }

    /// Computes the DC operating point.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] if Newton–Raphson fails to converge even
    /// with gmin and source stepping.
    pub fn dc_op(&self) -> Result<OpResult, AnalysisError> {
        crate::op::dc_op(self)
    }

    /// Sweeps the named voltage source from `from` to `to` in `points`
    /// steps, solving the DC system at each point with continuation.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] if any sweep point fails to converge.
    ///
    /// # Panics
    ///
    /// Panics if the named element is not a voltage source or `points < 2`.
    pub fn dc_sweep(
        &self,
        source: &str,
        from: f64,
        to: f64,
        points: usize,
    ) -> Result<DcSweepResult, AnalysisError> {
        crate::sweep::dc_sweep(self, source, from, to, points, &CancelToken::new())
    }

    /// Runs a transient analysis.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] if the initial operating point or any time
    /// step fails to converge at the minimum step size.
    pub fn tran(&self, options: &TranOptions) -> Result<TranResult, AnalysisError> {
        crate::tran::tran(self, options, &CancelToken::new())
    }

    /// Runs a transient analysis under a cancellation token: `cancel` is
    /// polled at every time step and Newton iteration, so a stop request or
    /// an expired deadline unwinds the run within one solver iteration.
    ///
    /// # Errors
    ///
    /// Everything [`Circuit::tran`] returns, plus
    /// [`AnalysisError::Cancelled`] after [`CancelToken::cancel`] and
    /// [`AnalysisError::DeadlineExceeded`] (carrying the recovery trace
    /// accumulated so far) once the token's deadline passes.
    pub fn tran_cancellable(
        &self,
        options: &TranOptions,
        cancel: &CancelToken,
    ) -> Result<TranResult, AnalysisError> {
        crate::tran::tran(self, options, cancel)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn ground_is_node_zero() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), Circuit::GND);
        assert_eq!(c.node("gnd"), Circuit::GND);
        assert!(Circuit::GND.is_ground());
    }

    #[test]
    fn nodes_are_deduplicated() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_eq!(c.node("a"), a);
        assert_ne!(a, b);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.node_name(b), "b");
        assert_eq!(c.find_node("a"), Some(a));
        assert_eq!(c.find_node("zz"), None);
    }

    #[test]
    fn waveform_values() {
        assert_eq!(Waveform::Dc(3.0).value_at(55.0), 3.0);
        let r = Waveform::ramp(1.0, 2.0, 0.0, 4.0);
        assert_eq!(r.value_at(2.0), 2.0);
        let s = Waveform::step(0.0, 1.0, 5.0);
        assert_eq!(s.value_at(0.5), 0.0);
        assert_eq!(s.value_at(1.1), 5.0);
    }

    #[test]
    fn breakpoints_come_from_pwl_sources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::GND, Waveform::ramp(1e-9, 1e-9, 0.0, 1.0));
        c.vsource("V2", a, Circuit::GND, Waveform::Dc(1.0));
        let bps = c.source_breakpoints();
        assert_eq!(bps, vec![1e-9, 2e-9]);
    }

    #[test]
    fn set_vsource_replaces_waveform() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("VIN", a, Circuit::GND, Waveform::Dc(0.0));
        c.set_vsource("VIN", Waveform::Dc(2.5));
        assert_eq!(c.vsource_waveform("VIN").value_at(0.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "duplicate element name")]
    fn duplicate_names_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::GND, 1.0);
        c.resistor("R1", a, Circuit::GND, 2.0);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::GND, 0.0);
    }

    #[test]
    #[should_panic(expected = "not a voltage source")]
    fn set_vsource_on_resistor_panics() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::GND, 1.0);
        c.set_vsource("R1", Waveform::Dc(1.0));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(Circuit::GND.to_string(), "n0");
    }

    #[test]
    fn isource_norton_equivalence() {
        // 5 mA into 1 kOhm pulls the node to -5 V (current out of plus).
        let mut c = Circuit::new();
        let a = c.node("a");
        c.isource("I1", a, Circuit::GND, Waveform::Dc(5e-3));
        c.resistor("R1", a, Circuit::GND, 1e3);
        let op = c.dc_op().unwrap();
        assert!((op.voltage(a) + 5.0).abs() < 1e-6, "v = {}", op.voltage(a));
    }

    #[test]
    fn isource_charges_capacitor_linearly() {
        // A constant current into a capacitor ramps the voltage at I/C.
        let mut c = Circuit::new();
        let a = c.node("a");
        // Current switches on just after t = 0 so the DC initial condition
        // is a well-defined 0 V.
        c.isource("I1", Circuit::GND, a, Waveform::step(0.0, 1e-12, 1e-3));
        c.capacitor("C1", a, Circuit::GND, 1e-12);
        c.resistor("Rleak", a, Circuit::GND, 1e12);
        let r = c
            .tran(&crate::tran::TranOptions::to(5e-9).with_dv_max(0.05))
            .unwrap();
        let w = r.waveform(a);
        // dV/dt = 1 mA / 1 pF = 1 V/ns.
        for t_ns in [1.0, 2.0, 4.0] {
            let t = t_ns * 1e-9;
            assert!(
                (w.eval(t) - t_ns).abs() < 0.02,
                "t = {t_ns} ns: {}",
                w.eval(t)
            );
        }
    }

    #[test]
    fn isource_pwl_breakpoints_collected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.isource("I1", a, Circuit::GND, Waveform::ramp(1e-9, 2e-9, 0.0, 1e-3));
        c.resistor("R1", a, Circuit::GND, 1e3);
        let bps = c.source_breakpoints();
        assert_eq!(bps.len(), 2);
        assert!((bps[0] - 1e-9).abs() < 1e-18);
        assert!((bps[1] - 3e-9).abs() < 1e-18);
    }
}
