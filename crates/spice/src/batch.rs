//! Batched transient analysis: K independent simulations advanced in
//! lockstep over a structure-of-arrays state layout.
//!
//! Characterization sweeps solve the *same circuit topology* hundreds of
//! times with different stimuli and loads. A batch shares everything that is
//! a pure function of topology — the MNA system shape, the Jacobian sparsity
//! pattern, the static pivot order, and the symbolic LU elimination schedule
//! ([`proxim_numeric::linalg::SymbolicLu`]) — computing it once per batch
//! instead of once per Newton iteration. The device-eval/stamp loop then
//! iterates **element-outer, lane-inner**: each element's evaluation code
//! (and its branch predictor state) is hot across all K lanes before moving
//! to the next element.
//!
//! Lanes keep **private step control**: each lane plans its own step size,
//! breakpoint landing, and Newton iteration count, so a slow lane never
//! stalls the batch — the round loop simply advances whichever lanes are
//! mid-iteration. Per-round occupancy is exported through
//! [`obs::batch_metrics::ACTIVE_LANES`].
//!
//! # Byte identity with the scalar path
//!
//! The batched kernel produces bit-identical results to [`crate::tran`]
//! because every lane executes *exactly* the scalar happy path:
//!
//! - the DC init, assembly, factorization, triangular solves, update clamp,
//!   convergence test, step-size controller, and capacitor-history update
//!   are the same code (`dc_solve_with`, `stamp_element`,
//!   `factor_and_solve`, `apply_update`) in the same per-lane order — the
//!   lane-inner loop interleaves *lanes*, never the operations within one;
//! - factorization dispatch (static order vs dense fallback) is a pure
//!   function of the Jacobian's values, identical in both kernels;
//! - any lane that leaves the happy path — a failed Newton solve, an
//!   injected fault, a solve-budget trip — is **evicted**: its partial
//!   state is discarded and the whole run is redone by the scalar kernel,
//!   recovery ladder and all. Fault-injection entropy is derived from run
//!   parameters ([`crate::faultpoint::run_entropy`]), so the rerun replays
//!   the same fault decisions the lane saw.
//!
//! Eviction also keeps the telemetry honest: a lane buffers its per-solve
//! observations and books them only on completion, so histograms match a
//! scalar-only run no matter how lanes were grouped.

use crate::cancel::CancelToken;
use crate::circuit::{Circuit, Element};
use crate::faultpoint::{run_entropy, FaultStream};
use crate::op::{dc_solve_with, GMIN};
use crate::recover::RecoveryTrace;
use crate::solver::{AnalysisError, CapMode, NewtonOptions, NewtonWorkspace, System};
use crate::tran::{TranMetrics, TranOptions, TranResult};
use proxim_obs as obs;

/// One simulation of a batch: a circuit plus its transient options.
pub struct BatchRun<'a> {
    /// The circuit to simulate.
    pub ckt: &'a Circuit,
    /// Transient options for this lane.
    pub options: TranOptions,
}

/// Whether two circuits share a topology: same unknown layout and the same
/// element connectivity (kinds, terminals, branch indices) in the same
/// order. Element *values* — resistances, capacitances, waveforms, device
/// parameters — are free to differ; they live in the lane dimension.
pub fn same_topology(a: &Circuit, b: &Circuit) -> bool {
    if a.node_count() != b.node_count()
        || a.vsource_count() != b.vsource_count()
        || a.elements.len() != b.elements.len()
    {
        return false;
    }
    a.elements.iter().zip(b.elements.iter()).all(|(ea, eb)| {
        match (ea, eb) {
            (Element::Resistor { a: a1, b: b1, .. }, Element::Resistor { a: a2, b: b2, .. })
            | (Element::Capacitor { a: a1, b: b1, .. }, Element::Capacitor { a: a2, b: b2, .. }) => {
                a1 == a2 && b1 == b2
            }
            (
                Element::ISource {
                    plus: p1, minus: m1, ..
                },
                Element::ISource {
                    plus: p2, minus: m2, ..
                },
            ) => p1 == p2 && m1 == m2,
            (
                Element::VSource {
                    plus: p1,
                    minus: m1,
                    branch: br1,
                    ..
                },
                Element::VSource {
                    plus: p2,
                    minus: m2,
                    branch: br2,
                    ..
                },
            ) => p1 == p2 && m1 == m2 && br1 == br2,
            (
                Element::Mosfet {
                    d: d1,
                    g: g1,
                    s: s1,
                    b: b1,
                    ..
                },
                Element::Mosfet {
                    d: d2,
                    g: g2,
                    s: s2,
                    b: b2,
                    ..
                },
            ) => d1 == d2 && g1 == g2 && s1 == s2 && b1 == b2,
            _ => false,
        }
    })
}

/// Global-registry handles for batch-kernel telemetry.
struct BatchMetrics {
    lanes: obs::Histogram,
    active_lanes: obs::Histogram,
    groups: obs::Counter,
    evictions: obs::Counter,
    completed: obs::Counter,
}

impl BatchMetrics {
    fn new() -> Option<Self> {
        if !obs::metrics_enabled() {
            return None;
        }
        let reg = obs::Registry::global();
        let names = obs::batch_metrics::LANE_BOUNDS;
        Some(Self {
            lanes: reg.histogram(obs::batch_metrics::LANES, names),
            active_lanes: reg.histogram(obs::batch_metrics::ACTIVE_LANES, names),
            groups: reg.counter(obs::batch_metrics::GROUPS),
            evictions: reg.counter(obs::batch_metrics::EVICTIONS),
            completed: reg.counter(obs::batch_metrics::LANES_COMPLETED),
        })
    }
}

/// Where a lane is in its private step state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneState {
    /// Between steps: the next round plans a step (or finishes the lane).
    Planning,
    /// Mid-Newton-solve: each round performs one iteration.
    Iterating,
    /// Reached `t_stop`; result buffers are final.
    Done,
    /// Left the happy path; the scalar kernel reruns this lane from scratch.
    Evicted,
    /// The batch was cancelled before this lane finished.
    Cancelled,
}

/// Per-lane simulation state. Buffers are lane-private; shared state
/// (symbolic LU) is referenced through the workspace's `Arc`.
struct Lane<'a> {
    ckt: &'a Circuit,
    options: TranOptions,
    sys: System<'a>,
    faults: FaultStream,
    ws: NewtonWorkspace,
    x: Vec<f64>,
    hist: Vec<(f64, f64)>,
    breakpoints: Vec<f64>,
    bp_idx: usize,
    times: Vec<f64>,
    samples: Vec<f64>,
    branch_samples: Vec<f64>,
    t: f64,
    h: f64,
    solves: usize,
    newton_iterations: usize,
    accepted_steps: usize,
    /// Converged-iteration observations, buffered until the lane completes
    /// so evicted lanes leave no metric residue.
    pending_iters: Vec<f64>,
    // Current-step plan.
    h_eff: f64,
    t_new: f64,
    geq_per_farad: f64,
    trap_coeff: f64,
    iter: usize,
    state: LaneState,
}

impl<'a> Lane<'a> {
    /// Records the accepted state at time `t` into the flat sample buffers
    /// — the scalar kernel's `record` closure, verbatim.
    fn record(&mut self, t: f64) {
        self.times.push(t);
        self.samples.push(0.0); // ground
        self.samples.extend_from_slice(&self.x[..self.sys.nv]);
        self.branch_samples
            .extend_from_slice(&self.x[self.sys.nv..]);
    }

    /// Plans the next step: the scalar step loop's preamble plus the
    /// watchdog/fault gate of `checked_solve`, ending either finished,
    /// evicted, or ready to iterate.
    fn plan(&mut self) {
        let options = &self.options;
        if self.t >= options.t_stop - options.dt_min * 0.5 {
            self.state = LaneState::Done;
            return;
        }
        while self.bp_idx < self.breakpoints.len()
            && self.breakpoints[self.bp_idx] <= self.t + options.dt_min * 0.5
        {
            self.bp_idx += 1;
        }
        let next_bp = self
            .breakpoints
            .get(self.bp_idx)
            .copied()
            .unwrap_or(options.t_stop);
        let h_eff = self
            .h
            .min(options.dt_max)
            .min(next_bp - self.t)
            .max(options.dt_min);
        let t_new = (self.t + h_eff).min(options.t_stop);
        self.h_eff = t_new - self.t;
        self.t_new = t_new;
        let (geq_per_farad, trap_coeff) = match options.integrator {
            crate::tran::Integrator::Trapezoidal => (2.0 / self.h_eff, -1.0),
            crate::tran::Integrator::BackwardEuler => (1.0 / self.h_eff, 0.0),
        };
        self.geq_per_farad = geq_per_farad;
        self.trap_coeff = trap_coeff;

        // checked_solve preamble: budget watchdog and fault veto, in the
        // scalar order. Either trip leaves the happy path → evict.
        self.solves += 1;
        let policy = &self.options.recovery;
        if policy.step_budget > 0 && self.solves > policy.step_budget {
            self.state = LaneState::Evicted;
            return;
        }
        if self.faults.newton_fault() {
            self.state = LaneState::Evicted;
            return;
        }
        self.ws.prepare(&self.x);
        self.iter = 0;
        self.state = LaneState::Iterating;
    }

    /// Handles a converged solve: the scalar accept/reject/grow logic.
    fn finish_step(&mut self, iters: usize) {
        let options = self.options;
        self.newton_iterations += iters;
        self.pending_iters.push(iters as f64);
        let max_dv = self
            .x
            .iter()
            .zip(&self.ws.x)
            .take(self.sys.nv)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        if max_dv > options.dv_max && self.h_eff > options.dt_min * 1.01 {
            // Too coarse: retry with a smaller step sized to hit the
            // voltage-change target.
            self.h = (self.h_eff * (0.8 * options.dv_max / max_dv).max(0.1)).max(options.dt_min);
            self.state = LaneState::Planning;
            return;
        }
        if self.faults.accept_fault() && self.h_eff > options.dt_min * 1.01 {
            // The scalar kernel records a step cut and re-walks; that is
            // recovery-ladder territory, so the lane leaves the batch.
            self.state = LaneState::Evicted;
            return;
        }
        // Accept. Update capacitor history with companion currents.
        for (ei, e) in self.ckt.elements.iter().enumerate() {
            if let Element::Capacitor { a, b, farads } = e {
                let dv = self.sys.v(&self.ws.x, *a) - self.sys.v(&self.ws.x, *b);
                let (v_prev, i_prev) = self.hist[ei];
                let i_new = self.geq_per_farad * farads * (dv - v_prev) + self.trap_coeff * i_prev;
                self.hist[ei] = (dv, i_new);
            }
        }
        std::mem::swap(&mut self.x, &mut self.ws.x);
        self.t = self.t_new;
        self.accepted_steps += 1;
        let t = self.t;
        self.record(t);
        self.h = if max_dv < 0.5 * options.dv_max {
            self.h_eff * 1.6
        } else {
            self.h_eff
        };
        self.state = LaneState::Planning;
    }
}

/// Runs `runs.len()` independent transient analyses, advancing compatible
/// lanes in lockstep through the shared-structure SoA kernel. Results are
/// returned in input order and are bit-identical to running
/// [`Circuit::tran_cancellable`] on each input separately.
///
/// Lanes whose circuit does not share the first lane's topology, and lanes
/// that leave the solver happy path mid-batch, are transparently run (or
/// rerun) through the scalar kernel — callers never observe a difference
/// beyond wall time.
pub fn tran_batch(
    runs: &[BatchRun<'_>],
    cancel: &CancelToken,
) -> Vec<Result<TranResult, AnalysisError>> {
    let metrics = BatchMetrics::new();
    if let Some(m) = &metrics {
        m.groups.incr();
        m.lanes.observe(runs.len() as f64);
    }
    let mut span = obs::span("spice.tran.batch").arg("lanes", runs.len());

    // Lanes that can't join the batch run scalar, in place.
    let batchable: Vec<bool> = runs
        .iter()
        .map(|r| !runs.is_empty() && same_topology(runs[0].ckt, r.ckt))
        .collect();

    let mut results: Vec<Option<Result<TranResult, AnalysisError>>> =
        (0..runs.len()).map(|_| None).collect();

    // ---- Setup: per-lane DC init and shared symbolic structure. ----
    let mut lanes: Vec<Lane<'_>> = Vec::new();
    let mut shared_symbolic = None;
    let mut lane_of_run: Vec<Option<usize>> = vec![None; runs.len()];
    for (ri, run) in runs.iter().enumerate() {
        if !batchable[ri] {
            continue;
        }
        let sys = System::new(run.ckt);
        if shared_symbolic.is_none() {
            // Pure function of topology: one analysis serves every lane.
            shared_symbolic = Some(sys.symbolic_lu());
        }
        let mut ws = NewtonWorkspace::new();
        ws.symbolic = shared_symbolic.clone().flatten();
        ws.time_lu = obs::level() == obs::Level::Trace;
        let faults = FaultStream::for_run(run_entropy(
            run.options.t_stop,
            run.options.dv_max,
            sys.n,
            run.ckt.elements.len(),
        ));
        let mut lane = Lane {
            ckt: run.ckt,
            options: run.options,
            sys,
            faults,
            ws,
            x: Vec::new(),
            hist: Vec::new(),
            breakpoints: Vec::new(),
            bp_idx: 0,
            times: Vec::new(),
            samples: Vec::new(),
            branch_samples: Vec::new(),
            t: 0.0,
            h: run.options.dt_init.min(run.options.dt_max),
            solves: 0,
            newton_iterations: 0,
            accepted_steps: 0,
            pending_iters: Vec::new(),
            h_eff: 0.0,
            t_new: 0.0,
            geq_per_farad: 0.0,
            trap_coeff: 0.0,
            iter: 0,
            state: LaneState::Planning,
        };
        // DC operating point through the same routine as the scalar path.
        match dc_solve_with(run.ckt, &lane.sys, 0.0, None, cancel, &mut lane.ws) {
            Ok(op) => lane.x = op.x,
            Err(e) if e.is_cancellation() => {
                results[ri] = Some(Err(e));
                continue;
            }
            // A DC failure is recovery-ladder territory (the scalar kernel
            // restarts the run): evict before the lane ever iterates.
            Err(_) => {
                lane.state = LaneState::Evicted;
            }
        }
        if lane.state != LaneState::Evicted {
            lane.hist.extend(lane.ckt.elements.iter().map(|e| match e {
                Element::Capacitor { a, b, .. } => {
                    (lane.sys.v(&lane.x, *a) - lane.sys.v(&lane.x, *b), 0.0)
                }
                _ => (0.0, 0.0),
            }));
            lane.breakpoints.extend(
                lane.ckt
                    .source_breakpoints()
                    .into_iter()
                    .filter(|&t| t > 0.0 && t < lane.options.t_stop),
            );
            lane.breakpoints.push(lane.options.t_stop);
            lane.record(0.0);
        }
        lane_of_run[ri] = Some(lanes.len());
        lanes.push(lane);
    }

    // ---- Lockstep rounds. ----
    let opts = NewtonOptions::default();
    let n_elements = runs.first().map_or(0, |r| r.ckt.elements.len());
    loop {
        if let Err(e) = cancel.check("transient batch") {
            for lane in &mut lanes {
                if !matches!(lane.state, LaneState::Done | LaneState::Evicted) {
                    lane.state = LaneState::Cancelled;
                }
            }
            for (ri, slot) in lane_of_run.iter().enumerate() {
                if let Some(li) = slot {
                    if lanes[*li].state == LaneState::Cancelled {
                        results[ri] = Some(Err(e.clone()));
                    }
                }
            }
            break;
        }
        // Plan lanes that are between steps (including freshly accepted).
        for lane in &mut lanes {
            if lane.state == LaneState::Planning {
                lane.plan();
            }
        }
        let active = lanes
            .iter()
            .filter(|l| l.state == LaneState::Iterating)
            .count();
        if active == 0 {
            break;
        }
        if let Some(m) = &metrics {
            m.active_lanes.observe(active as f64);
        }

        // One Newton iteration per active lane. Residual/Jacobian prelude
        // is per-lane; the element loop is element-outer/lane-inner so one
        // element's evaluation path stays hot across the whole batch.
        for lane in &mut lanes {
            if lane.state == LaneState::Iterating {
                lane.sys
                    .assemble_prelude(&lane.ws.x, GMIN, &mut lane.ws.f, &mut lane.ws.jac);
            }
        }
        for ei in 0..n_elements {
            for lane in &mut lanes {
                if lane.state != LaneState::Iterating {
                    continue;
                }
                let caps = CapMode::Tran {
                    geq_per_farad: lane.geq_per_farad,
                    trap_coeff: lane.trap_coeff,
                    hist: &lane.hist,
                };
                let ws = &mut lane.ws;
                lane.sys.stamp_element(
                    ei,
                    &lane.ckt.elements[ei],
                    &ws.x,
                    lane.t_new,
                    1.0,
                    caps,
                    &mut ws.f,
                    &mut ws.jac,
                );
            }
        }
        for lane in &mut lanes {
            if lane.state != LaneState::Iterating {
                continue;
            }
            if !lane.ws.factor_and_solve() {
                // Singular under both factorizations: the scalar kernel
                // reports Failed and climbs the ladder — evict.
                lane.state = LaneState::Evicted;
                continue;
            }
            let (max_dv, max_res) = lane.ws.apply_update(&lane.sys, &opts);
            if max_dv < opts.vtol && max_res < opts.itol {
                let iters = lane.iter + 1;
                lane.finish_step(iters);
                continue;
            }
            lane.iter += 1;
            if lane.iter >= opts.max_iter {
                // Newton exhausted its budget: recovery-ladder territory.
                lane.state = LaneState::Evicted;
            }
        }
    }

    // ---- Harvest. ----
    let mut evictions = 0u64;
    for (ri, slot) in lane_of_run.iter().enumerate() {
        let Some(li) = *slot else { continue };
        let lane = &mut lanes[li];
        match lane.state {
            LaneState::Done => {
                if let Some(m) = TranMetrics::new() {
                    // Book exactly what the scalar kernel books for a
                    // healthy run, from the buffered observations.
                    for &it in &lane.pending_iters {
                        m.newton_iters.observe(it);
                    }
                    m.runs.incr();
                    m.recoveries.add(0);
                    m.recovery_seconds.add(0.0);
                    m.lu_seconds.add(lane.ws.lu_seconds);
                    m.recovery_depth.observe(0.0);
                    m.record_lu_dispatch(&lane.ws);
                }
                if let Some(m) = &metrics {
                    m.completed.incr();
                }
                let node_count = lane.ckt.node_count();
                let branch_count = lane.sys.n - lane.sys.nv;
                results[ri] = Some(Ok(TranResult::from_parts(
                    std::mem::take(&mut lane.times),
                    node_count,
                    branch_count,
                    std::mem::take(&mut lane.samples),
                    std::mem::take(&mut lane.branch_samples),
                    lane.newton_iterations,
                    lane.accepted_steps,
                    lane.ws.lu_seconds,
                    RecoveryTrace::default(),
                )));
            }
            LaneState::Evicted => {
                evictions += 1;
                // Scalar rerun from scratch; run-parameter entropy replays
                // the same fault decisions, so the result is exactly what a
                // scalar-only configuration produces.
                results[ri] = Some(crate::tran::tran(lane.ckt, &lane.options, cancel));
            }
            LaneState::Cancelled => {} // already filled with the error
            LaneState::Planning | LaneState::Iterating => {
                // Unreachable: the round loop only exits with every lane
                // Done/Evicted/Cancelled. Keep a typed error rather than a
                // panic if that invariant ever breaks.
                results[ri] = Some(Err(AnalysisError::Aborted {
                    analysis: "transient batch".into(),
                    detail: "lane left unfinished by the lockstep loop".into(),
                }));
            }
        }
    }
    if let Some(m) = &metrics {
        m.evictions.add(evictions);
    }
    if span.is_active() {
        span.add_arg("evictions", evictions);
    }

    // Non-batchable lanes run scalar, in input order.
    results
        .into_iter()
        .enumerate()
        .map(|(ri, slot)| {
            slot.unwrap_or_else(|| crate::tran::tran(runs[ri].ckt, &runs[ri].options, cancel))
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::circuit::Waveform;
    use crate::device::{MosParams, MosType};

    fn inverter(ramp_start: f64, c_load: f64, rise: bool) -> (Circuit, crate::circuit::NodeId) {
        let p = MosParams {
            vt0: 0.85,
            kp: 17e-6,
            gamma: 0.5,
            phi: 0.6,
            lambda: 0.04,
        };
        let n = MosParams {
            vt0: 0.75,
            kp: 50e-6,
            gamma: 0.4,
            phi: 0.6,
            lambda: 0.03,
        };
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::Dc(5.0));
        let (v0, v1) = if rise { (0.0, 5.0) } else { (5.0, 0.0) };
        ckt.vsource(
            "VIN",
            inp,
            Circuit::GND,
            Waveform::ramp(ramp_start, 0.5e-9, v0, v1),
        );
        ckt.mosfet("MP", MosType::Pmos, out, inp, vdd, vdd, p, 8e-6, 0.8e-6);
        ckt.mosfet(
            "MN",
            MosType::Nmos,
            out,
            inp,
            Circuit::GND,
            Circuit::GND,
            n,
            4e-6,
            0.8e-6,
        );
        ckt.capacitor("CL", out, Circuit::GND, c_load);
        (ckt, out)
    }

    fn bits(r: &TranResult) -> Vec<u64> {
        r.times().iter().map(|t| t.to_bits()).collect()
    }

    #[test]
    fn batched_lanes_match_scalar_bitwise() {
        let variants = [
            (1.0e-9, 50e-15, true),
            (1.2e-9, 100e-15, false),
            (0.8e-9, 200e-15, true),
            (1.5e-9, 20e-15, false),
        ];
        let built: Vec<_> = variants
            .iter()
            .map(|&(t0, cl, rise)| inverter(t0, cl, rise))
            .collect();
        let opts = TranOptions::to(10e-9);
        let cancel = CancelToken::new();

        let runs: Vec<BatchRun<'_>> = built
            .iter()
            .map(|(ckt, _)| BatchRun { ckt, options: opts })
            .collect();
        let batched = tran_batch(&runs, &cancel);

        for ((ckt, out), b) in built.iter().zip(&batched) {
            let scalar = ckt.tran_cancellable(&opts, &cancel).unwrap();
            let b = b.as_ref().unwrap();
            assert_eq!(bits(&scalar), bits(b), "time grids diverged");
            assert_eq!(scalar.accepted_steps, b.accepted_steps);
            assert_eq!(scalar.newton_iterations, b.newton_iterations);
            let ws = scalar.waveform(*out);
            let wb = b.waveform(*out);
            let pb: Vec<u64> = wb
                .points()
                .iter()
                .map(|(t, v)| t.to_bits() ^ v.to_bits())
                .collect();
            let ps: Vec<u64> = ws
                .points()
                .iter()
                .map(|(t, v)| t.to_bits() ^ v.to_bits())
                .collect();
            assert_eq!(ps, pb, "waveform bits diverged");
        }
    }

    #[test]
    fn mixed_topologies_fall_back_to_scalar() {
        let (inv, out) = inverter(1.0e-9, 50e-15, true);
        // An RC circuit: different topology, must not join the batch.
        let mut rc = Circuit::new();
        let a = rc.node("a");
        let b = rc.node("b");
        rc.vsource("VIN", a, Circuit::GND, Waveform::step(0.0, 1e-12, 1.0));
        rc.resistor("R1", a, b, 1e3);
        rc.capacitor("C1", b, Circuit::GND, 1e-12);

        assert!(!same_topology(&inv, &rc));
        let opts = TranOptions::to(5e-9);
        let cancel = CancelToken::new();
        let runs = [
            BatchRun {
                ckt: &inv,
                options: TranOptions::to(10e-9),
            },
            BatchRun {
                ckt: &rc,
                options: opts,
            },
        ];
        let results = tran_batch(&runs, &cancel);
        let inv_scalar = inv
            .tran_cancellable(&TranOptions::to(10e-9), &cancel)
            .unwrap();
        let rc_scalar = rc.tran_cancellable(&opts, &cancel).unwrap();
        assert_eq!(bits(results[0].as_ref().unwrap()), bits(&inv_scalar));
        assert_eq!(bits(results[1].as_ref().unwrap()), bits(&rc_scalar));
        let _ = out;
    }

    #[test]
    fn same_topology_accepts_value_changes_only() {
        let (a, _) = inverter(1.0e-9, 50e-15, true);
        let (b, _) = inverter(2.0e-9, 200e-15, false);
        assert!(same_topology(&a, &b));
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(tran_batch(&[], &CancelToken::new()).is_empty());
    }

    #[test]
    fn cancelled_batch_reports_cancellation() {
        let (ckt, _) = inverter(1.0e-9, 50e-15, true);
        let cancel = CancelToken::new();
        cancel.cancel();
        let runs = [BatchRun {
            ckt: &ckt,
            options: TranOptions::to(10e-9),
        }];
        let results = tran_batch(&runs, &cancel);
        assert!(matches!(results[0], Err(AnalysisError::Cancelled { .. })));
    }
}
