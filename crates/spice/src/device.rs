//! Level-1 (Shichman–Hodges) MOSFET model.
//!
//! The model includes the body effect (`gamma`, `phi`) and channel-length
//! modulation (`lambda`). Channel-length modulation is applied in both the
//! triode and saturation regions so the drain current is continuous at the
//! region boundary. Drain/source are treated symmetrically: for `vds < 0`
//! the terminals are swapped internally, as in SPICE.

use serde::{Deserialize, Serialize};

/// MOSFET polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosType {
    /// n-channel device (conducts for gate high).
    Nmos,
    /// p-channel device (conducts for gate low).
    Pmos,
}

/// Level-1 model parameters for one device polarity.
///
/// Conventions follow SPICE: `vt0` is the zero-bias threshold (positive for
/// NMOS; stored positive for PMOS as well and applied in the normalized
/// frame), `kp` is the transconductance parameter `mu * Cox` in A/V².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosParams {
    /// Zero-bias threshold voltage magnitude, in volts.
    pub vt0: f64,
    /// Process transconductance `mu * Cox`, in A/V².
    pub kp: f64,
    /// Body-effect coefficient, in V^0.5.
    pub gamma: f64,
    /// Surface potential `2*phi_F`, in volts.
    pub phi: f64,
    /// Channel-length modulation, in 1/V.
    pub lambda: f64,
}

impl MosParams {
    /// Validates the parameter set.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-finite, `kp <= 0`, or `phi <= 0`.
    pub fn validate(&self) {
        assert!(
            [self.vt0, self.kp, self.gamma, self.phi, self.lambda]
                .iter()
                .all(|v| v.is_finite()),
            "MOS parameters must be finite"
        );
        assert!(self.kp > 0.0, "kp must be positive");
        assert!(self.phi > 0.0, "phi must be positive");
        assert!(self.gamma >= 0.0, "gamma must be non-negative");
        assert!(self.lambda >= 0.0, "lambda must be non-negative");
    }
}

/// The drain current and its partial derivatives in the normalized
/// (NMOS-like, `vds >= 0`) frame.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosEval {
    /// Drain current, flowing into the drain and out of the source, in A.
    pub id: f64,
    /// `d id / d vgs`.
    pub gm: f64,
    /// `d id / d vds`.
    pub gds: f64,
    /// `d id / d vbs`.
    pub gmbs: f64,
}

/// Evaluates the Level-1 equations for a normalized device with `vds >= 0`.
///
/// `beta = kp * w / l` must be precomputed by the caller.
fn level1_normalized(p: &MosParams, beta: f64, vgs: f64, vds: f64, vbs: f64) -> MosEval {
    debug_assert!(vds >= 0.0);
    // Body effect: vt = vt0 + gamma (sqrt(phi - vbs) - sqrt(phi)).
    // Clamp the argument for strong forward body bias.
    let arg = (p.phi - vbs).max(1e-9);
    let sqrt_arg = arg.sqrt();
    let vt = p.vt0 + p.gamma * (sqrt_arg - p.phi.sqrt());
    let dvt_dvbs = -p.gamma / (2.0 * sqrt_arg);

    let vgst = vgs - vt;
    if vgst <= 0.0 {
        // Cutoff: no channel current. gmin in the solver keeps the matrix
        // nonsingular.
        return MosEval::default();
    }

    let clm = 1.0 + p.lambda * vds;
    let (id, gm, gds) = if vds < vgst {
        // Triode. lambda is applied here too so the current and its vds
        // derivative are continuous at vds = vgst.
        let core = beta * (vgst - 0.5 * vds) * vds;
        let id = core * clm;
        let gm = beta * vds * clm;
        let gds = beta * (vgst - vds) * clm + core * p.lambda;
        (id, gm, gds)
    } else {
        // Saturation.
        let core = 0.5 * beta * vgst * vgst;
        let id = core * clm;
        let gm = beta * vgst * clm;
        let gds = core * p.lambda;
        (id, gm, gds)
    };
    // gmbs = d id / d vbs = (d id / d vt)(d vt / d vbs) = (-gm)(dvt_dvbs).
    let gmbs = -gm * dvt_dvbs;
    MosEval { id, gm, gds, gmbs }
}

/// The four-terminal linearization of a MOSFET instance at a bias point:
/// the current into the drain terminal and its derivatives with respect to
/// the (normalized-frame) node voltages of drain, gate, source and bulk.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosStamp {
    /// Current into the drain terminal in the normalized frame, in A.
    pub i_d: f64,
    /// `d i_d / d v_drain`.
    pub g_d: f64,
    /// `d i_d / d v_gate`.
    pub g_g: f64,
    /// `d i_d / d v_source`.
    pub g_s: f64,
    /// `d i_d / d v_bulk`.
    pub g_b: f64,
}

/// Evaluates a device instance at absolute terminal voltages.
///
/// Polarity is handled by evaluating PMOS in a sign-flipped frame; because
/// conductances are second-order in the sign they stamp identically, and the
/// current picks up the sign. Drain/source swap for `vds < 0` is handled
/// here as well.
///
/// Returns the current into the **actual drain terminal** (`stamp.i_d` is
/// already in the actual frame; the source receives `-i_d`; gate and bulk
/// carry no DC current) along with the conductance stamps.
pub fn eval_mosfet(
    mos_type: MosType,
    p: &MosParams,
    beta: f64,
    vd: f64,
    vg: f64,
    vs: f64,
    vb: f64,
) -> MosStamp {
    let sign = match mos_type {
        MosType::Nmos => 1.0,
        MosType::Pmos => -1.0,
    };
    // Normalized node voltages (NMOS-like frame).
    let (nvd, nvg, nvs, nvb) = (sign * vd, sign * vg, sign * vs, sign * vb);
    let vds = nvd - nvs;

    let (i_dn, g_d, g_g, g_s, g_b) = if vds >= 0.0 {
        let e = level1_normalized(p, beta, nvg - nvs, vds, nvb - nvs);
        (e.id, e.gds, e.gm, -(e.gm + e.gds + e.gmbs), e.gmbs)
    } else {
        // Swap drain and source: the device conducts with `s` acting as
        // drain. i' flows into s and out of d, so i_d = -i'.
        let e = level1_normalized(p, beta, nvg - nvd, nvs - nvd, nvb - nvd);
        (-e.id, e.gm + e.gds + e.gmbs, -e.gm, -e.gds, -e.gmbs)
    };
    MosStamp {
        // Current back in the actual frame; conductances are sign-invariant.
        i_d: sign * i_dn,
        g_d,
        g_g,
        g_s,
        g_b,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    const P: MosParams = MosParams {
        vt0: 0.75,
        kp: 50e-6,
        gamma: 0.4,
        phi: 0.6,
        lambda: 0.03,
    };
    const BETA: f64 = 50e-6 * 5.0; // w/l = 5

    #[test]
    fn cutoff_has_zero_current() {
        let e = level1_normalized(&P, BETA, 0.5, 2.0, 0.0);
        assert_eq!(e.id, 0.0);
        assert_eq!(e.gm, 0.0);
    }

    #[test]
    fn saturation_current_matches_formula() {
        let (vgs, vds) = (2.0, 4.0);
        let e = level1_normalized(&P, BETA, vgs, vds, 0.0);
        let vgst = vgs - P.vt0;
        let expect = 0.5 * BETA * vgst * vgst * (1.0 + P.lambda * vds);
        assert!((e.id - expect).abs() < 1e-15);
    }

    #[test]
    fn triode_current_matches_formula() {
        let (vgs, vds) = (3.0, 0.5);
        let e = level1_normalized(&P, BETA, vgs, vds, 0.0);
        let vgst = vgs - P.vt0;
        let expect = BETA * (vgst - 0.5 * vds) * vds * (1.0 + P.lambda * vds);
        assert!((e.id - expect).abs() < 1e-15);
    }

    #[test]
    fn current_and_gds_continuous_at_region_boundary() {
        let vgs = 2.0;
        let vgst = vgs - P.vt0;
        let lo = level1_normalized(&P, BETA, vgs, vgst - 1e-9, 0.0);
        let hi = level1_normalized(&P, BETA, vgs, vgst + 1e-9, 0.0);
        assert!((lo.id - hi.id).abs() < 1e-12);
        assert!((lo.gds - hi.gds).abs() < 1e-9);
    }

    #[test]
    fn body_effect_raises_threshold() {
        // Same vgs, source raised above bulk (vbs < 0) -> less current.
        let e0 = level1_normalized(&P, BETA, 1.5, 3.0, 0.0);
        let e1 = level1_normalized(&P, BETA, 1.5, 3.0, -2.0);
        assert!(e1.id < e0.id);
        assert!(e1.id > 0.0);
    }

    fn fd_check(vgs: f64, vds: f64, vbs: f64) {
        let h = 1e-7;
        let e = level1_normalized(&P, BETA, vgs, vds, vbs);
        let dgm = (level1_normalized(&P, BETA, vgs + h, vds, vbs).id
            - level1_normalized(&P, BETA, vgs - h, vds, vbs).id)
            / (2.0 * h);
        let dgds = (level1_normalized(&P, BETA, vgs, vds + h, vbs).id
            - level1_normalized(&P, BETA, vgs, vds - h, vbs).id)
            / (2.0 * h);
        let dgmbs = (level1_normalized(&P, BETA, vgs, vds, vbs + h).id
            - level1_normalized(&P, BETA, vgs, vds, vbs - h).id)
            / (2.0 * h);
        let tol = 1e-6 * BETA.max(1e-9);
        assert!((e.gm - dgm).abs() < tol, "gm {} vs fd {}", e.gm, dgm);
        assert!((e.gds - dgds).abs() < tol, "gds {} vs fd {}", e.gds, dgds);
        assert!(
            (e.gmbs - dgmbs).abs() < tol,
            "gmbs {} vs fd {}",
            e.gmbs,
            dgmbs
        );
    }

    #[test]
    fn derivatives_match_finite_differences_saturation() {
        fd_check(2.0, 4.0, -1.0);
    }

    #[test]
    fn derivatives_match_finite_differences_triode() {
        fd_check(3.5, 0.8, -0.5);
    }

    #[test]
    fn nmos_stamp_matches_normalized_eval() {
        let s = eval_mosfet(MosType::Nmos, &P, BETA, 4.0, 2.0, 0.0, 0.0);
        let e = level1_normalized(&P, BETA, 2.0, 4.0, 0.0);
        assert_eq!(s.i_d, e.id);
        assert_eq!(s.g_g, e.gm);
        assert_eq!(s.g_d, e.gds);
    }

    #[test]
    fn stamp_jacobian_matches_finite_difference_all_terminals() {
        let h = 1e-7;
        for &(ty, vd, vg, vs, vb) in &[
            (MosType::Nmos, 3.0, 2.5, 0.5, 0.0),
            (MosType::Nmos, 0.5, 2.5, 3.0, 0.0), // swapped (vds < 0)
            (MosType::Pmos, 1.0, 2.0, 5.0, 5.0),
            (MosType::Pmos, 5.0, 2.0, 1.0, 5.0), // swapped PMOS
        ] {
            let f =
                |vd: f64, vg: f64, vs: f64, vb: f64| eval_mosfet(ty, &P, BETA, vd, vg, vs, vb).i_d;
            let s = eval_mosfet(ty, &P, BETA, vd, vg, vs, vb);
            let gd = (f(vd + h, vg, vs, vb) - f(vd - h, vg, vs, vb)) / (2.0 * h);
            let gg = (f(vd, vg + h, vs, vb) - f(vd, vg - h, vs, vb)) / (2.0 * h);
            let gs = (f(vd, vg, vs + h, vb) - f(vd, vg, vs - h, vb)) / (2.0 * h);
            let gb = (f(vd, vg, vs, vb + h) - f(vd, vg, vs, vb - h)) / (2.0 * h);
            let tol = 1e-5 * BETA;
            assert!((s.g_d - gd).abs() < tol, "{ty:?} g_d {} vs {}", s.g_d, gd);
            assert!((s.g_g - gg).abs() < tol, "{ty:?} g_g {} vs {}", s.g_g, gg);
            assert!((s.g_s - gs).abs() < tol, "{ty:?} g_s {} vs {}", s.g_s, gs);
            assert!((s.g_b - gb).abs() < tol, "{ty:?} g_b {} vs {}", s.g_b, gb);
        }
    }

    #[test]
    fn drain_source_symmetry() {
        // Swapping drain and source negates the drain current.
        let a = eval_mosfet(MosType::Nmos, &P, BETA, 1.0, 3.0, 0.2, 0.0);
        let b = eval_mosfet(MosType::Nmos, &P, BETA, 0.2, 3.0, 1.0, 0.0);
        assert!((a.i_d + b.i_d).abs() < 1e-15);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        // A PMOS with source at 5 V, gate at 2 V, drain at 1 V conducts with
        // the same magnitude as the mirrored NMOS.
        let p = eval_mosfet(MosType::Pmos, &P, BETA, 1.0, 2.0, 5.0, 5.0);
        let n = eval_mosfet(MosType::Nmos, &P, BETA, 4.0, 3.0, 0.0, 0.0);
        assert!((p.i_d + n.i_d).abs() < 1e-15, "p {} n {}", p.i_d, n.i_d);
        // Current flows out of the PMOS drain terminal (charging the load).
        assert!(p.i_d < 0.0);
    }

    #[test]
    fn params_validate_rejects_bad_values() {
        let mut p = P;
        p.kp = 0.0;
        let r = std::panic::catch_unwind(|| p.validate());
        assert!(r.is_err());
        P.validate(); // the reference set is fine
    }
}
