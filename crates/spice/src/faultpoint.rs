//! Deterministic fault injection for the transient engine.
//!
//! Behind the `fault-injection` feature, this module lets tests fail a
//! configurable fraction of Newton solves and timestep acceptances so the
//! recovery ladder ([`crate::recover`]), per-job supervision, and model
//! degradation paths are exercised end to end. With the feature disabled
//! (the default) every hook compiles to a constant `false` and the engine is
//! untouched.
//!
//! Determinism is the whole point: draws come from a splitmix64 stream
//! seeded by the configured seed plus per-run *entropy* derived from the
//! run's own parameters (`t_stop`, `dv_max`, system size, element count) —
//! never from wall clock or thread identity — so a faulted characterization
//! produces the same degraded slices no matter the worker count, and a
//! zero-rate configuration is byte-identical to not injecting at all.
//!
//! Three independent knobs:
//!
//! - `newton_rate` — probability that any given Newton solve is failed
//!   before it runs. These faults are transient: the recovery ladder is
//!   expected to absorb them.
//! - `accept_rate` — probability that a converged, accuracy-passing step is
//!   rejected anyway (forcing a step cut). Exercises the adaptive-step path.
//! - `kill_rate` — probability that an entire run is doomed: after a
//!   per-run pseudorandom solve index, *every* subsequent solve faults, so
//!   no rung of the ladder (nor a restart) can save it. This is what drives
//!   `JobOutcome::Failed` and degraded model slices.

#![deny(clippy::unwrap_used, clippy::expect_used)]

#[cfg(feature = "fault-injection")]
use std::sync::{Mutex, PoisonError};

/// Fault-injection configuration. All rates are probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-solve probability of a transient Newton fault.
    pub newton_rate: f64,
    /// Per-accepted-step probability of a forced rejection.
    pub accept_rate: f64,
    /// Per-run probability of a terminal (unrecoverable) fault.
    pub kill_rate: f64,
    /// Seed mixed into every per-run stream.
    pub seed: u64,
}

impl FaultConfig {
    /// The inert configuration: every rate zero.
    pub const DISARMED: Self = Self {
        newton_rate: 0.0,
        accept_rate: 0.0,
        kill_rate: 0.0,
        seed: 0,
    };

    /// Whether any fault can ever fire under this configuration.
    pub fn is_armed(&self) -> bool {
        self.newton_rate > 0.0 || self.accept_rate > 0.0 || self.kill_rate > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::DISARMED
    }
}

#[cfg(feature = "fault-injection")]
static CONFIG: Mutex<FaultConfig> = Mutex::new(FaultConfig::DISARMED);

/// Installs a process-global fault configuration.
///
/// Tests that configure faults should serialize on their own lock and call
/// [`disarm`] when done — the configuration is global state.
#[cfg(feature = "fault-injection")]
pub fn configure(cfg: FaultConfig) {
    *CONFIG.lock().unwrap_or_else(PoisonError::into_inner) = cfg;
}

/// No-op stub: without the `fault-injection` feature nothing is installed.
#[cfg(not(feature = "fault-injection"))]
pub fn configure(_cfg: FaultConfig) {}

/// Resets the process-global configuration to [`FaultConfig::DISARMED`].
pub fn disarm() {
    configure(FaultConfig::DISARMED);
}

/// The currently installed configuration.
#[cfg(feature = "fault-injection")]
pub fn current() -> FaultConfig {
    *CONFIG.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Always [`FaultConfig::DISARMED`] without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
pub fn current() -> FaultConfig {
    FaultConfig::DISARMED
}

/// splitmix64: tiny, high-quality, and stable across platforms.
///
/// Public (and compiled unconditionally) so the other deterministic fault
/// harnesses in the workspace — the `proxim-serve` wire-layer injector in
/// particular — draw from the exact same stream family instead of growing
/// their own subtly different generators.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the top 53 bits of [`splitmix64`].
pub fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Mixes a transient run's own parameters into per-run entropy. Using only
/// run-intrinsic values (never thread identity or wall clock) keeps faulted
/// characterizations deterministic across worker counts.
pub fn run_entropy(t_stop: f64, dv_max: f64, unknowns: usize, elements: usize) -> u64 {
    let mut state = t_stop.to_bits() ^ dv_max.to_bits().rotate_left(17);
    state ^= (unknowns as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    state ^= (elements as u64).rotate_left(32);
    // One scrambling round so nearby parameter sets decorrelate.
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(feature = "fault-injection")]
struct Armed {
    cfg: FaultConfig,
    state: u64,
    solves: u64,
    /// Terminal fault: every solve after this index fails.
    killed_after: Option<u64>,
}

/// A per-run stream of fault decisions. Cheap to construct; disarmed (or
/// feature-off) streams compile to constant-false queries.
pub(crate) struct FaultStream {
    #[cfg(feature = "fault-injection")]
    armed: Option<Armed>,
}

#[cfg(feature = "fault-injection")]
impl FaultStream {
    /// Opens the stream for one transient run.
    pub fn for_run(entropy: u64) -> Self {
        let cfg = current();
        if !cfg.is_armed() {
            return Self { armed: None };
        }
        let mut state = cfg.seed ^ entropy.rotate_left(1);
        // Per-run kill fate, drawn once so restarts cannot escape it.
        let killed_after = if unit(&mut state) < cfg.kill_rate {
            Some((splitmix64(&mut state) % 200) + 1)
        } else {
            None
        };
        Self {
            armed: Some(Armed {
                cfg,
                state,
                solves: 0,
                killed_after,
            }),
        }
    }

    /// Whether the next Newton solve should be failed outright.
    pub fn newton_fault(&mut self) -> bool {
        let Some(a) = self.armed.as_mut() else {
            return false;
        };
        a.solves += 1;
        if let Some(after) = a.killed_after {
            if a.solves > after {
                return true;
            }
        }
        a.cfg.newton_rate > 0.0 && unit(&mut a.state) < a.cfg.newton_rate
    }

    /// Whether a converged, accuracy-passing step should be rejected anyway.
    pub fn accept_fault(&mut self) -> bool {
        let Some(a) = self.armed.as_mut() else {
            return false;
        };
        a.cfg.accept_rate > 0.0 && unit(&mut a.state) < a.cfg.accept_rate
    }
}

#[cfg(not(feature = "fault-injection"))]
impl FaultStream {
    #[inline]
    pub fn for_run(_entropy: u64) -> Self {
        Self {}
    }

    #[inline]
    pub fn newton_fault(&mut self) -> bool {
        false
    }

    #[inline]
    pub fn accept_fault(&mut self) -> bool {
        false
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_config_is_inert() {
        assert!(!FaultConfig::DISARMED.is_armed());
        let mut s = FaultStream::for_run(run_entropy(1e-9, 0.05, 7, 9));
        for _ in 0..100 {
            assert!(!s.newton_fault());
            assert!(!s.accept_fault());
        }
    }

    #[test]
    fn run_entropy_is_parameter_sensitive_and_stable() {
        let a = run_entropy(1e-9, 0.05, 7, 9);
        let b = run_entropy(1e-9, 0.05, 7, 9);
        assert_eq!(a, b, "same parameters, same entropy");
        assert_ne!(a, run_entropy(2e-9, 0.05, 7, 9));
        assert_ne!(a, run_entropy(1e-9, 0.025, 7, 9));
        assert_ne!(a, run_entropy(1e-9, 0.05, 8, 9));
        assert_ne!(a, run_entropy(1e-9, 0.05, 7, 10));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn armed_stream_is_deterministic_and_rate_accurate() {
        configure(FaultConfig {
            newton_rate: 0.2,
            accept_rate: 0.0,
            kill_rate: 0.0,
            seed: 42,
        });
        let draw = |entropy: u64| -> Vec<bool> {
            let mut s = FaultStream::for_run(entropy);
            (0..2000).map(|_| s.newton_fault()).collect()
        };
        let a = draw(0xDEAD_BEEF);
        let b = draw(0xDEAD_BEEF);
        assert_eq!(a, b, "same entropy must replay the same faults");
        let hits = a.iter().filter(|&&f| f).count();
        assert!(
            (300..500).contains(&hits),
            "20% of 2000 solves should fault, got {hits}"
        );
        disarm();
        assert!(!current().is_armed());
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn killed_run_faults_forever_past_the_kill_index() {
        configure(FaultConfig {
            newton_rate: 0.0,
            accept_rate: 0.0,
            kill_rate: 1.0,
            seed: 7,
        });
        let mut s = FaultStream::for_run(123);
        let faults: Vec<bool> = (0..500).map(|_| s.newton_fault()).collect();
        let first = faults.iter().position(|&f| f).expect("kill must fire");
        assert!(first <= 200, "kill index bounded, got {first}");
        assert!(
            faults[first..].iter().all(|&f| f),
            "terminal fault must persist"
        );
        disarm();
    }
}
