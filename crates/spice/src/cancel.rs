//! Cooperative cancellation and wall-clock deadlines for analyses.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the code
//! that requests a stop (a signal handler, a timeout supervisor, a user
//! interface) and the solver loops that honor it. Cancellation is
//! *cooperative*: the solver polls the token at transient-step and
//! Newton-iteration boundaries and unwinds with a typed
//! [`AnalysisError::Cancelled`] or [`AnalysisError::DeadlineExceeded`] —
//! never a panic, and never from the middle of a state update, so a
//! cancelled run leaves no half-written artifact behind.
//!
//! [`CancelToken::cancel`] is a single atomic store, which makes it safe to
//! call from an async-signal context (e.g. a `SIGTERM` handler that wants
//! the run to flush a final checkpoint and exit cleanly).

use crate::solver::AnalysisError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle with an optional wall-clock deadline.
///
/// All clones share one flag: cancelling any clone cancels them all. A token
/// without a deadline never trips on its own — it only reports cancellation
/// after [`CancelToken::cancel`] has been called.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

impl CancelToken {
    /// A token that never cancels unless [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token whose deadline expires `budget` from now.
    pub fn with_deadline_in(budget: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + budget)
    }

    /// A token whose deadline expires at `deadline`.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation. Idempotent; a single atomic store, safe to
    /// call from a signal handler.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone. Does
    /// *not* consult the deadline — use [`CancelToken::check`] in solver
    /// loops.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Polls the token: `Ok(())` to keep running, or the typed error that
    /// the enclosing analysis should return. `analysis` names the caller
    /// in the error ("transient", "dc operating point", ...).
    ///
    /// The fast path (not cancelled, no deadline) is one relaxed atomic
    /// load; the clock is only read when a deadline is configured.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Cancelled`] after [`CancelToken::cancel`];
    /// [`AnalysisError::DeadlineExceeded`] once the deadline has passed
    /// (with an empty recovery trace — the outermost analysis loop attaches
    /// the real one).
    pub fn check(&self, analysis: &str) -> Result<(), AnalysisError> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(AnalysisError::Cancelled {
                analysis: analysis.into(),
                detail: "cancellation requested".into(),
            });
        }
        if let Some(deadline) = self.inner.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(AnalysisError::DeadlineExceeded {
                    analysis: analysis.into(),
                    detail: format!(
                        "deadline exceeded by {:.3} s",
                        now.duration_since(deadline).as_secs_f64()
                    ),
                    recovery: Box::default(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check("test").is_ok());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        match t.check("transient") {
            Err(AnalysisError::Cancelled { analysis, .. }) => assert_eq!(analysis, "transient"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let t = CancelToken::with_deadline_at(Instant::now() - Duration::from_millis(1));
        match t.check("transient") {
            Err(AnalysisError::DeadlineExceeded { recovery, .. }) => {
                assert!(recovery.is_empty(), "deep layers attach an empty trace");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn future_deadline_passes_until_cancelled() {
        let t = CancelToken::with_deadline_in(Duration::from_secs(3600));
        assert!(t.check("test").is_ok());
        t.cancel();
        assert!(matches!(
            t.check("test"),
            Err(AnalysisError::Cancelled { .. })
        ));
    }
}
