//! Transient recovery: the bounded ladder of escalating remedies applied
//! when a Newton solve inside [`crate::tran`] refuses to converge.
//!
//! Real characterization flows survive bad operating points instead of
//! aborting the batch: a failed solve first retries with heavier damping,
//! then walks a gmin continuation back down to the nominal shunt, then cuts
//! the time step, and — when a whole run dies at the minimum step — restarts
//! the analysis with a halved `dt_init`/`dv_max`. Every rung is bounded, and
//! every attempt is recorded in a [`RecoveryTrace`] so callers can observe
//! (and aggregate) how hard the solver had to fight.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;

/// Policy knobs for the transient recovery ladder.
///
/// The ladder is consulted from cheapest to most expensive remedy:
///
/// 1. **Damped retry** — re-solve the same step with a tight voltage-step
///    clamp and a much larger iteration budget.
/// 2. **Gmin stepping** — solve a sequence of easier systems with an
///    inflated node-to-ground shunt, warm-starting each from the previous,
///    ending at the nominal gmin.
/// 3. **Step cut** — the classic remedy: quarter the time step (down to
///    `dt_min`) and try again.
/// 4. **Run restart** — when a run fails even at `dt_min`, restart the whole
///    analysis with `dt_init` and `dv_max` halved, up to `max_restarts`
///    times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Enable the damped re-solve rung.
    pub damped_retry: bool,
    /// Enable the gmin-stepping rung.
    pub gmin_stepping: bool,
    /// Full-run restarts with halved `dt_init`/`dv_max` (0 disables).
    pub max_restarts: u32,
    /// Watchdog budget on Newton solve *attempts* per transient run
    /// (restarts included); 0 means unlimited. A run that exceeds it is
    /// aborted with [`crate::AnalysisError::Aborted`] — this is what keeps
    /// one pathological job from wedging a whole characterization pool.
    pub step_budget: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            damped_retry: true,
            gmin_stepping: true,
            max_restarts: 2,
            // Well-behaved characterization transients take ~1e3–1e5 solves;
            // this bounds a wedged run without ever firing on a healthy one.
            step_budget: 2_000_000,
        }
    }
}

impl RecoveryPolicy {
    /// A policy with every rung disabled and no watchdog: the pre-recovery
    /// behavior (fail on the first `dt_min` exhaustion).
    pub fn disabled() -> Self {
        Self {
            damped_retry: false,
            gmin_stepping: false,
            max_restarts: 0,
            step_budget: 0,
        }
    }
}

/// Which rung of the ladder an attempt used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStage {
    /// Damped re-solve of the same step.
    DampedRetry,
    /// Gmin continuation at the same step.
    GminStepping,
    /// Time-step cut after both in-place rungs failed.
    StepCut,
    /// Whole-run restart with halved `dt_init`/`dv_max`.
    RunRestart,
}

impl RecoveryStage {
    /// All rungs, cheapest first (the order the ladder consults them).
    pub const ALL: [Self; 4] = [
        Self::DampedRetry,
        Self::GminStepping,
        Self::StepCut,
        Self::RunRestart,
    ];

    /// Dense index of the rung (position in [`Self::ALL`]).
    pub fn index(self) -> usize {
        match self {
            Self::DampedRetry => 0,
            Self::GminStepping => 1,
            Self::StepCut => 2,
            Self::RunRestart => 3,
        }
    }
}

impl fmt::Display for RecoveryStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DampedRetry => write!(f, "damped retry"),
            Self::GminStepping => write!(f, "gmin stepping"),
            Self::StepCut => write!(f, "step cut"),
            Self::RunRestart => write!(f, "run restart"),
        }
    }
}

/// One recorded rung attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryAttempt {
    /// The rung used.
    pub stage: RecoveryStage,
    /// Simulation time of the failing step, in seconds.
    pub t: f64,
    /// Step size in effect when the rung fired, in seconds.
    pub dt: f64,
    /// Wall-clock time the rung itself consumed, in seconds. For
    /// [`RecoveryStage::DampedRetry`] and [`RecoveryStage::GminStepping`]
    /// this is the rescue solve; for [`RecoveryStage::RunRestart`] it is the
    /// whole failed attempt being thrown away; [`RecoveryStage::StepCut`]
    /// records 0 — its cost is the re-walked steps, already inside the run.
    pub seconds: f64,
    /// Whether the rung rescued the solve (for [`RecoveryStage::StepCut`]
    /// and [`RecoveryStage::RunRestart`] this is recorded as `false`; their
    /// success shows up as the run completing).
    pub recovered: bool,
}

/// Detailed attempts are capped so a thrashing run cannot balloon the trace.
const MAX_RECORDED: usize = 64;

/// The record of every recovery action taken during one transient run.
///
/// Counters are exact; the per-attempt detail list keeps only the first
/// [`MAX_RECORDED`] entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryTrace {
    attempts: Vec<RecoveryAttempt>,
    /// Wall-clock seconds consumed per rung, indexed by
    /// [`RecoveryStage::index`]. Exact (not capped like `attempts`).
    stage_seconds: [f64; 4],
    /// Damped re-solves attempted.
    pub damped_retries: usize,
    /// Gmin continuations attempted.
    pub gmin_steps: usize,
    /// Time-step cuts taken after a failed solve.
    pub step_cuts: usize,
    /// Whole-run restarts taken.
    pub restarts: usize,
    /// Solves rescued in place (by damping or gmin stepping).
    pub recovered_solves: usize,
}

impl RecoveryTrace {
    /// Records one rung attempt taking `seconds` of wall time.
    pub(crate) fn record(
        &mut self,
        stage: RecoveryStage,
        t: f64,
        dt: f64,
        seconds: f64,
        recovered: bool,
    ) {
        match stage {
            RecoveryStage::DampedRetry => self.damped_retries += 1,
            RecoveryStage::GminStepping => self.gmin_steps += 1,
            RecoveryStage::StepCut => self.step_cuts += 1,
            RecoveryStage::RunRestart => self.restarts += 1,
        }
        self.stage_seconds[stage.index()] += seconds;
        if recovered {
            self.recovered_solves += 1;
        }
        if self.attempts.len() < MAX_RECORDED {
            self.attempts.push(RecoveryAttempt {
                stage,
                t,
                dt,
                seconds,
                recovered,
            });
        }
    }

    /// The recorded attempts (first [`MAX_RECORDED`] at most).
    pub fn attempts(&self) -> &[RecoveryAttempt] {
        &self.attempts
    }

    /// Merges another trace's counters, durations, and (up to the cap)
    /// attempts into this one — used to aggregate recovery across the many
    /// transient runs behind one characterization.
    pub fn merge(&mut self, other: &RecoveryTrace) {
        self.damped_retries += other.damped_retries;
        self.gmin_steps += other.gmin_steps;
        self.step_cuts += other.step_cuts;
        self.restarts += other.restarts;
        self.recovered_solves += other.recovered_solves;
        for (mine, theirs) in self.stage_seconds.iter_mut().zip(&other.stage_seconds) {
            *mine += theirs;
        }
        let room = MAX_RECORDED.saturating_sub(self.attempts.len());
        self.attempts
            .extend(other.attempts.iter().take(room).copied());
    }

    /// Total rung attempts across all stages.
    pub fn total(&self) -> usize {
        self.damped_retries + self.gmin_steps + self.step_cuts + self.restarts
    }

    /// Wall-clock seconds consumed by one rung across the run.
    pub fn seconds_in(&self, stage: RecoveryStage) -> f64 {
        self.stage_seconds[stage.index()]
    }

    /// Total wall-clock seconds lost to recovery across all rungs.
    pub fn total_seconds(&self) -> f64 {
        self.stage_seconds.iter().sum()
    }

    /// Whether the run needed no recovery at all.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_enables_every_rung() {
        let p = RecoveryPolicy::default();
        assert!(p.damped_retry);
        assert!(p.gmin_stepping);
        assert!(p.max_restarts > 0);
        assert!(p.step_budget > 0);
    }

    #[test]
    fn disabled_policy_is_inert() {
        let p = RecoveryPolicy::disabled();
        assert!(!p.damped_retry);
        assert!(!p.gmin_stepping);
        assert_eq!(p.max_restarts, 0);
        assert_eq!(p.step_budget, 0);
    }

    #[test]
    fn trace_counts_and_caps_detail() {
        let mut tr = RecoveryTrace::default();
        assert!(tr.is_empty());
        for k in 0..(MAX_RECORDED + 10) {
            tr.record(RecoveryStage::StepCut, k as f64, 1e-12, 0.0, false);
        }
        tr.record(RecoveryStage::DampedRetry, 0.0, 1e-12, 0.25, true);
        tr.record(RecoveryStage::GminStepping, 0.0, 1e-12, 0.5, true);
        tr.record(RecoveryStage::RunRestart, 0.0, 1e-12, 1.0, false);
        assert_eq!(tr.step_cuts, MAX_RECORDED + 10);
        assert_eq!(tr.damped_retries, 1);
        assert_eq!(tr.gmin_steps, 1);
        assert_eq!(tr.restarts, 1);
        assert_eq!(tr.recovered_solves, 2);
        assert_eq!(tr.total(), MAX_RECORDED + 13);
        assert_eq!(tr.attempts().len(), MAX_RECORDED);
        assert!(!tr.is_empty());
    }

    #[test]
    fn durations_accumulate_per_rung_beyond_the_detail_cap() {
        let mut tr = RecoveryTrace::default();
        // Twice the detail cap: counters and durations must stay exact even
        // after the per-attempt list stops growing.
        for _ in 0..(2 * MAX_RECORDED) {
            tr.record(RecoveryStage::DampedRetry, 1e-9, 1e-12, 0.01, true);
        }
        tr.record(RecoveryStage::RunRestart, 0.0, 1e-12, 2.0, false);
        assert!(
            (tr.seconds_in(RecoveryStage::DampedRetry) - 2.0 * MAX_RECORDED as f64 * 0.01).abs()
                < 1e-9
        );
        assert_eq!(tr.seconds_in(RecoveryStage::GminStepping), 0.0);
        assert!((tr.seconds_in(RecoveryStage::RunRestart) - 2.0).abs() < 1e-12);
        assert!((tr.total_seconds() - (2.0 * MAX_RECORDED as f64 * 0.01 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn merge_aggregates_counters_durations_and_caps_attempts() {
        let mut a = RecoveryTrace::default();
        a.record(RecoveryStage::DampedRetry, 1.0, 1e-12, 0.1, true);
        let mut b = RecoveryTrace::default();
        for k in 0..MAX_RECORDED {
            b.record(RecoveryStage::StepCut, k as f64, 1e-12, 0.0, false);
        }
        b.record(RecoveryStage::GminStepping, 0.0, 1e-12, 0.4, true);
        a.merge(&b);
        assert_eq!(a.damped_retries, 1);
        assert_eq!(a.step_cuts, MAX_RECORDED);
        assert_eq!(a.gmin_steps, 1);
        assert_eq!(a.recovered_solves, 2);
        assert!((a.total_seconds() - 0.5).abs() < 1e-12);
        assert_eq!(a.attempts().len(), MAX_RECORDED, "detail stays capped");
    }

    #[test]
    fn stage_indices_are_dense_and_ordered() {
        for (i, s) in RecoveryStage::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn stage_display_names() {
        assert_eq!(RecoveryStage::DampedRetry.to_string(), "damped retry");
        assert_eq!(RecoveryStage::GminStepping.to_string(), "gmin stepping");
        assert_eq!(RecoveryStage::StepCut.to_string(), "step cut");
        assert_eq!(RecoveryStage::RunRestart.to_string(), "run restart");
    }
}
