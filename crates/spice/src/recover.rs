//! Transient recovery: the bounded ladder of escalating remedies applied
//! when a Newton solve inside [`crate::tran`] refuses to converge.
//!
//! Real characterization flows survive bad operating points instead of
//! aborting the batch: a failed solve first retries with heavier damping,
//! then walks a gmin continuation back down to the nominal shunt, then cuts
//! the time step, and — when a whole run dies at the minimum step — restarts
//! the analysis with a halved `dt_init`/`dv_max`. Every rung is bounded, and
//! every attempt is recorded in a [`RecoveryTrace`] so callers can observe
//! (and aggregate) how hard the solver had to fight.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;

/// Policy knobs for the transient recovery ladder.
///
/// The ladder is consulted from cheapest to most expensive remedy:
///
/// 1. **Damped retry** — re-solve the same step with a tight voltage-step
///    clamp and a much larger iteration budget.
/// 2. **Gmin stepping** — solve a sequence of easier systems with an
///    inflated node-to-ground shunt, warm-starting each from the previous,
///    ending at the nominal gmin.
/// 3. **Step cut** — the classic remedy: quarter the time step (down to
///    `dt_min`) and try again.
/// 4. **Run restart** — when a run fails even at `dt_min`, restart the whole
///    analysis with `dt_init` and `dv_max` halved, up to `max_restarts`
///    times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Enable the damped re-solve rung.
    pub damped_retry: bool,
    /// Enable the gmin-stepping rung.
    pub gmin_stepping: bool,
    /// Full-run restarts with halved `dt_init`/`dv_max` (0 disables).
    pub max_restarts: u32,
    /// Watchdog budget on Newton solve *attempts* per transient run
    /// (restarts included); 0 means unlimited. A run that exceeds it is
    /// aborted with [`crate::AnalysisError::Aborted`] — this is what keeps
    /// one pathological job from wedging a whole characterization pool.
    pub step_budget: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            damped_retry: true,
            gmin_stepping: true,
            max_restarts: 2,
            // Well-behaved characterization transients take ~1e3–1e5 solves;
            // this bounds a wedged run without ever firing on a healthy one.
            step_budget: 2_000_000,
        }
    }
}

impl RecoveryPolicy {
    /// A policy with every rung disabled and no watchdog: the pre-recovery
    /// behavior (fail on the first `dt_min` exhaustion).
    pub fn disabled() -> Self {
        Self {
            damped_retry: false,
            gmin_stepping: false,
            max_restarts: 0,
            step_budget: 0,
        }
    }
}

/// Which rung of the ladder an attempt used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStage {
    /// Damped re-solve of the same step.
    DampedRetry,
    /// Gmin continuation at the same step.
    GminStepping,
    /// Time-step cut after both in-place rungs failed.
    StepCut,
    /// Whole-run restart with halved `dt_init`/`dv_max`.
    RunRestart,
}

impl fmt::Display for RecoveryStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DampedRetry => write!(f, "damped retry"),
            Self::GminStepping => write!(f, "gmin stepping"),
            Self::StepCut => write!(f, "step cut"),
            Self::RunRestart => write!(f, "run restart"),
        }
    }
}

/// One recorded rung attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryAttempt {
    /// The rung used.
    pub stage: RecoveryStage,
    /// Simulation time of the failing step, in seconds.
    pub t: f64,
    /// Step size in effect when the rung fired, in seconds.
    pub dt: f64,
    /// Whether the rung rescued the solve (for [`RecoveryStage::StepCut`]
    /// and [`RecoveryStage::RunRestart`] this is recorded as `false`; their
    /// success shows up as the run completing).
    pub recovered: bool,
}

/// Detailed attempts are capped so a thrashing run cannot balloon the trace.
const MAX_RECORDED: usize = 64;

/// The record of every recovery action taken during one transient run.
///
/// Counters are exact; the per-attempt detail list keeps only the first
/// [`MAX_RECORDED`] entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryTrace {
    attempts: Vec<RecoveryAttempt>,
    /// Damped re-solves attempted.
    pub damped_retries: usize,
    /// Gmin continuations attempted.
    pub gmin_steps: usize,
    /// Time-step cuts taken after a failed solve.
    pub step_cuts: usize,
    /// Whole-run restarts taken.
    pub restarts: usize,
    /// Solves rescued in place (by damping or gmin stepping).
    pub recovered_solves: usize,
}

impl RecoveryTrace {
    /// Records one rung attempt.
    pub(crate) fn record(&mut self, stage: RecoveryStage, t: f64, dt: f64, recovered: bool) {
        match stage {
            RecoveryStage::DampedRetry => self.damped_retries += 1,
            RecoveryStage::GminStepping => self.gmin_steps += 1,
            RecoveryStage::StepCut => self.step_cuts += 1,
            RecoveryStage::RunRestart => self.restarts += 1,
        }
        if recovered {
            self.recovered_solves += 1;
        }
        if self.attempts.len() < MAX_RECORDED {
            self.attempts.push(RecoveryAttempt {
                stage,
                t,
                dt,
                recovered,
            });
        }
    }

    /// The recorded attempts (first [`MAX_RECORDED`] at most).
    pub fn attempts(&self) -> &[RecoveryAttempt] {
        &self.attempts
    }

    /// Total rung attempts across all stages.
    pub fn total(&self) -> usize {
        self.damped_retries + self.gmin_steps + self.step_cuts + self.restarts
    }

    /// Whether the run needed no recovery at all.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_enables_every_rung() {
        let p = RecoveryPolicy::default();
        assert!(p.damped_retry);
        assert!(p.gmin_stepping);
        assert!(p.max_restarts > 0);
        assert!(p.step_budget > 0);
    }

    #[test]
    fn disabled_policy_is_inert() {
        let p = RecoveryPolicy::disabled();
        assert!(!p.damped_retry);
        assert!(!p.gmin_stepping);
        assert_eq!(p.max_restarts, 0);
        assert_eq!(p.step_budget, 0);
    }

    #[test]
    fn trace_counts_and_caps_detail() {
        let mut tr = RecoveryTrace::default();
        assert!(tr.is_empty());
        for k in 0..(MAX_RECORDED + 10) {
            tr.record(RecoveryStage::StepCut, k as f64, 1e-12, false);
        }
        tr.record(RecoveryStage::DampedRetry, 0.0, 1e-12, true);
        tr.record(RecoveryStage::GminStepping, 0.0, 1e-12, true);
        tr.record(RecoveryStage::RunRestart, 0.0, 1e-12, false);
        assert_eq!(tr.step_cuts, MAX_RECORDED + 10);
        assert_eq!(tr.damped_retries, 1);
        assert_eq!(tr.gmin_steps, 1);
        assert_eq!(tr.restarts, 1);
        assert_eq!(tr.recovered_solves, 2);
        assert_eq!(tr.total(), MAX_RECORDED + 13);
        assert_eq!(tr.attempts().len(), MAX_RECORDED);
        assert!(!tr.is_empty());
    }

    #[test]
    fn stage_display_names() {
        assert_eq!(RecoveryStage::DampedRetry.to_string(), "damped retry");
        assert_eq!(RecoveryStage::GminStepping.to_string(), "gmin stepping");
        assert_eq!(RecoveryStage::StepCut.to_string(), "step cut");
        assert_eq!(RecoveryStage::RunRestart.to_string(), "run restart");
    }
}
