//! A from-scratch transistor-level circuit simulator.
//!
//! The paper this workspace reproduces (Chandramouli & Sakallah, DAC 1996)
//! characterizes and validates its delay macromodels against HSPICE. No SPICE
//! engine is available here, so this crate provides the substrate: a compact
//! modified-nodal-analysis (MNA) simulator with
//!
//! - Level-1 (Shichman–Hodges) MOSFETs with body effect and channel-length
//!   modulation ([`device`]),
//! - resistors, capacitors, and DC/PWL voltage sources ([`circuit`]),
//! - Newton–Raphson DC operating point with gmin and source stepping
//!   ([`op`]),
//! - DC sweeps with solution continuation, used for voltage-transfer-curve
//!   extraction ([`sweep`]),
//! - trapezoidal/backward-Euler transient analysis with adaptive
//!   voltage-limited time stepping and PWL-source breakpoints ([`tran`]).
//!
//! The circuits of interest are standard cells — a handful of transistors —
//! so the solver uses dense LU throughout.
//!
//! # Example: RC low-pass step response
//!
//! ```
//! use proxim_spice::circuit::{Circuit, Waveform};
//! use proxim_spice::tran::TranOptions;
//!
//! # fn main() -> Result<(), proxim_spice::AnalysisError> {
//! let mut ckt = Circuit::new();
//! let inp = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.vsource("VIN", inp, Circuit::GND, Waveform::step(0.0, 1e-9, 1.0));
//! ckt.resistor("R1", inp, out, 1e3);
//! ckt.capacitor("C1", out, Circuit::GND, 1e-12);
//!
//! let result = ckt.tran(&TranOptions::to(10e-9))?;
//! let v_end = result.waveform(out).eval(10e-9);
//! assert!((v_end - 1.0).abs() < 1e-3); // settled to the step value
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod batch;
pub mod cancel;
pub mod circuit;
pub mod device;
pub mod faultpoint;
pub mod op;
pub mod recover;
pub mod solver;
pub mod sweep;
pub mod tran;

pub use batch::{tran_batch, BatchRun};
pub use cancel::CancelToken;
pub use circuit::{Circuit, NodeId, Waveform};
pub use device::{MosParams, MosType};
pub use faultpoint::FaultConfig;
pub use op::OpResult;
pub use recover::{RecoveryPolicy, RecoveryTrace};
pub use solver::AnalysisError;
pub use sweep::DcSweepResult;
pub use tran::{TranOptions, TranResult};
