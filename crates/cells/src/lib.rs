//! CMOS standard-cell generators and technology descriptions.
//!
//! The paper's experiments run on a three-input CMOS NAND gate (Figure 1-1)
//! simulated in HSPICE. This crate provides the equivalent substrate:
//! a [`Technology`] (process parameters plus supply) and a [`Cell`]
//! description — a pull-down network of NMOS devices whose dual pull-up
//! network is derived automatically — that elaborates into a
//! [`proxim_spice::Circuit`] netlist with per-node junction parasitics.
//!
//! # Example
//!
//! ```
//! use proxim_cells::{Cell, Technology};
//!
//! let tech = Technology::demo_5v();
//! let nand3 = Cell::nand(3);
//! assert_eq!(nand3.input_count(), 3);
//! // Logic check: output low only when all inputs are high.
//! assert!(!nand3.output_for(&[true, true, true]));
//! assert!(nand3.output_for(&[true, false, true]));
//!
//! // Elaborate a netlist with a 100 fF load.
//! let net = nand3.netlist(&tech, 100e-15);
//! let op = net.circuit.dc_op().expect("dc converges");
//! assert!(op.voltage(net.out) > 0.9 * tech.vdd); // inputs default low -> output high
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod cell;
pub mod stimulus;
pub mod tech;

pub use cell::{Cell, CellNetlist, Network};
pub use stimulus::InputRamp;
pub use tech::Technology;
