//! Stimulus construction for characterization and validation runs.
//!
//! The paper drives gate inputs with piecewise-linear ramps whose start
//! times and transition times are precisely controlled ("in order to
//! precisely control the separations and rise times of the inputs,
//! piecewise-linear inputs were used", §5). [`InputRamp`] captures one such
//! ramp and converts to a [`Waveform`].

use proxim_numeric::pwl::Edge;
use proxim_spice::circuit::Waveform;

/// One controlled input ramp: direction, start time, and transition time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputRamp {
    /// Transition direction.
    pub edge: Edge,
    /// Time at which the ramp leaves its initial rail, in seconds.
    pub t_start: f64,
    /// Full-swing (rail-to-rail) transition time, in seconds.
    pub transition_time: f64,
}

impl InputRamp {
    /// A rising ramp.
    ///
    /// # Panics
    ///
    /// Panics if `transition_time` is not strictly positive.
    pub fn rising(t_start: f64, transition_time: f64) -> Self {
        assert!(transition_time > 0.0, "transition time must be positive");
        Self {
            edge: Edge::Rising,
            t_start,
            transition_time,
        }
    }

    /// A falling ramp.
    ///
    /// # Panics
    ///
    /// Panics if `transition_time` is not strictly positive.
    pub fn falling(t_start: f64, transition_time: f64) -> Self {
        assert!(transition_time > 0.0, "transition time must be positive");
        Self {
            edge: Edge::Falling,
            t_start,
            transition_time,
        }
    }

    /// The rail the ramp starts from, for supply `vdd`.
    pub fn v_from(&self, vdd: f64) -> f64 {
        match self.edge {
            Edge::Rising => 0.0,
            Edge::Falling => vdd,
        }
    }

    /// The rail the ramp ends at, for supply `vdd`.
    pub fn v_to(&self, vdd: f64) -> f64 {
        match self.edge {
            Edge::Rising => vdd,
            Edge::Falling => 0.0,
        }
    }

    /// The time the ramp crosses voltage `v` (must lie between the rails).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the ramp's voltage span.
    pub fn crossing_time(&self, v: f64, vdd: f64) -> f64 {
        let (v0, v1) = (self.v_from(vdd), self.v_to(vdd));
        let frac = (v - v0) / (v1 - v0);
        assert!((0.0..=1.0).contains(&frac), "voltage {v} outside ramp span");
        self.t_start + frac * self.transition_time
    }

    /// Converts to a simulator stimulus for supply `vdd`.
    pub fn waveform(&self, vdd: f64) -> Waveform {
        Waveform::ramp(
            self.t_start,
            self.transition_time,
            self.v_from(vdd),
            self.v_to(vdd),
        )
    }

    /// Returns the ramp delayed by `dt` (negative advances it).
    pub fn delayed(mut self, dt: f64) -> Self {
        self.t_start += dt;
        self
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn rising_ramp_rails() {
        let r = InputRamp::rising(1e-9, 0.5e-9);
        assert_eq!(r.v_from(5.0), 0.0);
        assert_eq!(r.v_to(5.0), 5.0);
    }

    #[test]
    fn falling_ramp_rails() {
        let r = InputRamp::falling(0.0, 1e-9);
        assert_eq!(r.v_from(3.3), 3.3);
        assert_eq!(r.v_to(3.3), 0.0);
    }

    #[test]
    fn crossing_time_linear() {
        let r = InputRamp::rising(1e-9, 1e-9);
        assert!((r.crossing_time(2.5, 5.0) - 1.5e-9).abs() < 1e-15);
        let f = InputRamp::falling(0.0, 2e-9);
        assert!((f.crossing_time(2.5, 5.0) - 1e-9).abs() < 1e-15);
    }

    #[test]
    fn waveform_matches_ramp() {
        let r = InputRamp::rising(1e-9, 1e-9);
        let w = r.waveform(5.0);
        assert_eq!(w.value_at(0.5e-9), 0.0);
        assert!((w.value_at(1.5e-9) - 2.5).abs() < 1e-9);
        assert_eq!(w.value_at(3e-9), 5.0);
    }

    #[test]
    fn delayed_shifts_start() {
        let r = InputRamp::rising(1e-9, 1e-9).delayed(0.25e-9);
        assert!((r.t_start - 1.25e-9).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "outside ramp span")]
    fn crossing_outside_span_panics() {
        InputRamp::rising(0.0, 1e-9).crossing_time(6.0, 5.0);
    }
}
