//! Static CMOS cell descriptions and netlist elaboration.
//!
//! A [`Cell`] is described by its pull-down network ([`Network`]) of NMOS
//! devices between the output and ground; the pull-up network is the series/
//! parallel dual with PMOS devices between the supply and the output. The
//! gate function is therefore always the complement of "the pull-down
//! network conducts".

use crate::tech::Technology;
use proxim_spice::circuit::{Circuit, NodeId, Waveform};
use proxim_spice::device::MosType;
use std::collections::HashMap;

/// A series/parallel switch network over input indices.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Network {
    /// A single transistor gated by input `i`.
    Input(usize),
    /// Sub-networks in series (all must conduct).
    Series(Vec<Network>),
    /// Sub-networks in parallel (any may conduct).
    Parallel(Vec<Network>),
}

impl Network {
    /// Whether the network conducts for the given input levels (`true` =
    /// logic high = NMOS on).
    ///
    /// # Panics
    ///
    /// Panics if an input index is out of range for `levels`.
    pub fn conducts(&self, levels: &[bool]) -> bool {
        match self {
            Self::Input(i) => levels[*i],
            Self::Series(xs) => xs.iter().all(|x| x.conducts(levels)),
            Self::Parallel(xs) => xs.iter().any(|x| x.conducts(levels)),
        }
    }

    /// The series/parallel dual (series ↔ parallel, leaves unchanged).
    pub fn dual(&self) -> Self {
        match self {
            Self::Input(i) => Self::Input(*i),
            Self::Series(xs) => Self::Parallel(xs.iter().map(Self::dual).collect()),
            Self::Parallel(xs) => Self::Series(xs.iter().map(Self::dual).collect()),
        }
    }

    /// The largest input index referenced, or `None` for an empty network.
    fn max_input(&self) -> Option<usize> {
        match self {
            Self::Input(i) => Some(*i),
            Self::Series(xs) | Self::Parallel(xs) => xs.iter().filter_map(Self::max_input).max(),
        }
    }

    /// Number of transistors in the network.
    pub fn transistor_count(&self) -> usize {
        match self {
            Self::Input(_) => 1,
            Self::Series(xs) | Self::Parallel(xs) => xs.iter().map(Self::transistor_count).sum(),
        }
    }
}

/// A static CMOS cell: named inputs, a pull-down network, and device widths.
///
/// Input ordering matters for series stacks: for [`Cell::nand`], input 0 is
/// the transistor closest to the output and the last input is closest to
/// ground, matching the `a`/`b`/`c` labeling of the paper's Figure 1-1.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cell {
    name: String,
    input_names: Vec<String>,
    pdn: Network,
    wn: f64,
    wp: f64,
}

/// Default NMOS width for generated cells, in meters.
pub const DEFAULT_WN: f64 = 4e-6;
/// Default PMOS width for generated cells, in meters.
pub const DEFAULT_WP: f64 = 8e-6;

fn letter_names(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            // `a`, `b`, `c`, ... like the paper's Figure 1-1; absurd fan-ins
            // that leave the alphabet fall back to indexed names.
            match u32::try_from(i)
                .ok()
                .and_then(|i| char::from_u32('a' as u32 + i))
            {
                Some(c) if c.is_ascii_lowercase() => c.to_string(),
                _ => format!("in{i}"),
            }
        })
        .collect()
}

impl Cell {
    /// Builds a cell from an explicit pull-down network.
    ///
    /// # Panics
    ///
    /// Panics if the network references inputs outside `input_names`, if
    /// there are no inputs, or if widths are not positive.
    pub fn from_pdn(name: &str, input_names: Vec<String>, pdn: Network, wn: f64, wp: f64) -> Self {
        assert!(!input_names.is_empty(), "a cell needs at least one input");
        assert!(wn > 0.0 && wp > 0.0, "device widths must be positive");
        let Some(max) = pdn.max_input() else {
            panic!("pull-down network must not be empty");
        };
        assert!(
            max < input_names.len(),
            "network references input {max} but only {} inputs exist",
            input_names.len()
        );
        Self {
            name: name.to_string(),
            input_names,
            pdn,
            wn,
            wp,
        }
    }

    /// An inverter.
    pub fn inv() -> Self {
        Self::from_pdn(
            "INV",
            letter_names(1),
            Network::Input(0),
            DEFAULT_WN,
            DEFAULT_WP,
        )
    }

    /// An `n`-input NAND; input 0 is the series transistor closest to the
    /// output, input `n-1` closest to ground.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 8`.
    pub fn nand(n: usize) -> Self {
        assert!((1..=8).contains(&n), "supported NAND fan-in is 1..=8");
        let pdn = if n == 1 {
            Network::Input(0)
        } else {
            Network::Series((0..n).map(Network::Input).collect())
        };
        Self::from_pdn(
            &format!("NAND{n}"),
            letter_names(n),
            pdn,
            DEFAULT_WN,
            DEFAULT_WP,
        )
    }

    /// An `n`-input NOR; input 0 is the series PMOS closest to the supply.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 8`.
    pub fn nor(n: usize) -> Self {
        assert!((1..=8).contains(&n), "supported NOR fan-in is 1..=8");
        let pdn = if n == 1 {
            Network::Input(0)
        } else {
            Network::Parallel((0..n).map(Network::Input).collect())
        };
        Self::from_pdn(
            &format!("NOR{n}"),
            letter_names(n),
            pdn,
            DEFAULT_WN,
            DEFAULT_WP,
        )
    }

    /// An AOI21: `out = !(a·b + c)`.
    pub fn aoi21() -> Self {
        let pdn = Network::Parallel(vec![
            Network::Series(vec![Network::Input(0), Network::Input(1)]),
            Network::Input(2),
        ]);
        Self::from_pdn("AOI21", letter_names(3), pdn, DEFAULT_WN, DEFAULT_WP)
    }

    /// An OAI21: `out = !((a + b)·c)`.
    pub fn oai21() -> Self {
        let pdn = Network::Series(vec![
            Network::Parallel(vec![Network::Input(0), Network::Input(1)]),
            Network::Input(2),
        ]);
        Self::from_pdn("OAI21", letter_names(3), pdn, DEFAULT_WN, DEFAULT_WP)
    }

    /// Returns the cell with different device widths.
    ///
    /// # Panics
    ///
    /// Panics if widths are not positive.
    pub fn with_widths(mut self, wn: f64, wp: f64) -> Self {
        assert!(wn > 0.0 && wp > 0.0, "device widths must be positive");
        self.wn = wn;
        self.wp = wp;
        self
    }

    /// The cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of inputs.
    pub fn input_count(&self) -> usize {
        self.input_names.len()
    }

    /// Input pin names.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// NMOS width.
    pub fn wn(&self) -> f64 {
        self.wn
    }

    /// PMOS width.
    pub fn wp(&self) -> f64 {
        self.wp
    }

    /// The pull-down network.
    pub fn pdn(&self) -> &Network {
        &self.pdn
    }

    /// The logic value of the output for the given input levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != self.input_count()`.
    pub fn output_for(&self, levels: &[bool]) -> bool {
        assert_eq!(levels.len(), self.input_count(), "level count mismatch");
        !self.pdn.conducts(levels)
    }

    /// The controlling level of `pin`, if one exists: the input level that
    /// forces the output regardless of the other inputs (e.g. low for NAND
    /// inputs, high for NOR inputs).
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range.
    pub fn controlling_level(&self, pin: usize) -> Option<bool> {
        assert!(pin < self.input_count(), "pin out of range");
        'level: for level in [false, true] {
            let mut fixed: Option<bool> = None;
            for mask in 0..(1u32 << self.input_count()) {
                let mut levels: Vec<bool> = (0..self.input_count())
                    .map(|i| mask & (1 << i) != 0)
                    .collect();
                levels[pin] = level;
                let out = self.output_for(&levels);
                match fixed {
                    None => fixed = Some(out),
                    Some(f) if f != out => continue 'level,
                    Some(_) => {}
                }
            }
            return Some(level);
        }
        None
    }

    /// Levels for the *other* pins that sensitize the output to `pin`
    /// (flipping `pin` flips the output). Entry `pin` of the returned vector
    /// is unspecified (`false`).
    ///
    /// Returns `None` when no such assignment exists.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range.
    pub fn sensitizing_levels(&self, pin: usize) -> Option<Vec<bool>> {
        assert!(pin < self.input_count(), "pin out of range");
        let n = self.input_count();
        for mask in 0..(1u32 << n) {
            let mut levels: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            levels[pin] = false;
            let lo = self.output_for(&levels);
            levels[pin] = true;
            let hi = self.output_for(&levels);
            if lo != hi {
                levels[pin] = false;
                return Some(levels);
            }
        }
        None
    }

    /// The input pin load presented by this cell, in farads.
    pub fn input_cap(&self, tech: &Technology) -> f64 {
        tech.gate_cap(self.wn, self.wp)
    }

    /// Elaborates the cell into a transistor netlist.
    ///
    /// Every input pin is driven by a named voltage source `V<pin>`
    /// (e.g. `Va`) initialized to DC 0 V; callers reconfigure stimuli with
    /// [`Circuit::set_vsource`]. The output carries `c_load` plus junction
    /// parasitics; internal stack nodes carry junction parasitics, which is
    /// what produces the charge-sharing component of the proximity effect.
    pub fn netlist(&self, tech: &Technology, c_load: f64) -> CellNetlist {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::Dc(tech.vdd));

        let mut input_nodes = Vec::with_capacity(self.input_count());
        let mut input_sources = Vec::with_capacity(self.input_count());
        for name in &self.input_names {
            let node = ckt.node(name);
            let src = format!("V{name}");
            ckt.vsource(&src, node, Circuit::GND, Waveform::Dc(0.0));
            input_nodes.push(node);
            input_sources.push(src);
        }

        self.elaborate_into(&mut ckt, tech, "x0", vdd, &input_nodes, out);
        ckt.capacitor("CL", out, Circuit::GND, c_load);

        CellNetlist {
            circuit: ckt,
            out,
            vdd,
            input_nodes,
            input_sources,
            vdd_volts: tech.vdd,
        }
    }

    /// Elaborates this cell's transistors, gate capacitances and junction
    /// parasitics into an existing circuit, connecting the given pin nodes.
    /// Element names are prefixed with `prefix` so multiple instances
    /// coexist; internal stack nodes are created under the same prefix.
    ///
    /// This is the building block for flat (whole-netlist) elaboration in
    /// timing validation; [`Cell::netlist`] wraps it for the single-cell
    /// case.
    ///
    /// # Panics
    ///
    /// Panics if `input_nodes.len() != self.input_count()`.
    pub fn elaborate_into(
        &self,
        ckt: &mut Circuit,
        tech: &Technology,
        prefix: &str,
        vdd: NodeId,
        input_nodes: &[NodeId],
        out: NodeId,
    ) {
        assert_eq!(input_nodes.len(), self.input_count(), "pin count mismatch");
        // Junction capacitance accumulates per node as transistors attach.
        let mut junction: HashMap<NodeId, f64> = HashMap::new();
        let mut dev_count = 0usize;

        let pun = self.pdn.dual();
        self.build_network(
            ckt,
            &self.pdn,
            out,
            Circuit::GND,
            MosType::Nmos,
            tech,
            input_nodes,
            &mut junction,
            &mut dev_count,
            &format!("{prefix}_pdn"),
        );
        self.build_network(
            ckt,
            &pun,
            vdd,
            out,
            MosType::Pmos,
            tech,
            input_nodes,
            &mut junction,
            &mut dev_count,
            &format!("{prefix}_pun"),
        );

        // Gate capacitance at each input: the pin load this cell presents
        // to whatever drives it.
        for (i, &node) in input_nodes.iter().enumerate() {
            let cg = tech.gate_cap(self.wn, self.wp);
            ckt.capacitor(&format!("{prefix}_Cg{i}"), node, Circuit::GND, cg);
        }

        // One lumped junction capacitor per non-rail node this instance
        // touches.
        let mut nodes: Vec<(NodeId, f64)> = junction.into_iter().collect();
        nodes.sort_by_key(|&(n, _)| n);
        for (node, c) in nodes {
            if node == vdd || node == Circuit::GND {
                continue;
            }
            let cap_name = format!("{prefix}_Cj_{}", ckt.node_name(node));
            ckt.capacitor(&cap_name, node, Circuit::GND, c);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_network(
        &self,
        ckt: &mut Circuit,
        net: &Network,
        top: NodeId,
        bottom: NodeId,
        mos_type: MosType,
        tech: &Technology,
        input_nodes: &[NodeId],
        junction: &mut HashMap<NodeId, f64>,
        dev_count: &mut usize,
        prefix: &str,
    ) {
        match net {
            Network::Input(i) => {
                let (params, w, l, body) = match mos_type {
                    MosType::Nmos => (tech.nmos, self.wn, tech.ln, Circuit::GND),
                    MosType::Pmos => (tech.pmos, self.wp, tech.lp, ckt.node("vdd")),
                };
                let name = format!("M_{prefix}_{}", *dev_count);
                *dev_count += 1;
                // Drain at `top`, source at `bottom`; the simulator handles
                // reverse conduction symmetrically.
                ckt.mosfet(
                    &name,
                    mos_type,
                    top,
                    input_nodes[*i],
                    bottom,
                    body,
                    params,
                    w,
                    l,
                );
                *junction.entry(top).or_insert(0.0) += tech.cj_per_width * w;
                *junction.entry(bottom).or_insert(0.0) += tech.cj_per_width * w;
            }
            Network::Series(children) => {
                let mut upper = top;
                for (k, child) in children.iter().enumerate() {
                    let lower = if k == children.len() - 1 {
                        bottom
                    } else {
                        let n = ckt.node(&format!("{prefix}_s{}", *dev_count));
                        n
                    };
                    self.build_network(
                        ckt,
                        child,
                        upper,
                        lower,
                        mos_type,
                        tech,
                        input_nodes,
                        junction,
                        dev_count,
                        prefix,
                    );
                    upper = lower;
                }
            }
            Network::Parallel(children) => {
                for child in children {
                    self.build_network(
                        ckt,
                        child,
                        top,
                        bottom,
                        mos_type,
                        tech,
                        input_nodes,
                        junction,
                        dev_count,
                        prefix,
                    );
                }
            }
        }
    }
}

/// An elaborated cell netlist, ready for analysis.
#[derive(Debug, Clone)]
pub struct CellNetlist {
    /// The transistor-level circuit.
    pub circuit: Circuit,
    /// The output node.
    pub out: NodeId,
    /// The supply node.
    pub vdd: NodeId,
    /// Input nodes, in pin order.
    pub input_nodes: Vec<NodeId>,
    /// Names of the input-driving voltage sources, in pin order.
    pub input_sources: Vec<String>,
    /// Supply voltage, in volts.
    pub vdd_volts: f64,
}

impl CellNetlist {
    /// Sets input pin `pin` to a DC logic level.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range.
    pub fn set_level(&mut self, pin: usize, high: bool) {
        let v = if high { self.vdd_volts } else { 0.0 };
        self.circuit
            .set_vsource(&self.input_sources[pin], Waveform::Dc(v));
    }

    /// Sets input pin `pin` to an arbitrary waveform.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range.
    pub fn set_waveform(&mut self, pin: usize, wave: Waveform) {
        self.circuit.set_vsource(&self.input_sources[pin], wave);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn network_logic() {
        let n = Network::Parallel(vec![
            Network::Series(vec![Network::Input(0), Network::Input(1)]),
            Network::Input(2),
        ]);
        assert!(n.conducts(&[true, true, false]));
        assert!(n.conducts(&[false, false, true]));
        assert!(!n.conducts(&[true, false, false]));
        assert_eq!(n.transistor_count(), 3);
    }

    #[test]
    fn dual_swaps_series_and_parallel() {
        let n = Network::Series(vec![Network::Input(0), Network::Input(1)]);
        let d = n.dual();
        assert_eq!(
            d,
            Network::Parallel(vec![Network::Input(0), Network::Input(1)])
        );
        assert_eq!(d.dual(), n);
    }

    #[test]
    fn nand_truth_table() {
        let c = Cell::nand(3);
        for mask in 0..8u32 {
            let levels: Vec<bool> = (0..3).map(|i| mask & (1 << i) != 0).collect();
            let expect = !(levels[0] && levels[1] && levels[2]);
            assert_eq!(c.output_for(&levels), expect, "levels {levels:?}");
        }
    }

    #[test]
    fn nor_truth_table() {
        let c = Cell::nor(2);
        assert!(c.output_for(&[false, false]));
        assert!(!c.output_for(&[true, false]));
        assert!(!c.output_for(&[false, true]));
        assert!(!c.output_for(&[true, true]));
    }

    #[test]
    fn aoi_oai_logic() {
        let aoi = Cell::aoi21();
        assert!(!aoi.output_for(&[true, true, false]));
        assert!(!aoi.output_for(&[false, false, true]));
        assert!(aoi.output_for(&[true, false, false]));
        let oai = Cell::oai21();
        assert!(!oai.output_for(&[true, false, true]));
        assert!(oai.output_for(&[false, false, true]));
        assert!(oai.output_for(&[true, true, false]));
    }

    #[test]
    fn inverter_logic() {
        let c = Cell::inv();
        assert!(c.output_for(&[false]));
        assert!(!c.output_for(&[true]));
    }

    #[test]
    fn controlling_levels() {
        let nand = Cell::nand(3);
        for pin in 0..3 {
            assert_eq!(nand.controlling_level(pin), Some(false));
        }
        let nor = Cell::nor(2);
        assert_eq!(nor.controlling_level(0), Some(true));
        let aoi = Cell::aoi21();
        assert_eq!(
            aoi.controlling_level(2),
            Some(true),
            "c = 1 forces AOI21 low"
        );
        assert_eq!(aoi.controlling_level(0), None, "a alone never forces AOI21");
    }

    #[test]
    fn sensitizing_levels_flip_output() {
        for cell in [Cell::nand(3), Cell::nor(3), Cell::aoi21(), Cell::oai21()] {
            for pin in 0..cell.input_count() {
                let mut levels = cell
                    .sensitizing_levels(pin)
                    .unwrap_or_else(|| panic!("{} pin {pin} must be sensitizable", cell.name()));
                levels[pin] = false;
                let lo = cell.output_for(&levels);
                levels[pin] = true;
                assert_ne!(lo, cell.output_for(&levels));
            }
        }
    }

    #[test]
    fn nand_sensitizing_levels_are_all_high() {
        let c = Cell::nand(3);
        let lv = c.sensitizing_levels(1).unwrap();
        assert!(lv[0] && lv[2]);
    }

    #[test]
    fn netlist_has_expected_structure() {
        let tech = Technology::demo_5v();
        let net = Cell::nand(3).netlist(&tech, 100e-15);
        // 3 NMOS + 3 PMOS transistors, 4 sources (VDD + 3 inputs),
        // 3 gate caps + junction caps on out and 2 stack nodes.
        assert_eq!(net.input_nodes.len(), 3);
        assert_eq!(net.circuit.vsource_count(), 4);
        // out + 2 internal stack nodes + vdd + 3 inputs + gnd = 8 nodes.
        assert_eq!(net.circuit.node_count(), 8);
    }

    #[test]
    fn nand3_dc_truth_table_in_silicon() {
        let tech = Technology::demo_5v();
        let cell = Cell::nand(3);
        for mask in 0..8u32 {
            let levels: Vec<bool> = (0..3).map(|i| mask & (1 << i) != 0).collect();
            let mut net = cell.netlist(&tech, 100e-15);
            for (pin, &hi) in levels.iter().enumerate() {
                net.set_level(pin, hi);
            }
            let op = net.circuit.dc_op().expect("dc converges");
            let v = op.voltage(net.out);
            if cell.output_for(&levels) {
                assert!(v > 0.95 * tech.vdd, "levels {levels:?} -> {v}");
            } else {
                assert!(v < 0.05 * tech.vdd, "levels {levels:?} -> {v}");
            }
        }
    }

    #[test]
    fn nor2_dc_truth_table_in_silicon() {
        let tech = Technology::demo_5v();
        let cell = Cell::nor(2);
        for mask in 0..4u32 {
            let levels: Vec<bool> = (0..2).map(|i| mask & (1 << i) != 0).collect();
            let mut net = cell.netlist(&tech, 50e-15);
            for (pin, &hi) in levels.iter().enumerate() {
                net.set_level(pin, hi);
            }
            let op = net.circuit.dc_op().expect("dc converges");
            let v = op.voltage(net.out);
            if cell.output_for(&levels) {
                assert!(v > 0.95 * tech.vdd, "levels {levels:?} -> {v}");
            } else {
                assert!(v < 0.05 * tech.vdd, "levels {levels:?} -> {v}");
            }
        }
    }

    #[test]
    fn with_widths_changes_geometry() {
        let c = Cell::nand(2).with_widths(6e-6, 12e-6);
        assert_eq!(c.wn(), 6e-6);
        assert_eq!(c.wp(), 12e-6);
    }

    #[test]
    #[should_panic(expected = "fan-in")]
    fn nand_zero_inputs_rejected() {
        Cell::nand(0);
    }

    #[test]
    fn input_cap_positive() {
        let tech = Technology::demo_5v();
        assert!(Cell::inv().input_cap(&tech) > 0.0);
    }
}
