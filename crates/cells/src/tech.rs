//! Process technology description.

use proxim_spice::device::MosParams;

/// A CMOS process plus operating supply: everything a [`crate::Cell`] needs
/// to elaborate into transistors.
///
/// The demo technology is a representative 0.8 µm, 5 V process in the spirit
/// of the MOSIS runs contemporary with the paper. Absolute delays differ
/// from the paper's HSPICE setup (whose transistor sizes are not given in
/// the available text); the reproduction targets shapes, orderings and
/// relative errors, which are technology-robust.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Technology {
    /// Human-readable name.
    pub name: String,
    /// Supply voltage, in volts.
    pub vdd: f64,
    /// NMOS Level-1 parameters.
    pub nmos: MosParams,
    /// PMOS Level-1 parameters.
    pub pmos: MosParams,
    /// NMOS channel length, in meters.
    pub ln: f64,
    /// PMOS channel length, in meters.
    pub lp: f64,
    /// Gate-oxide capacitance per area, in F/m².
    pub cox: f64,
    /// Junction (diffusion) capacitance per transistor width, in F/m.
    pub cj_per_width: f64,
}

impl Technology {
    /// The representative 0.8 µm / 5 V demo process used throughout the
    /// reproduction.
    pub fn demo_5v() -> Self {
        Self {
            name: "demo-0.8um-5v".to_string(),
            vdd: 5.0,
            nmos: MosParams {
                vt0: 0.75,
                kp: 50e-6,
                gamma: 0.40,
                phi: 0.60,
                lambda: 0.03,
            },
            pmos: MosParams {
                vt0: 0.85,
                kp: 17e-6,
                gamma: 0.50,
                phi: 0.60,
                lambda: 0.04,
            },
            ln: 0.8e-6,
            lp: 0.8e-6,
            cox: 1.73e-3,
            cj_per_width: 0.8e-9,
        }
    }

    /// A faster, lower-voltage variant (3.3 V, shorter channel) used to show
    /// the macromodel generalizes across technologies.
    pub fn demo_3v3() -> Self {
        Self {
            name: "demo-0.5um-3.3v".to_string(),
            vdd: 3.3,
            nmos: MosParams {
                vt0: 0.60,
                kp: 90e-6,
                gamma: 0.35,
                phi: 0.65,
                lambda: 0.05,
            },
            pmos: MosParams {
                vt0: 0.70,
                kp: 30e-6,
                gamma: 0.45,
                phi: 0.65,
                lambda: 0.06,
            },
            ln: 0.5e-6,
            lp: 0.5e-6,
            cox: 2.5e-3,
            cj_per_width: 0.6e-9,
        }
    }

    /// A complementary-GaAs-class technology, the paper's stated future
    /// target ("we also plan to use this technique for the CGaAs
    /// technology", §7, citing Abrokwah et al.). Parameters approximate a
    /// mid-90s CGaAs process in the Level-1 frame: low supply, low
    /// thresholds, high electron mobility, weak p-channel. The point is not
    /// device-physics fidelity (CGaAs HIGFETs are not square-law silicon
    /// MOSFETs) but that the entire characterization/model flow is
    /// technology-agnostic, which this surrogate exercises.
    pub fn cgaas_like() -> Self {
        Self {
            name: "cgaas-like-1.5v".to_string(),
            vdd: 1.5,
            nmos: MosParams {
                vt0: 0.24,
                kp: 220e-6,
                gamma: 0.20,
                phi: 0.70,
                lambda: 0.06,
            },
            pmos: MosParams {
                vt0: 0.28,
                kp: 28e-6,
                gamma: 0.25,
                phi: 0.70,
                lambda: 0.08,
            },
            ln: 0.7e-6,
            lp: 0.7e-6,
            cox: 1.2e-3,
            cj_per_width: 0.4e-9,
        }
    }

    /// The paper's transistor strength `K = (1/2) mu Cox (W/L)` for an NMOS
    /// of width `w`, in A/V². Used in the dimensionless load argument
    /// `C_L / (K_n V_dd tau)` of eqs. (3.7)/(3.8).
    pub fn k_n(&self, w: f64) -> f64 {
        0.5 * self.nmos.kp * w / self.ln
    }

    /// The strength of a PMOS of width `w`, in A/V².
    pub fn k_p(&self, w: f64) -> f64 {
        0.5 * self.pmos.kp * w / self.lp
    }

    /// Gate capacitance of one transistor pair (NMOS width `wn`, PMOS width
    /// `wp`), in farads. Used as the input pin load in gate-level timing.
    pub fn gate_cap(&self, wn: f64, wp: f64) -> f64 {
        self.cox * (wn * self.ln + wp * self.lp)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn demo_5v_is_sane() {
        let t = Technology::demo_5v();
        assert_eq!(t.vdd, 5.0);
        t.nmos.validate();
        t.pmos.validate();
        assert!(
            t.nmos.kp > t.pmos.kp,
            "electron mobility exceeds hole mobility"
        );
    }

    #[test]
    fn strength_scales_with_width() {
        let t = Technology::demo_5v();
        assert!((t.k_n(8e-6) / t.k_n(4e-6) - 2.0).abs() < 1e-12);
        assert!(t.k_n(4e-6) > t.k_p(4e-6));
    }

    #[test]
    fn gate_cap_is_positive_and_additive() {
        let t = Technology::demo_5v();
        let c = t.gate_cap(4e-6, 8e-6);
        assert!(c > 0.0);
        assert!((c - t.gate_cap(4e-6, 0.0) - t.gate_cap(0.0, 8e-6)).abs() < 1e-20);
        // Order of magnitude: a few fF for micron-scale devices.
        assert!(c > 1e-15 && c < 1e-13, "gate cap {c}");
    }

    #[test]
    fn k_n_magnitude() {
        let t = Technology::demo_5v();
        // K_n for a 4um/0.8um device: 0.5 * 50u * 5 = 125 uA/V^2.
        assert!((t.k_n(4e-6) - 125e-6).abs() < 1e-9);
    }
}
