//! Vendored offline stand-in for the `rand` crate.
//!
//! Covers exactly the API surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and `RngExt::random_range` over half-open
//! ranges — with a splitmix64 generator. The stream differs from upstream
//! `rand`'s StdRng (ChaCha12), which only shifts *which* random stimuli the
//! validation harness draws; every consumer seeds explicitly, so results
//! stay reproducible run to run.

use std::ops::Range;

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::Rng::random_range`.
pub trait RngExt: RngCore {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> RngExt for R {}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for u64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = range.end - range.start;
        // Modulo bias is ~span/2^64 — irrelevant for test stimuli.
        range.start + rng.next_u64() % span
    }
}

impl SampleUniform for usize {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        u64::sample_range(rng, range.start as u64..range.end as u64) as usize
    }
}

impl SampleUniform for i64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic splitmix64 generator (Steele et al., "Fast splittable
    /// pseudorandom number generators").
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0.0f64..1.0), b.random_range(0.0f64..1.0));
        }
    }

    #[test]
    fn f64_samples_stay_in_range_and_vary() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..1000 {
            let x = rng.random_range(50e-12..2000e-12);
            assert!((50e-12..2000e-12).contains(&x));
            seen_low |= x < 500e-12;
            seen_high |= x > 1500e-12;
        }
        assert!(seen_low && seen_high, "samples should cover the range");
    }

    #[test]
    fn negative_f64_ranges_work() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let x = rng.random_range(-500e-12..500e-12);
            assert!((-500e-12..500e-12).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_work() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let u = rng.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }
}
