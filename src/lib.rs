//! # proxim — temporal-proximity gate delay modeling
//!
//! A production-quality Rust reproduction of *"Modeling the Effects of
//! Temporal Proximity of Input Transitions on Gate Propagation Delay and
//! Transition Time"* (V. Chandramouli and K. A. Sakallah, DAC 1996 /
//! Univ. of Michigan CSE-TR-262-95), including every substrate the paper
//! depends on:
//!
//! - [`spice`]: a from-scratch transistor-level circuit simulator (the
//!   paper used HSPICE) — MNA, Level-1 MOSFETs, Newton–Raphson DC, DC
//!   sweeps, trapezoidal transient.
//! - [`cells`]: CMOS standard-cell generators and technology descriptions.
//! - [`model`]: the paper's contribution — VTC-based threshold selection,
//!   single- and dual-input proximity macromodels, the `ProximityDelay`
//!   composition algorithm, the glitch/inertial-delay model, and the
//!   prior-art baselines.
//! - [`sta`]: proximity-aware static timing analysis over gate-level
//!   netlists.
//! - [`numeric`]: the numeric kernels underneath it all.
//!
//! See `README.md` for a walkthrough, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for paper-vs-measured results. The runnable
//! examples live in `examples/`; the benchmark harness that regenerates
//! every figure and table of the paper is the `experiments` binary in
//! `crates/bench`.
//!
//! # Quickstart
//!
//! ```no_run
//! use proxim::cells::{Cell, Technology};
//! use proxim::model::characterize::CharacterizeOptions;
//! use proxim::model::{InputEvent, ProximityModel};
//! use proxim::numeric::pwl::Edge;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::demo_5v();
//! let nand3 = Cell::nand(3);
//! let model = ProximityModel::characterize(&nand3, &tech, &CharacterizeOptions::default())?;
//!
//! let events = vec![
//!     InputEvent::new(0, Edge::Falling, 0.0, 500e-12),
//!     InputEvent::new(1, Edge::Falling, 120e-12, 300e-12),
//! ];
//! let timing = model.gate_timing(&events)?;
//! println!(
//!     "delay {:.1} ps, output transition {:.1} ps (referenced to pin {})",
//!     timing.delay * 1e12,
//!     timing.output_transition * 1e12,
//!     timing.reference_pin,
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use proxim_cells as cells;
pub use proxim_model as model;
pub use proxim_numeric as numeric;
pub use proxim_spice as spice;
pub use proxim_sta as sta;
