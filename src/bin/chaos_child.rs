//! Chaos-harness child: one checkpointed characterization run.
//!
//! Spawned by `tests/chaos.rs`, which kills it at randomized points
//! (`SIGKILL`) or asks it to stop gracefully (`SIGTERM`) and then re-runs
//! it to exercise checkpoint resume. The child characterizes a NAND2
//! against the demo technology with a checkpoint journal, then saves the
//! model atomically.
//!
//! Exit codes:
//! - `0` — characterization completed and the model was saved; stdout
//!   carries `completed skipped=<n> sims=<n>` for the harness.
//! - `86` — the run was cancelled cooperatively (the `SIGTERM` handler
//!   tripped the token); the journal holds a final flushed checkpoint.
//! - `1` — anything else went wrong.
//!
//! Usage: `chaos_child --out <model.json> --journal <run.journal> [--jobs N]`

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::checkpoint::{CheckpointConfig, RunControl};
use proxim_model::ProximityModel;
use proxim_spice::CancelToken;
use std::process::ExitCode;
use std::sync::OnceLock;

/// The token the SIGTERM handler trips. [`CancelToken::cancel`] is a single
/// atomic store, so calling it from the handler is async-signal-safe.
static TERM_TOKEN: OnceLock<CancelToken> = OnceLock::new();

extern "C" fn on_sigterm(_signum: i32) {
    if let Some(token) = TERM_TOKEN.get() {
        token.cancel();
    }
}

/// Installs the SIGTERM handler via the libc `signal` entry point (no
/// external crates in this build environment, so the one-liner FFI lives
/// here, in the binary — every library crate stays `forbid(unsafe_code)`).
fn install_sigterm_handler() {
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: chaos_child --out <model.json> --journal <run.journal> [--jobs N]");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut out = None;
    let mut journal = None;
    let mut jobs = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next(),
            "--journal" => journal = args.next(),
            "--jobs" => {
                jobs = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage(),
                }
            }
            _ => return usage(),
        }
    }
    let (Some(out), Some(journal)) = (out, journal) else {
        return usage();
    };

    let token = TERM_TOKEN.get_or_init(CancelToken::new).clone();
    install_sigterm_handler();

    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    let opts = CharacterizeOptions {
        jobs,
        ..CharacterizeOptions::fast()
    };
    let control = RunControl::new()
        .with_cancel(token)
        .with_checkpoint(CheckpointConfig::every_job(&journal));

    match ProximityModel::characterize_controlled(&cell, &tech, &opts, &control) {
        Ok((model, stats)) => {
            if let Err(e) = model.save(&out) {
                eprintln!("chaos_child: saving the model failed: {e}");
                return ExitCode::from(1);
            }
            println!(
                "completed skipped={} sims={}",
                stats.checkpoint_skipped, stats.sims_run
            );
            ExitCode::SUCCESS
        }
        Err(e) if e.is_cancellation() => {
            eprintln!("chaos_child: cancelled cooperatively: {e}");
            ExitCode::from(86)
        }
        Err(e) => {
            eprintln!("chaos_child: characterization failed: {e}");
            ExitCode::from(1)
        }
    }
}
