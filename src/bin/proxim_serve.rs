//! `proxim_serve`: the timing-query daemon CLI.
//!
//! Subcommands:
//!
//! - `serve --store DIR --socket PATH [...]` — load the binary model store
//!   (degrade-instead-of-die: corrupt entries are quarantined with their
//!   content hash and the daemon starts with the survivors), bind the Unix
//!   socket, and answer queries until `SIGTERM`, which drains: stop
//!   accepting, finish or shed in-flight work typed, flush the final
//!   metrics snapshot, exit `0`. `SIGHUP` (or the `reload` wire op)
//!   hot-reloads the store into a fresh generation: the candidate loads
//!   and is judged off to the side, then swaps in with one pointer
//!   exchange — in-flight queries finish on the generation they started
//!   on. `--memory-budget BYTES` caps residency: models past the budget
//!   are cold-loaded on demand and LRU-evicted.
//! - `fleet --store DIR --dir DIR --replicas N` — the supervisor: spawn N
//!   replica daemons of this same binary (each on its own socket under the
//!   fleet directory), restart crashes with capped exponential backoff,
//!   quarantine crash-loopers (≥M exits in a window, typed
//!   `replica_quarantined`), answer the `fleet` stats op on
//!   `DIR/fleet.sock`, and fold `SIGHUP` into rolling reloads (one replica
//!   at a time, never below N−1 capacity). `SIGTERM` drains every replica
//!   and exits 0. With `--strict-store`, replicas refuse to start on a
//!   corrupt/empty store (exit 2) so a bad store is quarantined loudly
//!   instead of serving nothing.
//! - `query --socket PATH --json REQ` — one request/response round trip;
//!   prints the response. Exit `0` when the response says `"ok":true`,
//!   `3` for a typed server-side error, `1` for transport failure. With
//!   `--retry`, refusals that are safe to retry (`overloaded`,
//!   `shutting_down`, connect-refused — idempotent ops only) are retried
//!   with capped exponential backoff, never past `--deadline-ms`.
//! - `churn --store DIR --name NAME --rounds N` — characterize one demo
//!   cell, then save it to the store `N` times, printing `round=<i>` after
//!   each durable save. The chaos harness `SIGKILL`s this mid-write and
//!   asserts the store is loadable and byte-identical afterwards — the
//!   `atomic_write` crash-consistency promise, proven at the binary-store
//!   layer. With `--socket PATH --queries N` it instead runs a closed
//!   query loop against a live daemon, round-robining the served model
//!   set — the CI eviction-churn smoke.
//! - `obs --socket PATH [...]` — introspect or reconfigure a live
//!   daemon's observability plane: flip the trace level or sampling knobs
//!   at runtime, fetch the flight-recorder dump to a file, or scrape and
//!   validate the Prometheus exposition. All of it rides the probe fast
//!   path, so it works even when the admission queue is saturated.
//!
//! The `SIGTERM`/`SIGHUP` handlers live here (one libc `signal` FFI line)
//! so every library crate stays `forbid(unsafe_code)`; each handler body
//! is a single atomic store or add, which is async-signal-safe.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::ProximityModel;
use proxim_obs::json::Json;
use proxim_obs::{exposition, flight, serve_metrics as sm, trace};
use proxim_serve::client::{call_with_retry, RetryPolicy};
use proxim_serve::fleet::FleetEvent;
use proxim_serve::server::one_shot;
use proxim_serve::{
    diskfault, Fleet, FleetOptions, LibraryOptions, ModelLibrary, ModelStore, ServeOptions, Server,
};
use proxim_spice::CancelToken;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The token the SIGTERM handler trips; cancelling it begins the drain.
static TERM_TOKEN: OnceLock<CancelToken> = OnceLock::new();

/// SIGHUP arrivals; the serve wait loop folds each one into a reload.
/// Coalescing is deliberate: N signals during one reload collapse into at
/// most one follow-up reload, which is the operator's intent ("pick up
/// what's on disk now"), not a queue of N redundant loads.
static HUP_REQUESTS: AtomicU64 = AtomicU64::new(0);

extern "C" fn on_sigterm(_signum: i32) {
    if let Some(token) = TERM_TOKEN.get() {
        token.cancel();
    }
}

extern "C" fn on_sighup(_signum: i32) {
    HUP_REQUESTS.fetch_add(1, Ordering::Relaxed);
}

/// Installs the SIGTERM and SIGHUP handlers via the libc `signal` entry
/// point (no external crates in this build environment).
fn install_signal_handlers() {
    const SIGHUP: i32 = 1;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
        signal(SIGHUP, on_sighup as *const () as usize);
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         proxim_serve serve --store DIR --socket PATH [--workers N] [--queue N]\n    \
         [--deadline-ms N] [--stall-ms N] [--metrics-out PATH] [--demo]\n    \
         [--sample-every N] [--slow-ms N] [--flight-out PATH] [--flight-capacity N]\n    \
         [--memory-budget BYTES] [--listen tcp://HOST:PORT] [--strict-store]\n  \
         proxim_serve fleet --store DIR --dir DIR [--replicas N] [--demo]\n    \
         [--strict-store] [--quarantine-threshold N] [--quarantine-window-ms N]\n    \
         [--probe-interval-ms N] [--backoff-base-ms N] [--backoff-cap-ms N]\n  \
         proxim_serve query --socket PATH --json REQUEST [--retry] [--deadline-ms N]\n  \
         proxim_serve obs --socket PATH [--level off|metrics|trace] [--sample-every N]\n    \
         [--slow-ms N] [--dump PATH] [--prom]\n  \
         proxim_serve churn --store DIR --name NAME --rounds N\n  \
         proxim_serve churn --socket PATH --queries N"
    );
    ExitCode::from(1)
}

/// Flushes the trace sink and writes the flight-recorder dump to the
/// armed path, if one is armed. Used by the panic hook and the drain
/// path; failures are reported but never escalate — a post-mortem must
/// not mask the original exit.
fn flush_observability() {
    proxim_obs::sink::flush();
    if let Some(path) = flight::armed_dump_path() {
        if let Err(e) = diskfault::checked_write(&path, flight::dump().as_bytes()) {
            eprintln!("proxim_serve: flight dump degraded: {e}");
        }
    }
}

/// The deterministic demo model served by `--demo` and saved by `churn`:
/// a fast-grid NAND2 against the demo technology.
fn demo_model() -> Result<ProximityModel, String> {
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast())
        .map_err(|e| format!("demo characterization failed: {e}"))
}

fn cmd_serve(args: &mut std::env::Args) -> ExitCode {
    let mut store_dir: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut flight_out: Option<PathBuf> = None;
    let mut opts = ServeOptions::default();
    let mut demo = false;
    let mut memory_budget: Option<u64> = None;
    let mut strict_store = false;
    let mut listen: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => store_dir = args.next().map(Into::into),
            "--socket" => socket = args.next().map(Into::into),
            "--metrics-out" => metrics_out = args.next().map(Into::into),
            "--flight-out" => flight_out = args.next().map(Into::into),
            "--listen" => listen = args.next(),
            "--demo" => demo = true,
            "--strict-store" => strict_store = true,
            "--workers" | "--queue" | "--deadline-ms" | "--stall-ms" | "--sample-every"
            | "--slow-ms" | "--flight-capacity" | "--memory-budget" => {
                let Some(v) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                match arg.as_str() {
                    "--workers" => opts.workers = v as usize,
                    "--queue" => opts.queue_capacity = v as usize,
                    "--deadline-ms" => opts.request_deadline = Duration::from_millis(v),
                    "--sample-every" => opts.trace_sample_every = v,
                    "--slow-ms" => opts.slow_threshold = Duration::from_millis(v),
                    "--flight-capacity" => opts.flight_capacity = v as usize,
                    "--memory-budget" => memory_budget = Some(v),
                    _ => opts.worker_stall = Duration::from_millis(v),
                }
            }
            _ => return usage(),
        }
    }
    let (Some(store_dir), Some(socket)) = (store_dir, socket) else {
        return usage();
    };
    // --flight-out arms the post-mortem dump destination: the panic hook,
    // the drain path, and the protocol's `obs` dump op all read it. The
    // ring itself is enabled by Server::start (flight_capacity).
    if let Some(path) = &flight_out {
        flight::arm_dump(path.clone(), false);
    }

    let store = ModelStore::new(&store_dir);
    if demo && store.list().is_empty() {
        match demo_model() {
            Ok(model) => {
                if let Err(e) = store.save("nand2_demo", &model) {
                    eprintln!("proxim_serve: cannot seed demo model: {e}");
                    return ExitCode::from(1);
                }
            }
            Err(e) => {
                eprintln!("proxim_serve: {e}");
                return ExitCode::from(1);
            }
        }
    }
    // Degrade-instead-of-die: a half-corrupt (or empty) store still serves.
    let library = ModelLibrary::open_with(
        &store,
        LibraryOptions {
            memory_budget,
            ..LibraryOptions::default()
        },
    );
    for (path, reason) in &library.report().quarantined {
        eprintln!("proxim_serve: quarantined {} ({reason})", path.display());
    }
    for (path, reason) in &library.report().quarantine_failed {
        eprintln!(
            "proxim_serve: quarantine failed for {} ({reason})",
            path.display()
        );
    }
    if let Some(e) = &library.report().root_error {
        eprintln!("proxim_serve: store root unreadable, serving empty: {e}");
    }
    // Fleet-mode inversion of degrade-instead-of-die: under a supervisor
    // with replicas to fail over to, a corrupt or empty store is worth
    // more as a loud startup failure (crash-loop → quarantine) than as a
    // silently degraded replica. Exit 2 distinguishes it from usage errors.
    if strict_store {
        let report = library.report();
        if report.root_error.is_some() || !report.quarantined.is_empty() || library.is_empty() {
            eprintln!(
                "proxim_serve: --strict-store: store is corrupt, quarantining, or empty; \
                 refusing to serve"
            );
            return ExitCode::from(2);
        }
    }

    let tcp = match &listen {
        Some(l) => match l.strip_prefix("tcp://") {
            Some(addr) => Some(addr.to_string()),
            None => {
                eprintln!("proxim_serve: --listen expects tcp://HOST:PORT, got {l}");
                return ExitCode::from(1);
            }
        },
        None => None,
    };
    let server = match Server::start_with(library, Some(socket.clone()), tcp.as_deref(), opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("proxim_serve: cannot bind {}: {e}", socket.display());
            return ExitCode::from(1);
        }
    };
    // Arm SIGTERM → drain and SIGHUP → reload before announcing readiness,
    // so a signal that races startup still lands.
    let token = TERM_TOKEN.get_or_init(CancelToken::new).clone();
    install_signal_handlers();
    let tcp_suffix = server
        .tcp_addr()
        .map(|a| format!(" tcp={a}"))
        .unwrap_or_default();
    println!(
        "ready socket={} models={} generation={}{tcp_suffix}",
        server.socket_path().display(),
        server.model_count(),
        server.library().generation()
    );
    let _ = std::io::stdout().flush();

    // Wait for the drain signal; fold SIGHUP arrivals into hot reloads.
    let mut hups_seen = 0u64;
    while !token.is_cancelled() {
        let hups = HUP_REQUESTS.load(Ordering::Relaxed);
        if hups != hups_seen {
            hups_seen = hups;
            match server.reload(false, None) {
                Ok(outcome) => {
                    println!(
                        "reloaded generation={} models={} reload_us={}",
                        outcome.generation, outcome.models, outcome.reload_us
                    );
                }
                Err(rej) => eprintln!("proxim_serve: reload rejected: {rej}"),
            }
            let _ = std::io::stdout().flush();
            continue;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let registry = server.registry();
    server.begin_shutdown();
    let snapshot = server.join();
    let json = snapshot.to_json();
    if let Some(path) = metrics_out {
        // A full disk must not turn a clean drain into a failed exit: the
        // snapshot is a nicety, the exit status is the contract.
        if let Err(e) = diskfault::checked_write(&path, json.as_bytes()) {
            registry.counter(sm::DISK_FAULTS).incr();
            drop(
                trace::event("serve.disk.degraded")
                    .arg("sink", "metrics_snapshot")
                    .arg("error", e.to_string()),
            );
            eprintln!("proxim_serve: metrics flush degraded: {e}");
        }
    }
    // The drain is the last chance to capture what the daemon was doing;
    // the dump lands after join so the final requests are in the ring.
    flush_observability();
    println!("drained {json}");
    ExitCode::SUCCESS
}

fn cmd_query(args: &mut std::env::Args) -> ExitCode {
    let mut socket: Option<PathBuf> = None;
    let mut json: Option<String> = None;
    let mut retry = false;
    let mut deadline_ms: Option<u64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = args.next().map(Into::into),
            "--json" => json = args.next(),
            "--retry" => retry = true,
            "--deadline-ms" => {
                let Some(v) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                deadline_ms = Some(v);
            }
            _ => return usage(),
        }
    }
    let (Some(socket), Some(json)) = (socket, json) else {
        return usage();
    };
    let result = if retry {
        let policy = RetryPolicy {
            deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
            ..RetryPolicy::default()
        };
        call_with_retry(&socket, &json, &policy).map(|outcome| {
            if outcome.attempts > 1 {
                eprintln!(
                    "proxim_serve: served after {} attempts ({:?} backing off)",
                    outcome.attempts, outcome.backoff
                );
            }
            outcome.response
        })
    } else {
        one_shot(&socket, &json)
    };
    match result {
        Ok(response) => {
            println!("{response}");
            if response.contains("\"ok\":true") {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(3)
            }
        }
        Err(e) => {
            eprintln!("proxim_serve: {e}");
            ExitCode::from(1)
        }
    }
}

/// One `op:"obs"` or `op:"metrics"` round trip against a live daemon.
/// Returns the parsed response, or an exit code when the transport failed
/// or the daemon answered with a typed error.
fn obs_round_trip(socket: &Path, request: &str) -> Result<Json, ExitCode> {
    let response = match one_shot(socket, request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("proxim_serve: {e}");
            return Err(ExitCode::from(1));
        }
    };
    let json = match Json::parse(&response) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("proxim_serve: unparseable response: {e}");
            return Err(ExitCode::from(1));
        }
    };
    if json.get("ok").and_then(Json::as_bool) != Some(true) {
        eprintln!("proxim_serve: daemon refused: {response}");
        return Err(ExitCode::from(3));
    }
    Ok(json)
}

fn cmd_obs(args: &mut std::env::Args) -> ExitCode {
    let mut socket: Option<PathBuf> = None;
    let mut level: Option<String> = None;
    let mut sample_every: Option<u64> = None;
    let mut slow_ms: Option<u64> = None;
    let mut dump_path: Option<PathBuf> = None;
    let mut prom = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = args.next().map(Into::into),
            "--dump" => dump_path = args.next().map(Into::into),
            "--prom" => prom = true,
            "--level" => {
                let Some(v) = args.next() else { return usage() };
                if !matches!(v.as_str(), "off" | "metrics" | "trace") {
                    return usage();
                }
                level = Some(v);
            }
            "--sample-every" | "--slow-ms" => {
                let Some(v) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                if arg == "--sample-every" {
                    sample_every = Some(v);
                } else {
                    slow_ms = Some(v);
                }
            }
            _ => return usage(),
        }
    }
    let Some(socket) = socket else { return usage() };

    // A bare `obs` request is a read: it reports the current observability
    // configuration without changing anything, which is exactly what an
    // operator wants before flipping knobs.
    let mut request = String::from("{\"op\":\"obs\"");
    if let Some(level) = &level {
        request.push_str(&format!(",\"level\":\"{level}\""));
    }
    if let Some(n) = sample_every {
        request.push_str(&format!(",\"sample_every\":{n}"));
    }
    if let Some(n) = slow_ms {
        request.push_str(&format!(",\"slow_ms\":{n}"));
    }
    if dump_path.is_some() {
        request.push_str(",\"dump\":true");
    }
    request.push('}');

    let response = match obs_round_trip(&socket, &request) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let mut obs_line = String::new();
    if let Some(obs) = response.get("obs") {
        obs.render(&mut obs_line);
    }
    println!("obs {obs_line}");
    if let Some(path) = dump_path {
        let Some(dump) = response.get("dump").and_then(Json::as_str) else {
            eprintln!("proxim_serve: response carried no dump");
            return ExitCode::from(1);
        };
        if let Err(e) = diskfault::checked_write(&path, dump.as_bytes()) {
            eprintln!("proxim_serve: cannot write {}: {e}", path.display());
            return ExitCode::from(1);
        }
        let truncated = response.get("truncated").and_then(Json::as_bool) == Some(true);
        println!(
            "dump path={} lines={} truncated={truncated}",
            path.display(),
            dump.lines().count()
        );
    }
    if prom {
        let response = match obs_round_trip(&socket, "{\"op\":\"metrics\"}") {
            Ok(r) => r,
            Err(code) => return code,
        };
        let Some(text) = response.get("exposition").and_then(Json::as_str) else {
            eprintln!("proxim_serve: response carried no exposition");
            return ExitCode::from(1);
        };
        if let Err(e) = exposition::validate(text) {
            eprintln!("proxim_serve: invalid exposition: {e}");
            return ExitCode::from(1);
        }
        print!("{text}");
    }
    ExitCode::SUCCESS
}

/// Closed query loop against a live daemon: list the served models, then
/// round-robin `queries` single-event queries across them through the
/// retrying client. With a tight `--memory-budget` on the daemon this is
/// the eviction-churn smoke: every model keeps cycling through residency
/// and the loop still sees nothing but `ok` responses.
fn churn_queries(socket: &Path, queries: u64) -> ExitCode {
    let policy = RetryPolicy::default();
    let names = match call_with_retry(socket, "{\"op\":\"list\"}", &policy) {
        Ok(outcome) => match Json::parse(&outcome.response) {
            Ok(json) => json
                .get("models")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|j| j.as_str().map(str::to_owned))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default(),
            Err(e) => {
                eprintln!("proxim_serve: unparseable list response: {e}");
                return ExitCode::from(1);
            }
        },
        Err(e) => {
            eprintln!("proxim_serve: list failed: {e}");
            return ExitCode::from(1);
        }
    };
    if names.is_empty() {
        eprintln!("proxim_serve: daemon serves no models; nothing to churn");
        return ExitCode::from(3);
    }
    let (mut ok, mut cold) = (0u64, 0u64);
    for i in 0..queries {
        let name = &names[(i as usize) % names.len()];
        let request = format!(
            "{{\"op\":\"query\",\"model\":\"{name}\",\"events\":[{{\"pin\":0,\"edge\":\"rise\",\"t\":0.0,\"tt\":1e-9}}]}}"
        );
        match call_with_retry(socket, &request, &policy) {
            Ok(outcome) => {
                if outcome.response.contains("\"ok\":true") {
                    ok += 1;
                    if outcome.response.contains("\"cold\":true") {
                        cold += 1;
                    }
                } else {
                    eprintln!("proxim_serve: query {i} refused: {}", outcome.response);
                }
            }
            Err(e) => eprintln!("proxim_serve: query {i} failed: {e}"),
        }
    }
    println!(
        "queried={queries} ok={ok} cold={cold} models={}",
        names.len()
    );
    if ok == queries {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    }
}

fn cmd_churn(args: &mut std::env::Args) -> ExitCode {
    let mut store_dir: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut name = String::from("nand2_demo");
    let mut rounds = 1u64;
    let mut queries = 64u64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => store_dir = args.next().map(Into::into),
            "--socket" => socket = args.next().map(Into::into),
            "--name" => {
                let Some(v) = args.next() else { return usage() };
                name = v;
            }
            "--rounds" | "--queries" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                if arg == "--rounds" {
                    rounds = v;
                } else {
                    queries = v;
                }
            }
            _ => return usage(),
        }
    }
    if let Some(socket) = socket {
        return churn_queries(&socket, queries);
    }
    let Some(store_dir) = store_dir else {
        return usage();
    };
    let model = match demo_model() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("proxim_serve: {e}");
            return ExitCode::from(1);
        }
    };
    let store = ModelStore::new(&store_dir);
    for round in 0..rounds {
        if let Err(e) = store.save(&name, &model) {
            eprintln!("proxim_serve: churn save failed: {e}");
            return ExitCode::from(1);
        }
        // The harness kills us on (or right after) this marker; each line
        // certifies one durable, renamed-into-place save.
        println!("round={round}");
        let _ = std::io::stdout().flush();
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // Observability arms before anything else runs: PROXIM_TRACE installs
    // the JSONL sink, PROXIM_FLIGHT enables the ring and arms the
    // post-mortem dump path (CLI flags can re-arm it later).
    proxim_obs::init_from_env();
    flight::init_from_env();
    // Arms the deterministic disk-fault injector (PROXIM_DISKFAULT) when
    // the binary is built with `fault-injection`; a no-op otherwise.
    diskfault::init_from_env();
    // Whatever kills the process, the flight recorder's last seconds land
    // on disk first — the dump is the crash report.
    let default_panic = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        default_panic(info);
        flush_observability();
    }));
    let mut args = std::env::args();
    let _argv0 = args.next();
    match args.next().as_deref() {
        Some("serve") => cmd_serve(&mut args),
        Some("fleet") => cmd_fleet(&mut args),
        Some("query") => cmd_query(&mut args),
        Some("obs") => cmd_obs(&mut args),
        Some("churn") => cmd_churn(&mut args),
        _ => usage(),
    }
}

/// The fleet supervisor: spawn N replica daemons of this same binary,
/// supervise them (restart with backoff, quarantine crash loops), answer
/// the `fleet` op on the control socket, and fold `SIGHUP` into rolling
/// reloads. `SIGTERM` drains every replica and exits 0.
fn cmd_fleet(args: &mut std::env::Args) -> ExitCode {
    let mut store_dir: Option<PathBuf> = None;
    let mut dir: Option<PathBuf> = None;
    let mut opts = FleetOptions::default();
    let mut demo = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => store_dir = args.next().map(Into::into),
            "--dir" => dir = args.next().map(Into::into),
            "--demo" => demo = true,
            "--strict-store" => opts.strict_store = true,
            "--replicas"
            | "--quarantine-threshold"
            | "--quarantine-window-ms"
            | "--probe-interval-ms"
            | "--backoff-base-ms"
            | "--backoff-cap-ms" => {
                let Some(v) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                match arg.as_str() {
                    "--replicas" => opts.replicas = v as usize,
                    "--quarantine-threshold" => opts.quarantine_threshold = v as u32,
                    "--quarantine-window-ms" => opts.quarantine_window = Duration::from_millis(v),
                    "--probe-interval-ms" => opts.probe_interval = Duration::from_millis(v),
                    "--backoff-base-ms" => opts.restart_backoff_base = Duration::from_millis(v),
                    _ => opts.restart_backoff_cap = Duration::from_millis(v),
                }
            }
            _ => return usage(),
        }
    }
    let (Some(store_dir), Some(dir)) = (store_dir, dir) else {
        return usage();
    };
    // Seed the demo model once, in the supervisor, so every replica comes
    // up serving the same store (racing N replica-side seeds would not).
    let store = ModelStore::new(&store_dir);
    if demo && store.list().is_empty() {
        match demo_model() {
            Ok(model) => {
                if let Err(e) = store.save("nand2_demo", &model) {
                    eprintln!("proxim_serve: cannot seed demo model: {e}");
                    return ExitCode::from(1);
                }
            }
            Err(e) => {
                eprintln!("proxim_serve: {e}");
                return ExitCode::from(1);
            }
        }
    }
    opts.store = store_dir;
    opts.dir = dir;
    opts.daemon = match std::env::current_exe() {
        Ok(path) => path,
        Err(e) => {
            eprintln!("proxim_serve: cannot locate own binary for replicas: {e}");
            return ExitCode::from(1);
        }
    };

    let fleet = match Fleet::start(opts) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("proxim_serve: cannot start fleet: {e}");
            return ExitCode::from(1);
        }
    };
    let token = TERM_TOKEN.get_or_init(CancelToken::new).clone();
    install_signal_handlers();
    if !fleet.wait_ready(Duration::from_secs(60)) {
        // Not fatal: the supervisor keeps restarting; announce anyway so
        // the operator can inspect via the control socket.
        eprintln!("proxim_serve: fleet not fully up after 60s; supervising anyway");
    }
    println!(
        "fleet ready control={} replicas={}",
        fleet.control_socket().display(),
        fleet.sockets().len()
    );
    for status in fleet.states() {
        println!(
            "replica index={} pid={} socket={} state={}",
            status.index,
            status.pid.map_or_else(|| "-".into(), |p| p.to_string()),
            status.socket.display(),
            status.state.wire_name()
        );
    }
    let _ = std::io::stdout().flush();

    let mut hups_seen = 0u64;
    while !token.is_cancelled() {
        let hups = HUP_REQUESTS.load(Ordering::Relaxed);
        if hups != hups_seen {
            hups_seen = hups;
            for (index, result) in fleet.rolling_reload(false, None).into_iter().enumerate() {
                match result {
                    Ok(response) => println!("rolling reload replica={index} {response}"),
                    Err(e) => eprintln!("proxim_serve: rolling reload replica={index}: {e}"),
                }
            }
        }
        for event in fleet.take_events() {
            match event {
                FleetEvent::Restarted { index, restarts } => {
                    println!("restarted replica index={index} restarts={restarts}");
                }
                FleetEvent::Quarantined { index, exits } => {
                    println!(
                        "quarantined replica index={index} exits={exits} \
                         kind=replica_quarantined"
                    );
                }
            }
        }
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_millis(20));
    }
    let snapshot = fleet.join();
    flush_observability();
    println!("fleet drained {}", snapshot.to_json());
    ExitCode::SUCCESS
}
