//! `proxim_serve`: the timing-query daemon CLI.
//!
//! Subcommands:
//!
//! - `serve --store DIR --socket PATH [...]` — load the binary model store
//!   (degrade-instead-of-die: corrupt entries are quarantined with their
//!   content hash and the daemon starts with the survivors), bind the Unix
//!   socket, and answer queries until `SIGTERM`, which drains: stop
//!   accepting, finish or shed in-flight work typed, flush the final
//!   metrics snapshot, exit `0`.
//! - `query --socket PATH --json REQ` — one request/response round trip;
//!   prints the response. Exit `0` when the response says `"ok":true`,
//!   `3` for a typed server-side error, `1` for transport failure.
//! - `churn --store DIR --name NAME --rounds N` — characterize one demo
//!   cell, then save it to the store `N` times, printing `round=<i>` after
//!   each durable save. The chaos harness `SIGKILL`s this mid-write and
//!   asserts the store is loadable and byte-identical afterwards — the
//!   `atomic_write` crash-consistency promise, proven at the binary-store
//!   layer.
//!
//! The `SIGTERM` handler lives here (one libc `signal` FFI line) so every
//! library crate stays `forbid(unsafe_code)`; the handler body is a single
//! atomic store ([`CancelToken::cancel`]), which is async-signal-safe.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::persist::atomic_write;
use proxim_model::ProximityModel;
use proxim_serve::server::one_shot;
use proxim_serve::{ModelLibrary, ModelStore, ServeOptions, Server};
use proxim_spice::CancelToken;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::OnceLock;
use std::time::Duration;

/// The token the SIGTERM handler trips; cancelling it begins the drain.
static TERM_TOKEN: OnceLock<CancelToken> = OnceLock::new();

extern "C" fn on_sigterm(_signum: i32) {
    if let Some(token) = TERM_TOKEN.get() {
        token.cancel();
    }
}

/// Installs the SIGTERM handler via the libc `signal` entry point (no
/// external crates in this build environment).
fn install_sigterm_handler() {
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         proxim_serve serve --store DIR --socket PATH [--workers N] [--queue N]\n    \
         [--deadline-ms N] [--stall-ms N] [--metrics-out PATH] [--demo]\n  \
         proxim_serve query --socket PATH --json REQUEST\n  \
         proxim_serve churn --store DIR --name NAME --rounds N"
    );
    ExitCode::from(1)
}

/// The deterministic demo model served by `--demo` and saved by `churn`:
/// a fast-grid NAND2 against the demo technology.
fn demo_model() -> Result<ProximityModel, String> {
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast())
        .map_err(|e| format!("demo characterization failed: {e}"))
}

fn cmd_serve(args: &mut std::env::Args) -> ExitCode {
    let mut store_dir: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut opts = ServeOptions::default();
    let mut demo = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => store_dir = args.next().map(Into::into),
            "--socket" => socket = args.next().map(Into::into),
            "--metrics-out" => metrics_out = args.next().map(Into::into),
            "--demo" => demo = true,
            "--workers" | "--queue" | "--deadline-ms" | "--stall-ms" => {
                let Some(v) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                match arg.as_str() {
                    "--workers" => opts.workers = v as usize,
                    "--queue" => opts.queue_capacity = v as usize,
                    "--deadline-ms" => opts.request_deadline = Duration::from_millis(v),
                    _ => opts.worker_stall = Duration::from_millis(v),
                }
            }
            _ => return usage(),
        }
    }
    let (Some(store_dir), Some(socket)) = (store_dir, socket) else {
        return usage();
    };

    let store = ModelStore::new(&store_dir);
    if demo && store.list().is_empty() {
        match demo_model() {
            Ok(model) => {
                if let Err(e) = store.save("nand2_demo", &model) {
                    eprintln!("proxim_serve: cannot seed demo model: {e}");
                    return ExitCode::from(1);
                }
            }
            Err(e) => {
                eprintln!("proxim_serve: {e}");
                return ExitCode::from(1);
            }
        }
    }
    // Degrade-instead-of-die: a half-corrupt (or empty) store still serves.
    let library = ModelLibrary::open(&store);
    for (path, reason) in &library.report().quarantined {
        eprintln!("proxim_serve: quarantined {} ({reason})", path.display());
    }

    let server = match Server::start(library, &socket, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("proxim_serve: cannot bind {}: {e}", socket.display());
            return ExitCode::from(1);
        }
    };
    // Arm SIGTERM → drain before announcing readiness, so a terminate that
    // races startup still drains instead of killing the process.
    let token = TERM_TOKEN.get_or_init(CancelToken::new).clone();
    install_sigterm_handler();
    println!(
        "ready socket={} models={}",
        server.socket_path().display(),
        server.model_count()
    );
    let _ = std::io::stdout().flush();

    // Wait for the drain signal, then hand it to the server.
    while !token.is_cancelled() {
        std::thread::sleep(Duration::from_millis(10));
    }
    server.begin_shutdown();
    let snapshot = server.join();
    let json = snapshot.to_json();
    if let Some(path) = metrics_out {
        if let Err(e) = atomic_write(&path, json.as_bytes()) {
            eprintln!("proxim_serve: metrics flush failed: {e}");
            return ExitCode::from(1);
        }
    }
    println!("drained {json}");
    ExitCode::SUCCESS
}

fn cmd_query(args: &mut std::env::Args) -> ExitCode {
    let mut socket: Option<PathBuf> = None;
    let mut json: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = args.next().map(Into::into),
            "--json" => json = args.next(),
            _ => return usage(),
        }
    }
    let (Some(socket), Some(json)) = (socket, json) else {
        return usage();
    };
    match one_shot(&socket, &json) {
        Ok(response) => {
            println!("{response}");
            if response.contains("\"ok\":true") {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(3)
            }
        }
        Err(e) => {
            eprintln!("proxim_serve: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_churn(args: &mut std::env::Args) -> ExitCode {
    let mut store_dir: Option<PathBuf> = None;
    let mut name = String::from("nand2_demo");
    let mut rounds = 1u64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => store_dir = args.next().map(Into::into),
            "--name" => {
                let Some(v) = args.next() else { return usage() };
                name = v;
            }
            "--rounds" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                rounds = v;
            }
            _ => return usage(),
        }
    }
    let Some(store_dir) = store_dir else {
        return usage();
    };
    let model = match demo_model() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("proxim_serve: {e}");
            return ExitCode::from(1);
        }
    };
    let store = ModelStore::new(&store_dir);
    for round in 0..rounds {
        if let Err(e) = store.save(&name, &model) {
            eprintln!("proxim_serve: churn save failed: {e}");
            return ExitCode::from(1);
        }
        // The harness kills us on (or right after) this marker; each line
        // certifies one durable, renamed-into-place save.
        println!("round={round}");
        let _ = std::io::stdout().flush();
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _argv0 = args.next();
    match args.next().as_deref() {
        Some("serve") => cmd_serve(&mut args),
        Some("query") => cmd_query(&mut args),
        Some("churn") => cmd_churn(&mut args),
        _ => usage(),
    }
}
