#!/usr/bin/env bash
# Full CI gate: formatting, lints, tier-1 build + tests, the resilience
# and chaos/resume suites, and the characterization benchmark (emits
# BENCH_characterize.json at the repo root). Run from anywhere; operates
# on the repo that contains it.
#
# Every step runs under a wall-clock timeout so a wedged solver (or a
# chaos child that never dies) fails CI with a timeout error instead of
# hanging the pipeline. GNU timeout exits 124 on expiry; SIGKILL follows
# 30 s later if the step ignores SIGTERM.
set -euo pipefail
cd "$(dirname "$0")"

step() {
    local limit="$1" name="$2"
    shift 2
    echo "==> ${name} (timeout ${limit})"
    timeout --kill-after=30s "$limit" "$@" || {
        local rc=$?
        if [ "$rc" -eq 124 ] || [ "$rc" -eq 137 ]; then
            echo "!! ${name}: timed out after ${limit}" >&2
        else
            echo "!! ${name}: failed with exit code ${rc}" >&2
        fi
        exit "$rc"
    }
}

step 5m  "cargo fmt --check"                 cargo fmt --all -- --check
step 15m "cargo clippy -- -D warnings"       cargo clippy --workspace --all-targets -- -D warnings
step 20m "tier-1: cargo build --release"     cargo build --release
step 20m "tier-1: cargo test -q"             cargo test -q
step 15m "resilience: fault injection"       cargo test -q --features fault-injection --test fault_injection
step 15m "batch: byte identity + eviction"   cargo test -q --features fault-injection --test batch_identity
step 15m "audit: invariants + self-repair"   cargo test -q --features fault-injection --test audit
step 10m "observability: trace round-trip"   cargo test -q --test observability
step 15m "chaos: SIGKILL/SIGTERM + resume"   cargo test -q --test chaos
step 15m "bench: characterization pipeline"  ./target/release/bench_characterize --out BENCH_characterize.json --scaling
step 5m  "bench: pool smoke (jobs = 2)"      ./target/release/bench_characterize --pool-smoke

echo "==> CI OK"
