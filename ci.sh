#!/usr/bin/env bash
# Full CI gate: formatting, lints, tier-1 build + tests, and the
# characterization benchmark (emits BENCH_characterize.json at the repo
# root). Run from anywhere; operates on the repo that contains it.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> resilience: cargo test --features fault-injection"
cargo test -q --features fault-injection --test fault_injection

echo "==> observability: trace round-trip"
cargo test -q --test observability

echo "==> bench: characterization pipeline (perf-gated vs committed baseline)"
./target/release/bench_characterize --out BENCH_characterize.json

echo "==> CI OK"
