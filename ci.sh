#!/usr/bin/env bash
# Full CI gate: formatting, lints, tier-1 build + tests, the resilience
# and chaos/resume suites, the serve smoke test, and the benchmarks (emit
# BENCH_characterize.json and BENCH_serve.json at the repo root). Run
# from anywhere; operates on the repo that contains it.
#
# Every step runs under a wall-clock timeout so a wedged solver (or a
# chaos child that never dies) fails CI with a timeout error instead of
# hanging the pipeline. GNU timeout exits 124 on expiry; SIGKILL follows
# 30 s later if the step ignores SIGTERM.
set -euo pipefail
cd "$(dirname "$0")"

step() {
    local limit="$1" name="$2"
    shift 2
    echo "==> ${name} (timeout ${limit})"
    timeout --kill-after=30s "$limit" "$@" || {
        local rc=$?
        if [ "$rc" -eq 124 ] || [ "$rc" -eq 137 ]; then
            echo "!! ${name}: timed out after ${limit}" >&2
        else
            echo "!! ${name}: failed with exit code ${rc}" >&2
        fi
        exit "$rc"
    }
}

step 5m  "cargo fmt --check"                 cargo fmt --all -- --check
step 15m "cargo clippy -- -D warnings"       cargo clippy --workspace --all-targets -- -D warnings
step 20m "tier-1: cargo build --release"     cargo build --release
step 20m "tier-1: cargo test -q"             cargo test -q
step 15m "resilience: fault injection"       cargo test -q --features fault-injection --test fault_injection
step 15m "batch: byte identity + eviction"   cargo test -q --features fault-injection --test batch_identity
step 15m "audit: invariants + self-repair"   cargo test -q --features fault-injection --test audit
step 10m "observability: trace round-trip"   cargo test -q --test observability
step 10m "observability: flight + serve"     cargo test -q --test flight_recorder --test serve_observability
step 15m "chaos: SIGKILL/SIGTERM + resume"   cargo test -q --test chaos
step 15m "serve: malformed-input corpus"     cargo test -q --features fault-injection --test serve_robustness
# Lifecycle suite: hot reload under sustained load, memory-budgeted
# eviction, and (via the feature) every durable sink against an injected
# full disk — including the drain-still-exits-0 contract.
step 15m "serve: lifecycle + disk faults"    cargo test -q --features fault-injection --test serve_lifecycle
# Fleet suite: supervised replicas, SIGKILL failover under churn, crash-loop
# quarantine on a corrupt store, rolling reload, and hedged requests.
step 15m "serve: fleet suite"                cargo test -q --test serve_fleet

# Daemon smoke: start on a temp socket, round-trip a query and a health
# probe through the CLI client, then SIGTERM and require a clean drain
# (exit 0, "drained" marker, metrics snapshot flushed).
serve_smoke() {
    set -euo pipefail
    local dir pid rc
    dir="$(mktemp -d)"
    ./target/release/proxim_serve serve --store "${dir}/store" \
        --socket "${dir}/smoke.sock" --metrics-out "${dir}/metrics.json" \
        --demo >"${dir}/serve.log" 2>&1 &
    pid=$!
    for _ in $(seq 1 600); do
        grep -q '^ready ' "${dir}/serve.log" 2>/dev/null && break
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    grep -q '^ready ' "${dir}/serve.log" || {
        echo "daemon never became ready:" >&2
        cat "${dir}/serve.log" >&2
        return 1
    }
    ./target/release/proxim_serve query --socket "${dir}/smoke.sock" --json \
        '{"op":"query","model":"nand2_demo","events":[{"pin":0,"edge":"rise","t":0.0,"tt":4e-10},{"pin":1,"edge":"rise","t":5e-11,"tt":4e-10}]}'
    ./target/release/proxim_serve query --socket "${dir}/smoke.sock" \
        --json '{"op":"health"}'
    kill -TERM "$pid"
    wait "$pid" && rc=0 || rc=$?
    [ "$rc" -eq 0 ] || { echo "daemon exited ${rc} after SIGTERM" >&2; return 1; }
    grep -q '^drained ' "${dir}/serve.log" || { echo "no drained marker" >&2; return 1; }
    [ -s "${dir}/metrics.json" ] || { echo "metrics snapshot missing" >&2; return 1; }
    rm -rf "$dir"
}
export -f serve_smoke
step 10m "serve: daemon smoke + drain"       bash -c serve_smoke

# Observability smoke: the same daemon with tracing fully on — JSONL sink
# (PROXIM_TRACE), per-request head sampling, flight recorder armed. Drives
# the whole introspection plane over the wire: a traced query whose
# response echoes the client trace_id with a per-phase breakdown, a
# Prometheus scrape (the obs CLI validates the exposition syntax before
# printing it), a runtime knob flip plus a live flight-dump fetch, and a
# SIGTERM drain that must leave both the sink file and the post-mortem
# dump holding the traced request. Both JSONL artifacts must convert
# cleanly to Chrome traces.
obs_smoke() {
    set -euo pipefail
    local dir pid rc out
    dir="$(mktemp -d)"
    PROXIM_TRACE="${dir}/trace.jsonl" ./target/release/proxim_serve serve \
        --store "${dir}/store" --socket "${dir}/obs.sock" \
        --sample-every 1 --flight-out "${dir}/flight.jsonl" \
        --metrics-out "${dir}/metrics.json" \
        --demo >"${dir}/serve.log" 2>&1 &
    pid=$!
    for _ in $(seq 1 600); do
        grep -q '^ready ' "${dir}/serve.log" 2>/dev/null && break
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    grep -q '^ready ' "${dir}/serve.log" || {
        echo "daemon never became ready:" >&2
        cat "${dir}/serve.log" >&2
        return 1
    }
    out="$(./target/release/proxim_serve query --socket "${dir}/obs.sock" --json \
        '{"op":"query","model":"nand2_demo","trace_id":"ci-obs-1","events":[{"pin":0,"edge":"rise","t":0.0,"tt":4e-10},{"pin":1,"edge":"rise","t":5e-11,"tt":4e-10}]}')"
    echo "$out" | grep -q '"trace_id":"ci-obs-1"' || { echo "no trace_id echo: $out" >&2; return 1; }
    echo "$out" | grep -q '"breakdown"' || { echo "no phase breakdown: $out" >&2; return 1; }
    ./target/release/proxim_serve obs --socket "${dir}/obs.sock" --prom \
        >"${dir}/scrape.prom" || { echo "prometheus scrape failed" >&2; return 1; }
    grep -q '^# TYPE serve_requests counter' "${dir}/scrape.prom" || {
        echo "exposition missing serve_requests:" >&2
        cat "${dir}/scrape.prom" >&2
        return 1
    }
    ./target/release/proxim_serve obs --socket "${dir}/obs.sock" \
        --slow-ms 1 --dump "${dir}/live_dump.jsonl" >"${dir}/obs_flip.out"
    grep -q '"slow_ms":1' "${dir}/obs_flip.out" || {
        echo "runtime obs flip not echoed:" >&2
        cat "${dir}/obs_flip.out" >&2
        return 1
    }
    head -1 "${dir}/live_dump.jsonl" | grep -q '"t":"flight"' || { echo "bad dump header" >&2; return 1; }
    grep -q 'ci-obs-1' "${dir}/live_dump.jsonl" || { echo "traced request missing from live dump" >&2; return 1; }
    kill -TERM "$pid"
    wait "$pid" && rc=0 || rc=$?
    [ "$rc" -eq 0 ] || { echo "daemon exited ${rc} after SIGTERM" >&2; return 1; }
    grep -q '^drained ' "${dir}/serve.log" || { echo "no drained marker" >&2; return 1; }
    grep -q 'ci-obs-1' "${dir}/flight.jsonl" || { echo "traced request missing from post-SIGTERM dump" >&2; return 1; }
    grep -q '"name":"serve.request"' "${dir}/trace.jsonl" || { echo "no serve.request span in sink" >&2; return 1; }
    ./target/release/trace2chrome "${dir}/trace.jsonl" -o "${dir}/trace.chrome.json"
    ./target/release/trace2chrome "${dir}/flight.jsonl" -o "${dir}/flight.chrome.json"
    [ -s "${dir}/trace.chrome.json" ] && [ -s "${dir}/flight.chrome.json" ] || return 1
    rm -rf "$dir"
}
export -f obs_smoke
step 10m "serve: tracing-on smoke + scrape"  bash -c obs_smoke

# Lifecycle smoke: the same daemon pinned to a 1-byte memory budget, so
# every query is a cold miss (eviction churn at its harshest), driven by
# the closed-loop churn client; then a SIGHUP reload and a wire reload
# (through the retrying client), and a clean drain on generation 3.
lifecycle_smoke() {
    set -euo pipefail
    local dir pid rc out
    dir="$(mktemp -d)"
    ./target/release/proxim_serve serve --store "${dir}/store" \
        --socket "${dir}/lc.sock" --memory-budget 1 --demo \
        >"${dir}/serve.log" 2>&1 &
    pid=$!
    for _ in $(seq 1 600); do
        grep -q '^ready ' "${dir}/serve.log" 2>/dev/null && break
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    grep -q '^ready ' "${dir}/serve.log" || {
        echo "daemon never became ready:" >&2
        cat "${dir}/serve.log" >&2
        return 1
    }
    out="$(./target/release/proxim_serve churn --socket "${dir}/lc.sock" --queries 32)"
    echo "$out" | grep -q 'ok=32' || { echo "churn queries failed: $out" >&2; return 1; }
    echo "$out" | grep -q 'cold=32' || { echo "a 1-byte budget must serve all-cold: $out" >&2; return 1; }
    kill -HUP "$pid"
    for _ in $(seq 1 100); do
        grep -q '^reloaded generation=2 ' "${dir}/serve.log" 2>/dev/null && break
        sleep 0.1
    done
    grep -q '^reloaded generation=2 ' "${dir}/serve.log" || {
        echo "SIGHUP reload never landed:" >&2
        cat "${dir}/serve.log" >&2
        return 1
    }
    out="$(./target/release/proxim_serve query --socket "${dir}/lc.sock" \
        --retry --deadline-ms 5000 --json '{"op":"reload","label":"ci"}')"
    echo "$out" | grep -q '"swapped":true' || { echo "wire reload refused: $out" >&2; return 1; }
    out="$(./target/release/proxim_serve query --socket "${dir}/lc.sock" \
        --retry --deadline-ms 5000 --json '{"op":"health"}')"
    echo "$out" | grep -q '"generation":3' || { echo "wrong generation: $out" >&2; return 1; }
    kill -TERM "$pid"
    wait "$pid" && rc=0 || rc=$?
    [ "$rc" -eq 0 ] || { echo "daemon exited ${rc} after SIGTERM" >&2; return 1; }
    grep -q '^drained ' "${dir}/serve.log" || { echo "no drained marker" >&2; return 1; }
    rm -rf "$dir"
}
export -f lifecycle_smoke
step 10m "serve: reload + eviction smoke"    bash -c lifecycle_smoke

# Fleet smoke: three supervised replicas, SIGKILL one, require that the
# survivors keep answering, the supervisor restarts the victim back to
# full strength (control-socket "fleet" op reports replicas_up=3), and
# SIGTERM drains the whole fleet with exit 0.
fleet_smoke() {
    set -euo pipefail
    local dir pid rc victim out
    dir="$(mktemp -d)"
    ./target/release/proxim_serve fleet --store "${dir}/store" \
        --dir "${dir}/fleet" --replicas 3 --demo >"${dir}/fleet.log" 2>&1 &
    pid=$!
    for _ in $(seq 1 600); do
        grep -q '^fleet ready ' "${dir}/fleet.log" 2>/dev/null && break
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    grep -q '^fleet ready ' "${dir}/fleet.log" || {
        echo "fleet never became ready:" >&2
        cat "${dir}/fleet.log" >&2
        return 1
    }
    ./target/release/proxim_serve query --socket "${dir}/fleet/replica-0.sock" --json \
        '{"op":"query","model":"nand2_demo","events":[{"pin":0,"edge":"rise","t":0.0,"tt":4e-10},{"pin":1,"edge":"rise","t":5e-11,"tt":4e-10}]}'
    victim="$(grep '^replica index=1 ' "${dir}/fleet.log" | head -1 \
        | sed 's/.*pid=\([0-9-]*\).*/\1/')"
    [ -n "$victim" ] && [ "$victim" != "-" ] || {
        echo "no pid recorded for replica 1:" >&2
        cat "${dir}/fleet.log" >&2
        return 1
    }
    kill -KILL "$victim"
    # Survivors answer while the victim is down.
    ./target/release/proxim_serve query --socket "${dir}/fleet/replica-0.sock" \
        --retry --deadline-ms 5000 --json '{"op":"health"}'
    for _ in $(seq 1 600); do
        grep -q '^restarted replica index=1 ' "${dir}/fleet.log" 2>/dev/null && break
        sleep 0.1
    done
    grep -q '^restarted replica index=1 ' "${dir}/fleet.log" || {
        echo "supervisor never restarted the killed replica:" >&2
        cat "${dir}/fleet.log" >&2
        return 1
    }
    out=""
    for _ in $(seq 1 100); do
        out="$(./target/release/proxim_serve query --socket "${dir}/fleet/fleet.sock" \
            --json '{"op":"fleet"}')" || out=""
        echo "$out" | grep -q '"replicas_up":3' && break
        sleep 0.1
    done
    echo "$out" | grep -q '"replicas_up":3' || {
        echo "fleet never returned to full strength: $out" >&2
        return 1
    }
    kill -TERM "$pid"
    wait "$pid" && rc=0 || rc=$?
    [ "$rc" -eq 0 ] || { echo "fleet exited ${rc} after SIGTERM" >&2; return 1; }
    grep -q '^fleet drained ' "${dir}/fleet.log" || { echo "no fleet drained marker" >&2; return 1; }
    rm -rf "$dir"
}
export -f fleet_smoke
step 10m "serve: fleet smoke + failover"     bash -c fleet_smoke

step 15m "bench: characterization pipeline"  ./target/release/bench_characterize --out BENCH_characterize.json --scaling
step 5m  "bench: pool smoke (jobs = 2)"      ./target/release/bench_characterize --pool-smoke
# bench_serve carries the trace-overhead gate: traced-on (shipped config)
# must stay within 5% of traced-off, measured on process-CPU-per-request.
step 15m "bench: serve latency + trace gate" ./target/release/bench_serve --out BENCH_serve.json

echo "==> CI OK"
